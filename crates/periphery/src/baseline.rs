//! Baseline discovery techniques for comparison (Section VIII).
//!
//! The paper positions its one-probe-per-sub-prefix technique against two
//! families of prior work:
//!
//! * **traceroute-based periphery discovery** (Rye & Beverly, PAM'20):
//!   walk hop limits 1, 2, 3… toward a target and keep the last responding
//!   hop — finds the same peripheries but spends ~n probes per target,
//! * **hitlist / target-generation scanning** (Gasser et al. IMC'18;
//!   6Tree/6Gen/Entropy-IP): probe known 128-bit addresses and mutations
//!   of them — efficient where seeds exist, blind elsewhere ("constrained
//!   by seeds diversity").
//!
//! [`BaselineComparison::run`] executes all three under an equal probe
//! budget on the same block so the efficiency claim ("search effort
//! reduced from 2^(128-64) to 1") is measured, not asserted.

use std::collections::HashSet;

use xmap::{IcmpEchoProbe, ProbeResult, Scanner};
use xmap_addr::Ip6;
use xmap_netsim::isp::IspProfile;
use xmap_netsim::packet::Network;
use xmap_netsim::World;

/// Result of one traceroute toward a target.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TracerouteResult {
    /// Responding hop per TTL (index 0 = hop limit 1).
    pub hops: Vec<Option<Ip6>>,
    /// The last responding hop — the periphery when the destination is a
    /// nonexistent address behind it.
    pub last_hop: Option<Ip6>,
    /// Probes spent.
    pub probes: u64,
}

/// Classic traceroute: probe with increasing hop limits until the
/// responder stops changing class (an unreachable or two consecutive
/// silences), keeping the last responding source.
pub fn traceroute_discovery<N: Network>(
    scanner: &mut Scanner<N>,
    target: Ip6,
    max_hops: u8,
) -> TracerouteResult {
    let mut hops = Vec::new();
    let mut last_hop = None;
    let mut probes = 0;
    let mut silent_streak = 0;
    for ttl in 1..=max_hops {
        probes += 1;
        let responses = scanner.probe_addr(target, &IcmpEchoProbe, ttl);
        let hop = responses.iter().find_map(|(src, r)| match r {
            ProbeResult::TimeExceeded | ProbeResult::Unreachable { .. } => Some(*src),
            ProbeResult::Alive => Some(*src),
            _ => None,
        });
        hops.push(hop);
        match hop {
            Some(src) => {
                silent_streak = 0;
                last_hop = Some(src);
                // An unreachable (or echo reply) means we have passed the
                // last hop; stop.
                if responses
                    .iter()
                    .any(|(_, r)| matches!(r, ProbeResult::Unreachable { .. } | ProbeResult::Alive))
                {
                    break;
                }
            }
            None => {
                silent_streak += 1;
                if silent_streak >= 2 {
                    break;
                }
            }
        }
    }
    TracerouteResult {
        hops,
        last_hop,
        probes,
    }
}

/// Probes a hitlist of known 128-bit addresses directly; returns the alive
/// subset and probes spent (1 per entry).
pub fn hitlist_scan<N: Network>(scanner: &mut Scanner<N>, hitlist: &[Ip6]) -> (Vec<Ip6>, u64) {
    let mut alive = Vec::new();
    for addr in hitlist {
        let responses = scanner.probe_addr(*addr, &IcmpEchoProbe, 64);
        if responses
            .iter()
            .any(|(src, r)| matches!(r, ProbeResult::Alive) && src == addr)
        {
            alive.push(*addr);
        }
    }
    (alive, hitlist.len() as u64)
}

/// TGA-lite: generates candidate addresses from seeds by mutating the
/// low bits of the subnet portion (the pattern-expansion step all target
/// generation algorithms share), capped at `budget` candidates.
pub fn generate_targets(seeds: &[Ip6], per_seed: u32, budget: usize) -> Vec<Ip6> {
    let mut out = Vec::new();
    let mut seen = HashSet::new();
    'outer: for seed in seeds {
        for k in 1..=per_seed as u64 {
            // Mutate the low byte of the /64 subnet and the low IID byte —
            // the densest dimensions in real seed sets.
            let subnet_mut = seed.with_bit_slice(56, 64, seed.bit_slice(56, 64) ^ k);
            let iid_mut = seed.with_iid(seed.iid() ^ k);
            for cand in [subnet_mut, iid_mut] {
                if cand != *seed && seen.insert(cand) {
                    out.push(cand);
                    if out.len() >= budget {
                        break 'outer;
                    }
                }
            }
        }
    }
    out
}

/// Outcome of the three-way comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineComparison {
    /// Peripheries found by the sub-prefix technique and probes spent.
    pub xmap: (usize, u64),
    /// Peripheries found by traceroute and probes spent.
    pub traceroute: (usize, u64),
    /// *Newly discovered* responsive addresses found by hitlist + TGA —
    /// re-confirming a seed is not a discovery, so the seed set is
    /// excluded — and probes spent.
    pub hitlist_tga: (usize, u64),
}

impl BaselineComparison {
    /// Discoveries per thousand probes for each technique,
    /// (xmap, traceroute, hitlist+TGA).
    pub fn efficiency(&self) -> (f64, f64, f64) {
        let per_k = |(found, probes): (usize, u64)| {
            if probes == 0 {
                0.0
            } else {
                found as f64 * 1000.0 / probes as f64
            }
        };
        (
            per_k(self.xmap),
            per_k(self.traceroute),
            per_k(self.hitlist_tga),
        )
    }

    /// Runs all three techniques against one block at an equal probe
    /// budget. Requires a [`World`] scanner: the hitlist is seeded from
    /// the world's ground-truth population (standing in for the passive /
    /// DNS sources real hitlists are built from), covering `seed_count`
    /// known addresses.
    pub fn run(
        scanner: &mut Scanner<World>,
        profile_idx: usize,
        profile: &IspProfile,
        budget: u64,
        seed_count: usize,
    ) -> BaselineComparison {
        let range = profile.scan_range();

        // --- Technique 1: one probe per sub-prefix (this paper). ---
        let mut xmap_found = HashSet::new();
        let mut xmap_probes = 0;
        for i in 0..budget {
            let target = range.nth(i).expect("within space");
            let dst = xmap::fill_host_bits(target, scanner.config().seed);
            xmap_probes += 1;
            for (src, r) in scanner.probe_addr(dst, &IcmpEchoProbe, 64) {
                if matches!(
                    r,
                    ProbeResult::Unreachable { .. } | ProbeResult::TimeExceeded
                ) && src.iid() >> 48 != 0xffff
                {
                    xmap_found.insert(src);
                }
            }
        }

        // --- Technique 2: traceroute toward random addresses. ---
        let mut tr_found = HashSet::new();
        let mut tr_probes = 0;
        let mut i = 0u64;
        while tr_probes < budget {
            let target = range.nth(i % budget.max(1)).expect("within space");
            let dst = xmap::fill_host_bits(target, scanner.config().seed ^ 0x7e37);
            let result = traceroute_discovery(scanner, dst, 40);
            tr_probes += result.probes;
            if let Some(hop) = result.last_hop {
                if hop.iid() >> 48 != 0xffff {
                    tr_found.insert(hop);
                }
            }
            i += 1;
        }

        // --- Technique 3: hitlist + target generation. ---
        // Seeds: ground-truth host/WAN addresses (the world oracle stands
        // in for passive collection).
        let mut seeds = Vec::new();
        let mut idx = 0u64;
        while seeds.len() < seed_count && idx < 5_000_000 {
            if scanner.network_mut().device_at(profile_idx, idx).is_some() {
                seeds.extend(scanner.network_mut().hosts_of(profile_idx, idx));
                if let Some(d) = scanner.network_mut().device_at(profile_idx, idx) {
                    seeds.push(d.wan_address());
                }
            }
            idx += 1;
        }
        seeds.truncate(seed_count);
        let seed_set: HashSet<Ip6> = seeds.iter().copied().collect();
        let (_alive_seeds, seed_probes) = hitlist_scan(scanner, &seeds);
        let candidates = generate_targets(&seeds, 64, budget.saturating_sub(seed_probes) as usize);
        // Only *new* responsive addresses count as discoveries; the seeds
        // themselves were already known to whoever built the hitlist.
        let mut tga_found: HashSet<Ip6> = HashSet::new();
        let mut tga_probes = seed_probes;
        for cand in candidates {
            tga_probes += 1;
            for (src, r) in scanner.probe_addr(cand, &IcmpEchoProbe, 64) {
                if matches!(
                    r,
                    ProbeResult::Alive
                        | ProbeResult::Unreachable { .. }
                        | ProbeResult::TimeExceeded
                ) && src.iid() >> 48 != 0xffff
                    && !seed_set.contains(&src)
                {
                    tga_found.insert(src);
                }
            }
        }

        BaselineComparison {
            xmap: (xmap_found.len(), xmap_probes),
            traceroute: (tr_found.len(), tr_probes),
            hitlist_tga: (tga_found.len(), tga_probes),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmap::ScanConfig;
    use xmap_netsim::isp::SAMPLE_BLOCKS;
    use xmap_netsim::world::WorldConfig;

    fn scanner() -> Scanner<World> {
        let world = World::with_config(WorldConfig::lossless(999, 10));
        Scanner::new(
            world,
            ScanConfig {
                seed: 999,
                ..Default::default()
            },
        )
    }

    #[test]
    fn traceroute_finds_the_periphery_at_path_cost() {
        let mut s = scanner();
        // Find an allocated sub-prefix in Airtel (dense, same-mode).
        let p = &SAMPLE_BLOCKS[2];
        let mut target = None;
        for i in 0..200_000u64 {
            if let Some(d) = s.network_mut().device_at(2, i) {
                target = Some((i, d));
                break;
            }
        }
        let (i, device) = target.expect("device");
        let dst = p
            .scan_prefix()
            .subprefix(64, i as u128)
            .addr()
            .with_iid(0x5150);
        let result = traceroute_discovery(&mut s, dst, 40);
        let last = result.last_hop.expect("reached the periphery");
        assert_eq!(last.iid(), device.iid, "last hop is the periphery");
        // Cost scales with path length: at least hops_to_isp probes.
        assert!(result.probes >= u64::from(device.hops_to_isp), "{result:?}");
        // Early hops are transit routers.
        assert!(result
            .hops
            .iter()
            .flatten()
            .take(result.hops.len().saturating_sub(1))
            .all(|h| h.iid() >> 48 == 0xffff));
    }

    #[test]
    fn hitlist_finds_exactly_seeded_hosts() {
        let mut s = scanner();
        let mut seeds = Vec::new();
        for i in 0..500_000u64 {
            if s.network_mut().device_at(12, i).is_some() {
                seeds.extend(s.network_mut().hosts_of(12, i));
                if seeds.len() >= 6 {
                    break;
                }
            }
        }
        assert!(seeds.len() >= 3);
        // Hosts in the hitlist respond, but only after their covering CPE
        // forwards them (all are reachable end to end in the world).
        let (alive, probes) = hitlist_scan(&mut s, &seeds);
        assert_eq!(probes, seeds.len() as u64);
        assert_eq!(alive, seeds, "every ground-truth host responds");
        // A made-up address is not alive.
        let (alive, _) = hitlist_scan(&mut s, &["2409:8000::1234".parse().unwrap()]);
        assert!(alive.is_empty());
    }

    #[test]
    fn target_generation_expands_without_duplicates() {
        let seeds: Vec<Ip6> = vec![
            "2409:8000:0:10::1".parse().unwrap(),
            "2409:8000:0:20::2".parse().unwrap(),
        ];
        let targets = generate_targets(&seeds, 8, 100);
        assert!(!targets.is_empty());
        let set: HashSet<_> = targets.iter().collect();
        assert_eq!(set.len(), targets.len(), "duplicates generated");
        assert!(targets.iter().all(|t| !seeds.contains(t)));
    }

    #[test]
    fn xmap_beats_baselines_per_probe() {
        let mut s = scanner();
        // China Mobile broadband: dense enough for all techniques to find
        // something at a modest budget.
        let cmp = BaselineComparison::run(&mut s, 12, &SAMPLE_BLOCKS[12], 1 << 13, 24);
        let (xmap_eff, tr_eff, tga_eff) = cmp.efficiency();
        assert!(cmp.xmap.0 > 0, "{cmp:?}");
        // The headline: sub-prefix probing discovers more peripheries per
        // probe than traceroute (path-length overhead) and than
        // hitlist+TGA (seed-locality blindness).
        assert!(
            xmap_eff > tr_eff,
            "xmap {xmap_eff} vs traceroute {tr_eff} ({cmp:?})"
        );
        assert!(
            xmap_eff > tga_eff,
            "xmap {xmap_eff} vs tga {tga_eff} ({cmp:?})"
        );
    }
}
