//! `xmap-campaign` — command-line front end for the periphery-discovery
//! campaign over the fifteen sample blocks (Table II), with block-level
//! parallelism and block-granular checkpointing.
//!
//! ```text
//! xmap-campaign [options]
//!
//!   --targets-per-block N   probes per sample block (default 65536)
//!   --block-targets I:N     override --targets-per-block for block I
//!                           (repeatable; skews the per-block workload)
//!   --campaign-workers N    worker threads; blocks are distributed by
//!                           work stealing and merged deterministically,
//!                           so output is byte-identical for any N
//!                           (default 1)
//!   --split-threshold N     when the block queue drains and a worker
//!                           goes idle, split an in-flight block's
//!                           remaining targets into nested sub-shards —
//!                           but only while at least N remain
//!                           (0 = never split; default 0)
//!   --force-split-at N      split every block unit after N consumed
//!                           targets, idle workers or not (deterministic
//!                           split schedule; for testing)
//!   --mop-up TICKS          enable the second-chance pass over silent
//!                           targets after TICKS of virtual time
//!   -s, --seed N            scan seed (permutation, cookies, IID fill)
//!       --world-seed N      seed of the simulated Internet
//!   -b, --blocklist PREFIX  deny-list an additional IPv6 prefix on top of
//!                           the standard reserved ranges (repeatable)
//!   -o, --output FILE       write discovered peripheries as CSV
//!                           (default: stdout)
//!       --metrics-out FILE  write the merged telemetry snapshot as JSON
//!       --checkpoint DIR    keep per-block checkpoints in DIR; a killed
//!                           campaign resumes from completed blocks
//!       --resume            continue the campaign checkpointed in DIR,
//!                           under any --campaign-workers count
//!       --resume-plan       dry run: print the Skip/Resume/Fresh/Split
//!                           classification of every block for a resume
//!                           of the campaign in DIR, then exit
//!       --json              with --resume-plan, emit the plan as one
//!                           JSON object instead of CSV lines
//!       --group-commit N    fsync block checkpoints in batches of N
//!                           instead of per block (default 4; 1 restores
//!                           fsync-per-block)
//!       --watchdog-ms MS    reclaim and requeue a block whose worker has
//!                           held it for MS milliseconds without
//!                           completing it (off by default; must exceed
//!                           the slowest block's runtime)
//!       --kill-after-probes N abort once any worker's world has handled
//!                           N probes (exit code 3; for testing); with
//!                           --adaptive, stop at the first round boundary
//!                           after N drawn probes instead
//!       --adaptive          density-guided target generation: drive each
//!                           block with the prefix-tree split/prune engine
//!                           instead of the exhaustive sweep
//!       --probe-budget N    (adaptive) probes per block (default 65536)
//!       --root-bits N       (adaptive) restrict each block to its first
//!                           2^N sub-prefixes
//!       --no-prune          (adaptive) ablation arm: same engine with
//!                           splitting and pruning disabled — a full
//!                           enumeration through the identical pipeline
//!       --infer-boundary    (adaptive) infer each block's sub-prefix
//!                           length (Section IV-A) before building its
//!                           tree; inference probes count against the
//!                           block's budget
//!       --cluster B:D       lay out world devices in pods of 2^B
//!                           sub-prefixes with one pod in D active,
//!                           instead of uniformly
//!   -q, --quiet             suppress the summary on stderr
//! ```
//!
//! An interrupted checkpointed campaign exits with code 3; rerunning the
//! same command line with `--resume` — with the **same or a different**
//! `--campaign-workers` — continues it, and the final CSV and metrics are
//! byte-identical to an uninterrupted run.

use std::io::Write as _;
use std::process::ExitCode;

use xmap::{Blocklist, ScanConfig, Verdict};
use xmap_netsim::isp::SAMPLE_BLOCKS;
use xmap_netsim::world::WorldConfig;
use xmap_netsim::{Allocation, KillPoint, World};
use xmap_periphery::{
    AdaptiveCampaign, AdaptiveConfig, BlockMode, Campaign, CampaignOutcome, ParallelCampaign,
};
use xmap_state::json::push_json_string;
use xmap_state::{AbortSignal, StateError};

#[derive(Debug, Clone, PartialEq)]
struct CliConfig {
    targets_per_block: u64,
    block_targets: Vec<(usize, u64)>,
    campaign_workers: usize,
    split_threshold: u64,
    force_split_at: Option<u64>,
    mop_up_ticks: Option<u64>,
    seed: u64,
    world_seed: u64,
    blocked: Vec<String>,
    output: Option<String>,
    metrics_out: Option<String>,
    checkpoint: Option<String>,
    resume: bool,
    resume_plan: bool,
    json: bool,
    group_commit: Option<usize>,
    watchdog_ms: Option<u64>,
    kill_after_probes: Option<u64>,
    adaptive: bool,
    probe_budget: Option<u64>,
    root_bits: Option<u8>,
    no_prune: bool,
    infer_boundary: bool,
    cluster: Option<(u8, u32)>,
    quiet: bool,
}

impl Default for CliConfig {
    fn default() -> Self {
        CliConfig {
            targets_per_block: 1 << 16,
            block_targets: Vec::new(),
            campaign_workers: 1,
            split_threshold: 0,
            force_split_at: None,
            mop_up_ticks: None,
            seed: 1,
            world_seed: 0xDA7A_5EED,
            blocked: Vec::new(),
            output: None,
            metrics_out: None,
            checkpoint: None,
            resume: false,
            resume_plan: false,
            json: false,
            group_commit: None,
            watchdog_ms: None,
            kill_after_probes: None,
            adaptive: false,
            probe_budget: None,
            root_bits: None,
            no_prune: false,
            infer_boundary: false,
            cluster: None,
            quiet: false,
        }
    }
}

fn parse_args(args: &[String]) -> Result<CliConfig, String> {
    let mut cfg = CliConfig::default();
    let mut iter = args.iter().peekable();
    let value = |iter: &mut std::iter::Peekable<std::slice::Iter<String>>,
                 flag: &str|
     -> Result<String, String> {
        iter.next()
            .cloned()
            .ok_or_else(|| format!("{flag} requires a value"))
    };
    let int = |iter: &mut std::iter::Peekable<std::slice::Iter<String>>,
               flag: &str|
     -> Result<u64, String> {
        value(iter, flag)?
            .parse()
            .map_err(|_| format!("{flag} must be an integer"))
    };
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--targets-per-block" => cfg.targets_per_block = int(&mut iter, arg)?,
            "--block-targets" => {
                let v = value(&mut iter, arg)?;
                let (idx, n) = v
                    .split_once(':')
                    .and_then(|(i, n)| Some((i.parse().ok()?, n.parse().ok()?)))
                    .ok_or_else(|| format!("--block-targets must be BLOCK:TARGETS, got {v:?}"))?;
                cfg.block_targets.push((idx, n));
            }
            "--campaign-workers" => {
                cfg.campaign_workers = int(&mut iter, arg)? as usize;
            }
            "--split-threshold" => cfg.split_threshold = int(&mut iter, arg)?,
            "--force-split-at" => cfg.force_split_at = Some(int(&mut iter, arg)?),
            "--mop-up" => cfg.mop_up_ticks = Some(int(&mut iter, arg)?),
            "-s" | "--seed" => cfg.seed = int(&mut iter, arg)?,
            "--world-seed" => cfg.world_seed = int(&mut iter, arg)?,
            "-b" | "--blocklist" => cfg.blocked.push(value(&mut iter, arg)?),
            "-o" | "--output" => cfg.output = Some(value(&mut iter, arg)?),
            "--metrics-out" => cfg.metrics_out = Some(value(&mut iter, arg)?),
            "--checkpoint" => cfg.checkpoint = Some(value(&mut iter, arg)?),
            "--resume" => cfg.resume = true,
            "--resume-plan" => cfg.resume_plan = true,
            "--json" => cfg.json = true,
            "--group-commit" => cfg.group_commit = Some(int(&mut iter, arg)? as usize),
            "--watchdog-ms" => cfg.watchdog_ms = Some(int(&mut iter, arg)?),
            "--kill-after-probes" => cfg.kill_after_probes = Some(int(&mut iter, arg)?),
            "--adaptive" => cfg.adaptive = true,
            "--probe-budget" => cfg.probe_budget = Some(int(&mut iter, arg)?),
            "--root-bits" => cfg.root_bits = Some(int(&mut iter, arg)? as u8),
            "--no-prune" => cfg.no_prune = true,
            "--infer-boundary" => cfg.infer_boundary = true,
            "--cluster" => {
                let v = value(&mut iter, arg)?;
                let (bits, denom) = v
                    .split_once(':')
                    .and_then(|(b, d)| Some((b.parse().ok()?, d.parse().ok()?)))
                    .ok_or_else(|| format!("--cluster must be POD_BITS:DENOM, got {v:?}"))?;
                cfg.cluster = Some((bits, denom));
            }
            "-q" | "--quiet" => cfg.quiet = true,
            "-h" | "--help" => return Err("help".to_owned()),
            other => return Err(format!("unknown option {other:?}")),
        }
    }
    if cfg.targets_per_block == 0 {
        return Err("--targets-per-block must be at least 1".to_owned());
    }
    if cfg.campaign_workers == 0 {
        return Err("--campaign-workers must be at least 1".to_owned());
    }
    if cfg.force_split_at == Some(0) {
        return Err("--force-split-at must be at least 1".to_owned());
    }
    for &(idx, n) in &cfg.block_targets {
        if idx >= SAMPLE_BLOCKS.len() {
            return Err(format!(
                "--block-targets block {idx} out of range (campaign has {} blocks)",
                SAMPLE_BLOCKS.len()
            ));
        }
        if n == 0 {
            return Err("--block-targets TARGETS must be at least 1".to_owned());
        }
    }
    if cfg.resume && cfg.checkpoint.is_none() {
        return Err("--resume requires --checkpoint <dir>".to_owned());
    }
    if cfg.resume_plan && cfg.checkpoint.is_none() {
        return Err("--resume-plan requires --checkpoint <dir>".to_owned());
    }
    if cfg.json && !cfg.resume_plan {
        return Err("--json only applies to --resume-plan".to_owned());
    }
    if cfg.group_commit == Some(0) {
        return Err("--group-commit must be at least 1".to_owned());
    }
    if cfg.watchdog_ms == Some(0) {
        return Err("--watchdog-ms must be at least 1".to_owned());
    }
    if cfg.kill_after_probes.is_some() && cfg.checkpoint.is_none() {
        return Err("--kill-after-probes requires --checkpoint <dir>".to_owned());
    }
    if !cfg.adaptive {
        for (set, flag) in [
            (cfg.probe_budget.is_some(), "--probe-budget"),
            (cfg.root_bits.is_some(), "--root-bits"),
            (cfg.no_prune, "--no-prune"),
            (cfg.infer_boundary, "--infer-boundary"),
        ] {
            if set {
                return Err(format!("{flag} requires --adaptive"));
            }
        }
    } else {
        for (set, flag) in [
            (cfg.mop_up_ticks.is_some(), "--mop-up"),
            (cfg.resume_plan, "--resume-plan"),
            (cfg.group_commit.is_some(), "--group-commit"),
            (cfg.watchdog_ms.is_some(), "--watchdog-ms"),
            (cfg.split_threshold != 0, "--split-threshold"),
            (cfg.force_split_at.is_some(), "--force-split-at"),
            (!cfg.block_targets.is_empty(), "--block-targets"),
        ] {
            if set {
                return Err(format!("{flag} is not supported with --adaptive"));
            }
        }
        if cfg.root_bits == Some(0) {
            return Err("--root-bits must be at least 1".to_owned());
        }
        if cfg.probe_budget == Some(0) {
            return Err("--probe-budget must be at least 1".to_owned());
        }
    }
    if let Some((bits, denom)) = cfg.cluster {
        if bits == 0 || bits > 32 || denom == 0 {
            return Err("--cluster POD_BITS must be 1..=32 and DENOM at least 1".to_owned());
        }
    }
    Ok(cfg)
}

/// World configuration implied by the CLI: seed plus the optional
/// clustered device layout.
fn world_config(cfg: &CliConfig) -> WorldConfig {
    let mut wc = WorldConfig {
        seed: cfg.world_seed,
        ..WorldConfig::default()
    };
    if let Some((pod_bits, denom)) = cfg.cluster {
        wc = wc.with_allocation(Allocation::Clustered {
            pod_bits,
            active_frac: 1.0 / denom as f64,
        });
    }
    wc
}

/// Builds the blocklist: standard reserved ranges plus any `-b` extras.
fn build_blocklist(cfg: &CliConfig) -> Result<Blocklist, String> {
    let mut blocklist = Blocklist::with_standard_reserved();
    for p in &cfg.blocked {
        let prefix = p
            .parse()
            .map_err(|e| format!("bad blocklist prefix {p:?}: {e}"))?;
        blocklist.insert(prefix, Verdict::Deny);
    }
    Ok(blocklist)
}

/// Runs the adaptive (density-guided) campaign variant.
fn run_adaptive(cfg: CliConfig) -> Result<bool, String> {
    let mut acfg = if cfg.no_prune {
        AdaptiveConfig::exhaustive(cfg.root_bits)
    } else {
        AdaptiveConfig {
            root_bits: cfg.root_bits,
            ..AdaptiveConfig::default()
        }
    };
    if let Some(budget) = cfg.probe_budget {
        acfg.probe_budget = budget;
    }
    let mut engine = AdaptiveCampaign::new(acfg)
        .with_workers(cfg.campaign_workers)
        .with_blocklist(build_blocklist(&cfg)?)
        .with_inferred_boundary(cfg.infer_boundary);
    if let Some(n) = cfg.kill_after_probes {
        engine = engine.with_kill_after_probes(n);
    }
    let base = ScanConfig {
        seed: cfg.seed,
        ..Default::default()
    };
    let wc = world_config(&cfg);
    let make_world = |telemetry: &xmap_telemetry::Telemetry| {
        let mut world = World::with_config(wc);
        world.set_telemetry(telemetry);
        world
    };
    let started = std::time::Instant::now();
    let outcome = match &cfg.checkpoint {
        Some(dir) => {
            let dir = std::path::Path::new(dir);
            std::fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
            engine
                .run_checkpointed(&base, &dir.join("adaptive.ckpt"), cfg.resume, make_world)
                .map_err(|e| match e {
                    StateError::Mismatch(why) => format!(
                        "cannot resume: this invocation's configuration does not \
                         match the checkpointed campaign ({why})"
                    ),
                    other => format!("checkpoint: {other}"),
                })?
        }
        None => engine.run(&base, make_world),
    };
    let csv = outcome.result.to_csv();
    match &cfg.output {
        Some(path) => std::fs::write(path, csv).map_err(|e| format!("write {path}: {e}"))?,
        None => print!("{csv}"),
    }
    if let Some(path) = &cfg.metrics_out {
        let json = outcome.snapshot.to_json();
        std::fs::write(path, json).map_err(|e| format!("write {path}: {e}"))?;
    }
    if !cfg.quiet {
        let probed: u64 = outcome.result.blocks.iter().map(|b| b.probed).sum();
        let mut err = std::io::stderr().lock();
        let _ = writeln!(
            err,
            "# adaptive campaign: {} blocks | {} unique last hops | {} probes | \
             {} workers | {:.2?}{}",
            outcome.result.blocks.len(),
            outcome.result.total_unique(),
            probed,
            cfg.campaign_workers,
            started.elapsed(),
            if outcome.interrupted {
                " | INTERRUPTED"
            } else {
                ""
            }
        );
        if outcome.interrupted {
            let _ = writeln!(
                err,
                "# tree snapshot checkpointed — rerun with --resume to continue \
                 mid-round (any --campaign-workers count)"
            );
        }
    }
    Ok(outcome.interrupted)
}

/// Runs one campaign invocation. `Ok(true)` means interrupted with its
/// completed blocks checkpointed (exit code 3).
fn run(cfg: CliConfig) -> Result<bool, String> {
    if cfg.adaptive {
        return run_adaptive(cfg);
    }
    let mut campaign = Campaign::new(cfg.targets_per_block);
    if !cfg.block_targets.is_empty() {
        campaign = campaign.with_block_targets(cfg.block_targets.clone());
    }
    if let Some(ticks) = cfg.mop_up_ticks {
        campaign = campaign.with_mop_up(ticks);
    }
    if !cfg.blocked.is_empty() {
        campaign = campaign.with_blocklist(build_blocklist(&cfg)?);
    }
    let mut executor = ParallelCampaign::new(campaign, cfg.campaign_workers);
    if cfg.split_threshold > 0 {
        executor = executor.with_split_threshold(cfg.split_threshold);
    }
    if let Some(at) = cfg.force_split_at {
        executor = executor.with_force_split_at(at);
    }
    if let Some(n) = cfg.group_commit {
        executor = executor.with_group_commit(n);
    }
    if let Some(ms) = cfg.watchdog_ms {
        executor = executor.with_watchdog(std::time::Duration::from_millis(ms));
    }
    let base = ScanConfig {
        seed: cfg.seed,
        ..Default::default()
    };
    if cfg.resume_plan {
        let dir = cfg.checkpoint.as_deref().expect("validated in parse_args");
        let plan = executor
            .resume_plan(&base, std::path::Path::new(dir))
            .map_err(|e| match e {
                StateError::Mismatch(why) => format!(
                    "cannot resume: this invocation's configuration does not \
                     match the checkpointed campaign ({why})"
                ),
                other => format!("checkpoint: {other}"),
            })?;
        let rendered = if cfg.json {
            render_resume_plan_json(&plan)
        } else {
            render_resume_plan(&plan)
        };
        print!("{rendered}");
        return Ok(false);
    }
    let wc = world_config(&cfg);
    let kill = cfg.kill_after_probes;
    let signal = AbortSignal::new();
    let make_world = |_w: usize, telemetry: &xmap_telemetry::Telemetry| {
        let mut world = World::with_config(wc);
        world.set_telemetry(telemetry);
        if let Some(n) = kill {
            world.arm_kill(
                KillPoint {
                    after_probes: Some(n),
                    ..Default::default()
                },
                signal.clone(),
            );
        }
        world
    };
    let started = std::time::Instant::now();
    let outcome: CampaignOutcome = match &cfg.checkpoint {
        Some(dir) => executor
            .run_checkpointed(
                &base,
                std::path::Path::new(dir),
                cfg.resume,
                Some(&signal),
                make_world,
            )
            .map_err(|e| match e {
                StateError::Mismatch(why) => format!(
                    "cannot resume: this invocation's configuration does not \
                     match the checkpointed campaign ({why})"
                ),
                other => format!("checkpoint: {other}"),
            })?,
        None => executor.run(&base, make_world),
    };

    let csv = outcome.result.to_csv();
    match &cfg.output {
        Some(path) => std::fs::write(path, csv).map_err(|e| format!("write {path}: {e}"))?,
        None => print!("{csv}"),
    }
    if let Some(path) = &cfg.metrics_out {
        let json = outcome.snapshot.to_json();
        std::fs::write(path, json).map_err(|e| format!("write {path}: {e}"))?;
    }
    if !cfg.quiet {
        let mut err = std::io::stderr().lock();
        let _ = writeln!(
            err,
            "# campaign: {} blocks | {} unique last hops | {} workers | {:.2?}{}",
            outcome.result.blocks.len(),
            outcome.result.total_unique(),
            cfg.campaign_workers,
            started.elapsed(),
            if outcome.interrupted {
                " | INTERRUPTED"
            } else {
                ""
            }
        );
        if !outcome.poisoned.is_empty() {
            let _ = writeln!(
                err,
                "# WARNING: {} block(s) poisoned after repeated worker failures: {:?} \
                 — their results are missing from the merged output",
                outcome.poisoned.len(),
                outcome.poisoned,
            );
        }
        if outcome.interrupted {
            let _ = writeln!(
                err,
                "# completed blocks checkpointed — rerun with --resume to continue \
                 (any --campaign-workers count)"
            );
        }
    }
    Ok(outcome.interrupted)
}

/// Skip/Resume/Fresh/Split labels plus the tally, shared by both
/// renderings.
fn plan_rows(plan: &[BlockMode]) -> (Vec<&'static str>, [usize; 4]) {
    let mut tally = [0usize; 4];
    let labels = plan
        .iter()
        .map(|mode| {
            let (label, bucket) = match mode {
                BlockMode::Skip => ("skip", 0),
                BlockMode::Resume => ("resume", 1),
                BlockMode::Fresh => ("fresh", 2),
                BlockMode::Split(_) => ("split", 3),
            };
            tally[bucket] += 1;
            label
        })
        .collect();
    (labels, tally)
}

/// One CSV line per sample block with its Skip/Resume/Fresh/Split
/// classification, then a one-line tally. The split bucket only appears
/// in the tally when a block actually has a sub-shard manifest, so
/// split-free plans render exactly as they did before splitting existed.
fn render_resume_plan(plan: &[BlockMode]) -> String {
    let mut out = String::from("block,profile,scan_base,mode\n");
    let (labels, [skip, resume, fresh, split]) = plan_rows(plan);
    for (idx, label) in labels.iter().enumerate() {
        let profile = &SAMPLE_BLOCKS[idx];
        out.push_str(&format!(
            "{idx},{},{},{label}\n",
            profile.name, profile.scan_base
        ));
    }
    let split_part = if split > 0 {
        format!(" / {split} split")
    } else {
        String::new()
    };
    out.push_str(&format!(
        "# {skip} skip / {resume} resume / {fresh} fresh{split_part} of {} blocks\n",
        plan.len()
    ));
    out
}

/// The same plan as one JSON object, for scripted consumers:
/// `{"blocks":[{"block":0,"profile":...,"scan_base":...,"mode":...},
/// ...],"tally":{"skip":S,"resume":R,"fresh":F,"split":P}}`.
fn render_resume_plan_json(plan: &[BlockMode]) -> String {
    let (labels, [skip, resume, fresh, split]) = plan_rows(plan);
    let mut out = String::from("{\"blocks\":[");
    for (idx, label) in labels.iter().enumerate() {
        if idx > 0 {
            out.push(',');
        }
        let profile = &SAMPLE_BLOCKS[idx];
        out.push_str(&format!("{{\"block\":{idx},\"profile\":"));
        push_json_string(&mut out, profile.name);
        out.push_str(",\"scan_base\":");
        push_json_string(&mut out, profile.scan_base);
        out.push_str(&format!(",\"mode\":\"{label}\"}}"));
    }
    out.push_str(&format!(
        "],\"tally\":{{\"skip\":{skip},\"resume\":{resume},\"fresh\":{fresh},\"split\":{split}}}}}\n"
    ));
    out
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(&args) {
        Ok(cfg) => match run(cfg) {
            Ok(false) => ExitCode::SUCCESS,
            // Interrupted-but-checkpointed mirrors xmap's exit code 3 so
            // scripts can distinguish "resume me" from hard failures.
            Ok(true) => ExitCode::from(3),
            Err(e) => {
                eprintln!("xmap-campaign: {e}");
                ExitCode::FAILURE
            }
        },
        Err(e) if e == "help" => {
            eprintln!("usage: xmap-campaign [options] (see the module docs)");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("xmap-campaign: {e}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_owned).collect()
    }

    #[test]
    fn parses_defaults_and_flags() {
        let cfg = parse_args(&args("")).unwrap();
        assert_eq!(cfg.targets_per_block, 1 << 16);
        assert_eq!(cfg.campaign_workers, 1);
        assert!(cfg.mop_up_ticks.is_none());

        let cfg = parse_args(&args(
            "--targets-per-block 4096 --campaign-workers 4 --mop-up 2048 \
             -s 7 --world-seed 9 -o /tmp/c.csv --metrics-out /tmp/m.json \
             --checkpoint /tmp/ck --resume -q",
        ))
        .unwrap();
        assert_eq!(cfg.targets_per_block, 4096);
        assert_eq!(cfg.campaign_workers, 4);
        assert_eq!(cfg.mop_up_ticks, Some(2048));
        assert_eq!((cfg.seed, cfg.world_seed), (7, 9));
        assert_eq!(cfg.output.as_deref(), Some("/tmp/c.csv"));
        assert_eq!(cfg.metrics_out.as_deref(), Some("/tmp/m.json"));
        assert_eq!(cfg.checkpoint.as_deref(), Some("/tmp/ck"));
        assert!(cfg.resume && cfg.quiet);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse_args(&args("--campaign-workers 0")).is_err());
        assert!(parse_args(&args("--targets-per-block 0")).is_err());
        assert!(parse_args(&args("--resume")).is_err(), "resume needs dir");
        assert!(
            parse_args(&args("--kill-after-probes 10")).is_err(),
            "kill point without a checkpoint dir would lose the partial work"
        );
        assert!(parse_args(&args("--frobnicate")).is_err());
        assert!(parse_args(&args("--seed")).is_err(), "missing value");
        assert!(
            parse_args(&args("--resume-plan")).is_err(),
            "resume-plan needs dir"
        );
        assert!(parse_args(&args("--group-commit 0")).is_err());
        assert!(parse_args(&args("--watchdog-ms 0")).is_err());
        assert!(
            parse_args(&args("--json --checkpoint /tmp/ck")).is_err(),
            "--json without --resume-plan has nothing to format"
        );
    }

    #[test]
    fn parses_hardening_flags() {
        let cfg = parse_args(&args(
            "-b 2001:db8::/32 --blocklist ff00::/8 --group-commit 8 \
             --watchdog-ms 500 --checkpoint /tmp/ck --resume-plan",
        ))
        .unwrap();
        assert_eq!(cfg.blocked, vec!["2001:db8::/32", "ff00::/8"]);
        assert_eq!(cfg.group_commit, Some(8));
        assert_eq!(cfg.watchdog_ms, Some(500));
        assert!(cfg.resume_plan);
    }

    #[test]
    fn rejects_unparseable_blocklist_prefix() {
        let cfg = parse_args(&args("-b not-a-prefix --targets-per-block 64 -q")).unwrap();
        let err = run(cfg).unwrap_err();
        assert!(err.contains("not-a-prefix"), "{err}");
    }

    #[test]
    fn resume_plan_on_empty_dir_lists_all_fresh() {
        let dir = std::env::temp_dir().join(format!("xmap-campaign-plan-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = parse_args(&args(&format!(
            "--targets-per-block 512 --checkpoint {} --resume-plan -q",
            dir.display()
        )))
        .unwrap();
        // A dry run plans without executing: no checkpoint files appear.
        assert!(!run(cfg).unwrap());
        assert!(
            !dir.exists() || std::fs::read_dir(&dir).unwrap().next().is_none(),
            "resume-plan must not create checkpoint state"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_plan_json_is_parseable_and_tallies() {
        use xmap_state::json::{self, Value};
        // All fresh: no checkpoints exist for this plan.
        let plan = vec![BlockMode::Fresh; SAMPLE_BLOCKS.len()];
        let rendered = render_resume_plan_json(&plan);
        let v = json::parse(rendered.trim(), "resume plan").expect("valid json");
        let blocks = v.get("blocks").and_then(Value::as_arr).expect("blocks");
        assert_eq!(blocks.len(), SAMPLE_BLOCKS.len());
        for (idx, b) in blocks.iter().enumerate() {
            assert_eq!(b.req_u64("block", "row").unwrap(), idx as u64);
            assert_eq!(b.req_str("mode", "row").unwrap(), "fresh");
            assert_eq!(
                b.req_str("profile", "row").unwrap(),
                SAMPLE_BLOCKS[idx].name
            );
            assert_eq!(
                b.req_str("scan_base", "row").unwrap(),
                SAMPLE_BLOCKS[idx].scan_base
            );
        }
        let tally = v.get("tally").expect("tally");
        assert_eq!(tally.req_u64("fresh", "tally").unwrap(), 15);
        assert_eq!(tally.req_u64("skip", "tally").unwrap(), 0);
        assert_eq!(tally.req_u64("resume", "tally").unwrap(), 0);

        // A mixed plan tallies per mode and keeps block order.
        let mixed = vec![BlockMode::Skip, BlockMode::Resume, BlockMode::Fresh];
        let v = json::parse(render_resume_plan_json(&mixed).trim(), "plan").unwrap();
        let tally = v.get("tally").expect("tally");
        assert_eq!(tally.req_u64("skip", "tally").unwrap(), 1);
        assert_eq!(tally.req_u64("resume", "tally").unwrap(), 1);
        assert_eq!(tally.req_u64("fresh", "tally").unwrap(), 1);
        assert_eq!(tally.req_u64("split", "tally").unwrap(), 0);
        // The CSV rendering tallies identically, and split-free plans
        // keep the exact pre-split trailer.
        assert!(render_resume_plan(&mixed).ends_with("# 1 skip / 1 resume / 1 fresh of 3 blocks\n"));

        // A partially split block shows up in both renderings.
        use xmap_periphery::{SplitUnit, UnitMode, UnitPlan};
        let with_split = vec![
            BlockMode::Skip,
            BlockMode::Split(vec![
                UnitPlan {
                    unit: SplitUnit {
                        offset: 0,
                        stride: 2,
                        cap: 100,
                    },
                    mode: UnitMode::Skip,
                },
                UnitPlan {
                    unit: SplitUnit {
                        offset: 1,
                        stride: 2,
                        cap: 100,
                    },
                    mode: UnitMode::Resume,
                },
            ]),
            BlockMode::Fresh,
        ];
        let csv = render_resume_plan(&with_split);
        assert!(csv.contains(",split\n"), "{csv}");
        assert!(
            csv.ends_with("# 1 skip / 0 resume / 1 fresh / 1 split of 3 blocks\n"),
            "{csv}"
        );
        let v = json::parse(render_resume_plan_json(&with_split).trim(), "plan").unwrap();
        let tally = v.get("tally").expect("tally");
        assert_eq!(tally.req_u64("split", "tally").unwrap(), 1);
    }

    #[test]
    fn parses_split_flags() {
        let cfg = parse_args(&args(
            "--split-threshold 512 --force-split-at 1000 \
             --block-targets 2:65536 --block-targets 0:128 -q",
        ))
        .unwrap();
        assert_eq!(cfg.split_threshold, 512);
        assert_eq!(cfg.force_split_at, Some(1000));
        assert_eq!(cfg.block_targets, vec![(2, 65536), (0, 128)]);

        assert!(parse_args(&args("--force-split-at 0")).is_err());
        assert!(parse_args(&args("--block-targets nope")).is_err());
        assert!(parse_args(&args("--block-targets 2:0")).is_err());
        assert!(
            parse_args(&args("--block-targets 99:64")).is_err(),
            "out-of-range block index"
        );
        assert!(
            parse_args(&args("--adaptive --split-threshold 10")).is_err(),
            "the adaptive engine has its own work division"
        );
        assert!(parse_args(&args("--adaptive --force-split-at 10")).is_err());
        assert!(parse_args(&args("--adaptive --block-targets 1:64")).is_err());
    }

    #[test]
    fn end_to_end_split_campaign_matches_split_free_bytes() {
        let tmp = std::env::temp_dir();
        let plain = tmp.join(format!("xmap-campaign-plain-{}", std::process::id()));
        let split = tmp.join(format!("xmap-campaign-split-{}", std::process::id()));
        let common = "--targets-per-block 1024 --block-targets 2:4096 -q -o";
        let cfg = parse_args(&args(&format!("{common} {}", plain.display()))).unwrap();
        assert!(!run(cfg).unwrap());
        let cfg = parse_args(&args(&format!(
            "{common} {} --campaign-workers 4 --split-threshold 64 --force-split-at 300",
            split.display()
        )))
        .unwrap();
        assert!(!run(cfg).unwrap());
        let plain_csv = std::fs::read_to_string(&plain).unwrap();
        let split_csv = std::fs::read_to_string(&split).unwrap();
        assert!(plain_csv.lines().count() > 1, "no peripheries discovered");
        assert_eq!(plain_csv, split_csv, "split run must not change the CSV");
        let _ = std::fs::remove_file(&plain);
        let _ = std::fs::remove_file(&split);
    }

    #[test]
    fn parses_adaptive_flags() {
        let cfg = parse_args(&args(
            "--adaptive --probe-budget 4096 --root-bits 12 --infer-boundary \
             --cluster 8:256 --campaign-workers 2 -q",
        ))
        .unwrap();
        assert!(cfg.adaptive && cfg.infer_boundary);
        assert_eq!(cfg.probe_budget, Some(4096));
        assert_eq!(cfg.root_bits, Some(12));
        assert_eq!(cfg.cluster, Some((8, 256)));

        let cfg = parse_args(&args("--adaptive --no-prune")).unwrap();
        assert!(cfg.no_prune);

        assert!(
            parse_args(&args("--probe-budget 10")).is_err(),
            "adaptive knobs need --adaptive"
        );
        assert!(parse_args(&args("--no-prune")).is_err());
        assert!(
            parse_args(&args("--adaptive --mop-up 100")).is_err(),
            "mop-up has no adaptive equivalent"
        );
        assert!(parse_args(&args("--adaptive --cluster 8")).is_err());
        assert!(parse_args(&args("--adaptive --cluster 0:4")).is_err());
        assert!(parse_args(&args("--adaptive --probe-budget 0")).is_err());
    }

    #[test]
    fn end_to_end_adaptive_campaign_produces_csv() {
        let out = std::env::temp_dir().join(format!("xmap-adaptive-csv-{}", std::process::id()));
        let cfg = parse_args(&args(&format!(
            "--adaptive --probe-budget 2048 --root-bits 12 --cluster 8:64 \
             --campaign-workers 2 -q -o {}",
            out.display()
        )))
        .unwrap();
        assert!(!run(cfg).unwrap());
        let csv = std::fs::read_to_string(&out).unwrap();
        assert!(csv.starts_with("profile_id,address,target"), "{csv}");
        let _ = std::fs::remove_file(&out);
    }

    #[test]
    fn end_to_end_campaign_produces_csv() {
        let out = std::env::temp_dir().join(format!("xmap-campaign-csv-{}", std::process::id()));
        let cfg = parse_args(&args(&format!(
            "--targets-per-block 512 --campaign-workers 2 -q -o {}",
            out.display()
        )))
        .unwrap();
        assert!(!run(cfg).unwrap());
        let csv = std::fs::read_to_string(&out).unwrap();
        assert!(csv.starts_with("profile_id,address,target"), "{csv}");
        assert!(csv.lines().count() > 1, "no peripheries discovered");
        let _ = std::fs::remove_file(&out);
    }
}
