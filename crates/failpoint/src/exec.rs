//! Scripted executor faults: worker panics and stalls.
//!
//! The parallel executors (`ParallelScanner` shards, `ParallelCampaign`
//! blocks) consume an [`ExecFaults`] before each unit of work. A matched
//! [`ExecAction::Panic`] rule makes the worker panic right there —
//! exercising the supervisor's `catch_unwind`/requeue path — and a
//! matched [`ExecAction::Stall`] rule makes the worker go silent while
//! holding its claimed unit, exercising the watchdog's stale-claim
//! requeue. Rules are matched by `(worker, nth unit that worker
//! claimed)` and fire at most once, so a retried unit on a surviving
//! worker runs clean.

use std::sync::atomic::{AtomicBool, Ordering};

/// What a fired executor rule makes the worker do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecAction {
    /// Panic while holding the claimed unit of work.
    Panic,
    /// Go silent while holding the claimed unit of work (the thread
    /// stops making progress; the claim is never completed or released).
    Stall,
}

/// One scripted executor fault.
#[derive(Debug, Clone, Copy)]
pub struct ExecRule {
    /// Worker index the rule applies to.
    pub worker: usize,
    /// 0-based index of the unit of work, among the units this worker
    /// claims, at which the rule fires.
    pub nth: u64,
    /// What the worker does.
    pub action: ExecAction,
}

/// A scripted set of executor faults (the plan, before arming).
#[derive(Debug, Clone, Default)]
pub struct ExecPlan {
    /// The rules. Order is irrelevant; each fires at most once.
    pub rules: Vec<ExecRule>,
}

impl ExecPlan {
    /// A plan with one rule: `worker` panics on its `nth` claimed unit.
    pub fn panic_on(worker: usize, nth: u64) -> Self {
        ExecPlan {
            rules: vec![ExecRule {
                worker,
                nth,
                action: ExecAction::Panic,
            }],
        }
    }

    /// A plan with one rule: `worker` stalls on its `nth` claimed unit.
    pub fn stall_on(worker: usize, nth: u64) -> Self {
        ExecPlan {
            rules: vec![ExecRule {
                worker,
                nth,
                action: ExecAction::Stall,
            }],
        }
    }

    /// Arms the plan for one executor run.
    pub fn armed(&self) -> ExecFaults {
        ExecFaults {
            rules: self
                .rules
                .iter()
                .map(|r| (*r, AtomicBool::new(false)))
                .collect(),
        }
    }
}

/// An armed [`ExecPlan`]: shared by reference across worker threads,
/// each rule consumed at most once.
#[derive(Debug, Default)]
pub struct ExecFaults {
    rules: Vec<(ExecRule, AtomicBool)>,
}

impl ExecFaults {
    /// Consults the plan for `worker` claiming its `unit`-th unit of
    /// work (0-based). Returns the action to perform, consuming the
    /// rule, or `None`.
    pub fn on_unit(&self, worker: usize, unit: u64) -> Option<ExecAction> {
        for (rule, consumed) in &self.rules {
            if rule.worker == worker
                && rule.nth == unit
                && consumed
                    .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
            {
                return Some(rule.action);
            }
        }
        None
    }

    /// Whether any rule is still unconsumed.
    pub fn pending(&self) -> bool {
        self.rules.iter().any(|(_, c)| !c.load(Ordering::Acquire))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rules_fire_once_on_matching_unit() {
        let faults = ExecPlan::panic_on(1, 2).armed();
        assert_eq!(faults.on_unit(0, 2), None);
        assert_eq!(faults.on_unit(1, 0), None);
        assert!(faults.pending());
        assert_eq!(faults.on_unit(1, 2), Some(ExecAction::Panic));
        assert_eq!(faults.on_unit(1, 2), None, "consumed");
        assert!(!faults.pending());
    }

    #[test]
    fn empty_plan_never_fires() {
        let faults = ExecPlan::default().armed();
        assert_eq!(faults.on_unit(0, 0), None);
        assert!(!faults.pending());
    }

    #[test]
    fn stall_and_panic_rules_coexist() {
        let plan = ExecPlan {
            rules: vec![
                ExecRule {
                    worker: 0,
                    nth: 0,
                    action: ExecAction::Stall,
                },
                ExecRule {
                    worker: 1,
                    nth: 1,
                    action: ExecAction::Panic,
                },
            ],
        };
        let faults = plan.armed();
        assert_eq!(faults.on_unit(0, 0), Some(ExecAction::Stall));
        assert_eq!(faults.on_unit(1, 1), Some(ExecAction::Panic));
    }
}
