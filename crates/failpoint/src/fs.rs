//! The failpoint filesystem wrapper and its fault-plan registry.
//!
//! Production code calls the free functions and [`FpFile`] methods here
//! instead of `std::fs` directly. When no plan is armed (the default),
//! every call is a single relaxed atomic load plus the real syscall.
//! Tests arm a [`FailPlan`] over a path prefix via [`FailPlan::arm`];
//! while the returned [`FailScope`] guard lives, operations on paths
//! under that prefix consult the plan's rules and may fail, persist
//! partial bytes, or latch the scope into a "process died" state.

use std::fs::File;
use std::io::{self, Seek, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// How many scopes are currently armed. Zero means the fast path: no
/// lock, no rule evaluation, straight to `std::fs`.
static ARMED: AtomicUsize = AtomicUsize::new(0);

/// Monotonic scope-id source.
static NEXT_ID: AtomicU64 = AtomicU64::new(1);

/// The armed scopes. Only consulted when [`ARMED`] is nonzero.
static SCOPES: Mutex<Vec<ScopeEntry>> = Mutex::new(Vec::new());

/// The filesystem operation kinds a rule can match.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsOp {
    /// Creating (or truncating) a file for writing.
    Create,
    /// Re-opening an existing file for writing (journal truncation).
    Open,
    /// Writing bytes to an open file.
    Write,
    /// Truncating an open file to a length.
    SetLen,
    /// `fsync` on a file.
    Sync,
    /// `fsync` on a directory.
    DirSync,
    /// Renaming a file (the atomic-publish step).
    Rename,
    /// Removing a file.
    Remove,
    /// Any operation.
    Any,
}

impl FsOp {
    fn matches(self, actual: FsOp) -> bool {
        self == FsOp::Any || self == actual
    }
}

/// Which `io::Error` an injected failure reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Generic I/O error (`EIO`).
    Eio,
    /// Disk full (`ENOSPC`).
    Enospc,
}

impl FaultKind {
    fn to_error(self, what: &str) -> io::Error {
        match self {
            FaultKind::Eio => io::Error::other(format!("failpoint EIO: {what}")),
            FaultKind::Enospc => io::Error::new(
                io::ErrorKind::StorageFull,
                format!("failpoint ENOSPC: {what}"),
            ),
        }
    }
}

/// What happens when a rule fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsAction {
    /// The operation fails cleanly; nothing is persisted.
    Fail(FaultKind),
    /// For [`FsOp::Write`]: the first `keep` bytes of the buffer are
    /// persisted, then the call errors — a short/torn write. For
    /// non-write operations this behaves like [`FsAction::Fail`].
    ShortWrite {
        /// Bytes of the matched write to persist before failing.
        keep: u64,
        /// Error the failed remainder reports.
        kind: FaultKind,
    },
    /// Emulated process death: for a write, the first `keep` bytes are
    /// persisted; then the scope latches and **every** subsequent
    /// operation under it fails. The on-disk state is exactly what a
    /// real kill at this point would leave, and the test can resume
    /// from it after dropping the scope.
    Kill {
        /// Bytes of the matched write to persist before dying.
        keep: u64,
    },
}

/// One scripted fault: fire `action` on the `nth` (0-based) operation
/// that matches `op` and, optionally, a path suffix. Each rule fires at
/// most once ([`FsAction::Kill`] latches the whole scope instead).
#[derive(Debug, Clone)]
pub struct FsRule {
    /// Operation kind to match ([`FsOp::Any`] matches everything).
    pub op: FsOp,
    /// Only operations whose path ends with this suffix are counted
    /// (`None` counts every operation under the scope prefix).
    pub suffix: Option<String>,
    /// 0-based index among the matching operations at which to fire.
    pub nth: u64,
    /// The injected failure.
    pub action: FsAction,
}

/// A recurring fault schedule over the matching-operation index stream.
///
/// Where an [`FsRule`] fires at most once (a scripted incident), a
/// schedule models an *unreliable device*: within its `[start, end)`
/// window it fires on every matching-op index `i` with
/// `(i - start) % period < burst`. That expresses periodic error bursts
/// (a controller that chokes for `burst` operations every `period`) and,
/// with `burst >= period`, a solid outage window (a disk that is simply
/// full from op `start` until op `end`).
///
/// Schedules only fail operations cleanly ([`FsAction::Fail`]
/// semantics); torn writes and kills stay the domain of one-shot rules.
#[derive(Debug, Clone)]
pub struct FsSchedule {
    /// Operation kind to match ([`FsOp::Any`] matches everything).
    pub op: FsOp,
    /// Only operations whose path ends with this suffix are counted
    /// (`None` counts every matching operation under the scope prefix).
    pub suffix: Option<String>,
    /// First matching-op index (0-based) inside the window.
    pub start: u64,
    /// Matching-op index at which the window closes (exclusive);
    /// `None` keeps the schedule active forever.
    pub end: Option<u64>,
    /// Cycle length in matching operations.
    pub period: u64,
    /// Failing operations at the head of each cycle.
    pub burst: u64,
    /// Error the fired operations report.
    pub kind: FaultKind,
}

impl FsSchedule {
    /// Periodic `EIO` bursts: inside `[start, end)`, the first `burst`
    /// of every `period` matching operations fail.
    pub fn eio_bursts(op: FsOp, start: u64, end: Option<u64>, period: u64, burst: u64) -> Self {
        FsSchedule {
            op,
            suffix: None,
            start,
            end,
            period,
            burst,
            kind: FaultKind::Eio,
        }
    }

    /// A disk-full outage: every matching operation in `[start, end)`
    /// fails with `ENOSPC`.
    pub fn disk_full_window(op: FsOp, start: u64, end: u64) -> Self {
        FsSchedule {
            op,
            suffix: None,
            start,
            end: Some(end),
            period: 1,
            burst: 1,
            kind: FaultKind::Enospc,
        }
    }

    /// Whether the schedule fires at matching-op `index`.
    fn fires_at(&self, index: u64) -> bool {
        if index < self.start {
            return false;
        }
        if let Some(end) = self.end {
            if index >= end {
                return false;
            }
        }
        (index - self.start) % self.period.max(1) < self.burst
    }
}

/// A scripted set of filesystem fault rules over one path prefix.
#[derive(Debug, Clone)]
pub struct FailPlan {
    /// Only paths under this prefix consult the rules.
    pub prefix: PathBuf,
    /// The one-shot rules, each with an independent match counter.
    pub rules: Vec<FsRule>,
    /// Recurring schedules, each with an independent match counter.
    pub schedules: Vec<FsSchedule>,
}

impl FailPlan {
    /// A plan over `prefix` with no rules — useful purely to *count*
    /// operations via [`FailScope::ops`] when sizing a torture sweep.
    pub fn observe(prefix: impl Into<PathBuf>) -> Self {
        FailPlan {
            prefix: prefix.into(),
            rules: Vec::new(),
            schedules: Vec::new(),
        }
    }

    /// A plan with a single [`FsAction::Kill`] rule firing on the
    /// `nth` operation under the prefix, persisting `keep` bytes if
    /// that operation is a write.
    pub fn kill_at(prefix: impl Into<PathBuf>, nth: u64, keep: u64) -> Self {
        FailPlan {
            prefix: prefix.into(),
            rules: vec![FsRule {
                op: FsOp::Any,
                suffix: None,
                nth,
                action: FsAction::Kill { keep },
            }],
            schedules: Vec::new(),
        }
    }

    /// Adds a recurring [`FsSchedule`] to the plan.
    pub fn with_schedule(mut self, schedule: FsSchedule) -> Self {
        self.schedules.push(schedule);
        self
    }

    /// Arms the plan. Faults inject while the returned guard lives;
    /// dropping it disarms and restores the untouched fast path.
    pub fn arm(self) -> FailScope {
        let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
        let entry = ScopeEntry {
            id,
            prefix: self.prefix,
            rules: self
                .rules
                .into_iter()
                .map(|r| RuleState { rule: r, seen: 0 })
                .collect(),
            schedules: self
                .schedules
                .into_iter()
                .map(|s| ScheduleState { sched: s, seen: 0 })
                .collect(),
            killed: false,
            ops: 0,
            fired: 0,
        };
        SCOPES
            .lock()
            .expect("failpoint registry poisoned")
            .push(entry);
        ARMED.fetch_add(1, Ordering::Release);
        FailScope { id }
    }
}

/// RAII guard for an armed [`FailPlan`]. Dropping it disarms the plan.
#[derive(Debug)]
pub struct FailScope {
    id: u64,
}

impl FailScope {
    /// Operations observed under the scope's prefix so far.
    pub fn ops(&self) -> u64 {
        self.with_entry(|e| e.ops)
    }

    /// Whether a [`FsAction::Kill`] rule has latched the scope.
    pub fn killed(&self) -> bool {
        self.with_entry(|e| e.killed)
    }

    /// How many rules have fired so far.
    pub fn fired(&self) -> u64 {
        self.with_entry(|e| e.fired)
    }

    fn with_entry<T>(&self, f: impl FnOnce(&ScopeEntry) -> T) -> T {
        let scopes = SCOPES.lock().expect("failpoint registry poisoned");
        let entry = scopes
            .iter()
            .find(|e| e.id == self.id)
            .expect("scope alive while guard held");
        f(entry)
    }
}

impl Drop for FailScope {
    fn drop(&mut self) {
        let mut scopes = SCOPES.lock().expect("failpoint registry poisoned");
        scopes.retain(|e| e.id != self.id);
        ARMED.fetch_sub(1, Ordering::Release);
    }
}

struct ScopeEntry {
    id: u64,
    prefix: PathBuf,
    rules: Vec<RuleState>,
    schedules: Vec<ScheduleState>,
    killed: bool,
    ops: u64,
    fired: u64,
}

struct RuleState {
    rule: FsRule,
    seen: u64,
}

struct ScheduleState {
    sched: FsSchedule,
    seen: u64,
}

/// What the registry decided for one operation.
enum Decision {
    /// No scope matched; forward to `std::fs` untouched.
    Pass,
    /// Fail with this error; nothing persisted.
    Fail(io::Error),
    /// Persist the first `keep` bytes of the write, then fail.
    Partial { keep: usize, error: io::Error },
}

/// Consults every armed scope for `op` on `path`. Called only when at
/// least one scope is armed.
fn consult(op: FsOp, path: &Path, write_len: usize) -> Decision {
    let mut scopes = SCOPES.lock().expect("failpoint registry poisoned");
    for entry in scopes.iter_mut() {
        if !path.starts_with(&entry.prefix) {
            continue;
        }
        entry.ops += 1;
        if entry.killed {
            return Decision::Fail(io::Error::other(format!(
                "failpoint: process killed ({})",
                path.display()
            )));
        }
        // Schedule counters advance on every matching op regardless of
        // what the one-shot rules decide, so a schedule's index stream
        // stays a pure function of the workload, not of which rules
        // happened to fire first.
        let mut scheduled: Option<FaultKind> = None;
        for ss in entry.schedules.iter_mut() {
            if !ss.sched.op.matches(op) {
                continue;
            }
            if let Some(suffix) = &ss.sched.suffix {
                let name = path.to_string_lossy();
                if !name.ends_with(suffix.as_str()) {
                    continue;
                }
            }
            let index = ss.seen;
            ss.seen += 1;
            if scheduled.is_none() && ss.sched.fires_at(index) {
                scheduled = Some(ss.sched.kind);
            }
        }
        for rs in entry.rules.iter_mut() {
            if !rs.rule.op.matches(op) {
                continue;
            }
            if let Some(suffix) = &rs.rule.suffix {
                let name = path.to_string_lossy();
                if !name.ends_with(suffix.as_str()) {
                    continue;
                }
            }
            let index = rs.seen;
            rs.seen += 1;
            if index != rs.rule.nth {
                continue;
            }
            entry.fired += 1;
            let what = format!("{op:?} {}", path.display());
            return match rs.rule.action {
                FsAction::Fail(kind) => Decision::Fail(kind.to_error(&what)),
                FsAction::ShortWrite { keep, kind } => Decision::Partial {
                    keep: (keep as usize).min(write_len),
                    error: kind.to_error(&what),
                },
                FsAction::Kill { keep } => {
                    entry.killed = true;
                    Decision::Partial {
                        keep: (keep as usize).min(write_len),
                        error: io::Error::other(format!("failpoint: killed during {what}")),
                    }
                }
            };
        }
        if let Some(kind) = scheduled {
            entry.fired += 1;
            return Decision::Fail(kind.to_error(&format!("{op:?} {}", path.display())));
        }
        // Matched the scope but neither a rule nor a schedule fired:
        // pass through. A path belongs to at most one test's prefix, so
        // stop scanning.
        return Decision::Pass;
    }
    Decision::Pass
}

/// Fast-path check + consult. Returns `None` when the op may proceed.
fn check(op: FsOp, path: &Path, write_len: usize) -> Option<Decision> {
    if ARMED.load(Ordering::Acquire) == 0 {
        return None;
    }
    match consult(op, path, write_len) {
        Decision::Pass => None,
        d => Some(d),
    }
}

/// A writable file routed through the failpoint registry. Implements
/// [`io::Write`], so it drops into `BufWriter` where `File` used to be.
#[derive(Debug)]
pub struct FpFile {
    inner: File,
    path: PathBuf,
}

impl FpFile {
    /// Creates (or truncates) a file, like [`File::create`].
    pub fn create(path: &Path) -> io::Result<FpFile> {
        if let Some(d) = check(FsOp::Create, path, 0) {
            return Err(decision_error(d));
        }
        Ok(FpFile {
            inner: File::create(path)?,
            path: path.to_path_buf(),
        })
    }

    /// Opens an existing file for writing without truncation (creating
    /// it if absent), positioned at the start.
    pub fn open_rw(path: &Path) -> io::Result<FpFile> {
        if let Some(d) = check(FsOp::Open, path, 0) {
            return Err(decision_error(d));
        }
        let inner = std::fs::OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        Ok(FpFile {
            inner,
            path: path.to_path_buf(),
        })
    }

    /// Truncates (or extends) the file to `len` bytes.
    pub fn set_len(&self, len: u64) -> io::Result<()> {
        if let Some(d) = check(FsOp::SetLen, &self.path, 0) {
            return Err(decision_error(d));
        }
        self.inner.set_len(len)
    }

    /// Seeks the underlying file to its end.
    pub fn seek_end(&mut self) -> io::Result<()> {
        self.inner.seek(io::SeekFrom::End(0)).map(|_| ())
    }

    /// Syncs file contents and metadata to disk, like [`File::sync_all`].
    pub fn sync_all(&self) -> io::Result<()> {
        if let Some(d) = check(FsOp::Sync, &self.path, 0) {
            return Err(decision_error(d));
        }
        self.inner.sync_all()
    }

    /// The path the file was opened at.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

fn decision_error(d: Decision) -> io::Error {
    match d {
        Decision::Fail(e) => e,
        Decision::Partial { error, .. } => error,
        Decision::Pass => unreachable!("pass filtered by check()"),
    }
}

impl Write for FpFile {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match check(FsOp::Write, &self.path, buf.len()) {
            None => self.inner.write(buf),
            Some(Decision::Partial { keep, error }) => {
                // A short/torn write: the prefix lands on disk, then the
                // syscall "fails". write_all callers see the error; the
                // persisted prefix is exactly what a real short write or
                // kill would have left behind.
                if keep > 0 {
                    self.inner.write_all(&buf[..keep])?;
                }
                Err(error)
            }
            Some(d) => Err(decision_error(d)),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// Renames `from` to `to` (the atomic-publish step), like [`std::fs::rename`].
pub fn rename(from: &Path, to: &Path) -> io::Result<()> {
    if let Some(d) = check(FsOp::Rename, from, 0) {
        return Err(decision_error(d));
    }
    std::fs::rename(from, to)
}

/// Writes a whole file, like [`std::fs::write`] (one `Create` + one
/// `Write` operation against the registry).
pub fn write(path: &Path, contents: &[u8]) -> io::Result<()> {
    let mut f = FpFile::create(path)?;
    f.write_all(contents)
}

/// Removes a file, like [`std::fs::remove_file`].
pub fn remove_file(path: &Path) -> io::Result<()> {
    if let Some(d) = check(FsOp::Remove, path, 0) {
        return Err(decision_error(d));
    }
    std::fs::remove_file(path)
}

/// Opens `path` and syncs its contents to disk — the deferred-fsync step
/// of a group commit, where files were written unsynced and are made
/// durable in a batch.
pub fn sync_file(path: &Path) -> io::Result<()> {
    if let Some(d) = check(FsOp::Sync, path, 0) {
        return Err(decision_error(d));
    }
    File::open(path)?.sync_all()
}

/// Syncs a directory, making completed renames within it durable.
pub fn sync_dir(path: &Path) -> io::Result<()> {
    if let Some(d) = check(FsOp::DirSync, path, 0) {
        return Err(decision_error(d));
    }
    File::open(path)?.sync_all()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    fn temp_dir(tag: &str) -> PathBuf {
        static N: AtomicU32 = AtomicU32::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("xmap-fp-{}-{tag}-{n}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn disabled_path_passes_through() {
        let dir = temp_dir("off");
        let path = dir.join("plain.bin");
        let mut f = FpFile::create(&path).unwrap();
        f.write_all(b"hello").unwrap();
        f.sync_all().unwrap();
        drop(f);
        assert_eq!(std::fs::read(&path).unwrap(), b"hello");
        let renamed = dir.join("renamed.bin");
        rename(&path, &renamed).unwrap();
        remove_file(&renamed).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fail_rule_fires_on_nth_matching_op() {
        let dir = temp_dir("nth");
        let scope = FailPlan {
            prefix: dir.clone(),
            rules: vec![FsRule {
                op: FsOp::Sync,
                suffix: None,
                nth: 1,
                action: FsAction::Fail(FaultKind::Enospc),
            }],
            schedules: Vec::new(),
        }
        .arm();
        let mut f = FpFile::create(&dir.join("a")).unwrap();
        f.write_all(b"x").unwrap();
        f.sync_all().unwrap(); // sync #0: passes
        let err = f.sync_all().unwrap_err(); // sync #1: fires
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        f.sync_all().unwrap(); // rule consumed
        assert_eq!(scope.fired(), 1);
        drop(scope);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn short_write_persists_prefix_then_errors() {
        let dir = temp_dir("short");
        let path = dir.join("torn.bin");
        let scope = FailPlan {
            prefix: dir.clone(),
            rules: vec![FsRule {
                op: FsOp::Write,
                suffix: None,
                nth: 0,
                action: FsAction::ShortWrite {
                    keep: 3,
                    kind: FaultKind::Eio,
                },
            }],
            schedules: Vec::new(),
        }
        .arm();
        let mut f = FpFile::create(&path).unwrap();
        assert!(f.write_all(b"abcdef").is_err());
        drop(scope);
        drop(f);
        assert_eq!(std::fs::read(&path).unwrap(), b"abc");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn kill_latches_everything_under_scope() {
        let dir = temp_dir("kill");
        let path = dir.join("k.bin");
        let scope = FailPlan::kill_at(&dir, 2, 1).arm();
        let mut f = FpFile::create(&path).unwrap(); // op 0
        f.write_all(b"aa").unwrap(); // op 1
        assert!(f.write_all(b"bcd").is_err()); // op 2: kill, keeps 1 byte
        assert!(scope.killed());
        // Everything after the kill fails, even fresh creates.
        assert!(FpFile::create(&dir.join("other")).is_err());
        assert!(rename(&path, &dir.join("moved")).is_err());
        drop(scope);
        drop(f);
        // Surviving bytes: the two-byte write plus one byte of the next.
        assert_eq!(std::fs::read(&path).unwrap(), b"aab");
        // Disarmed: operations work again.
        assert!(FpFile::create(&dir.join("after")).is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn scopes_are_isolated_by_prefix() {
        let dir_a = temp_dir("iso-a");
        let dir_b = temp_dir("iso-b");
        let scope = FailPlan {
            prefix: dir_a.clone(),
            rules: vec![FsRule {
                op: FsOp::Any,
                suffix: None,
                nth: 0,
                action: FsAction::Fail(FaultKind::Eio),
            }],
            schedules: Vec::new(),
        }
        .arm();
        // dir_b is untouched by dir_a's plan.
        assert!(FpFile::create(&dir_b.join("ok")).is_ok());
        assert!(FpFile::create(&dir_a.join("no")).is_err());
        assert_eq!(scope.ops(), 1);
        drop(scope);
        let _ = std::fs::remove_dir_all(&dir_a);
        let _ = std::fs::remove_dir_all(&dir_b);
    }

    #[test]
    fn observe_counts_without_failing() {
        let dir = temp_dir("obs");
        let scope = FailPlan::observe(&dir).arm();
        let mut f = FpFile::create(&dir.join("c")).unwrap();
        f.write_all(b"1").unwrap();
        f.sync_all().unwrap();
        assert_eq!(scope.ops(), 3);
        assert_eq!(scope.fired(), 0);
        assert!(!scope.killed());
        drop(scope);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn periodic_bursts_fire_inside_the_window_only() {
        let dir = temp_dir("burst");
        // Window [2, 8), period 3, burst 1: syncs 2 and 5 fail, 8+ pass.
        let scope = FailPlan::observe(&dir)
            .with_schedule(FsSchedule::eio_bursts(FsOp::Sync, 2, Some(8), 3, 1))
            .arm();
        let mut f = FpFile::create(&dir.join("s")).unwrap();
        f.write_all(b"x").unwrap();
        let outcomes: Vec<bool> = (0..10).map(|_| f.sync_all().is_ok()).collect();
        let expected: Vec<bool> = (0..10).map(|i| i != 2 && i != 5).collect();
        assert_eq!(outcomes, expected);
        assert_eq!(scope.fired(), 2);
        drop(scope);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_full_window_rejects_every_write_with_enospc() {
        let dir = temp_dir("full");
        let scope = FailPlan::observe(&dir)
            .with_schedule(FsSchedule::disk_full_window(FsOp::Write, 1, 3))
            .arm();
        let mut f = FpFile::create(&dir.join("w")).unwrap();
        f.write_all(b"a").unwrap(); // write 0: before the window
        for _ in 1..3 {
            let err = f.write_all(b"b").unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        }
        f.write_all(b"c").unwrap(); // write 3: window closed
        drop(scope);
        drop(f);
        assert_eq!(std::fs::read(dir.join("w")).unwrap(), b"ac");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn one_shot_rule_wins_but_schedule_counter_still_advances() {
        let dir = temp_dir("mix");
        // The rule claims sync 1 with EIO; the schedule would fail syncs
        // 1 and 2 with ENOSPC. Sync 1 must report the rule's EIO, and
        // sync 2 must still fire the schedule (its counter saw sync 1).
        let mut plan =
            FailPlan::observe(&dir).with_schedule(FsSchedule::disk_full_window(FsOp::Sync, 1, 3));
        plan.rules.push(FsRule {
            op: FsOp::Sync,
            suffix: None,
            nth: 1,
            action: FsAction::Fail(FaultKind::Eio),
        });
        let scope = plan.arm();
        let mut f = FpFile::create(&dir.join("m")).unwrap();
        f.write_all(b"x").unwrap();
        f.sync_all().unwrap(); // sync 0
        let err = f.sync_all().unwrap_err(); // sync 1: rule wins
        assert_eq!(err.kind(), io::ErrorKind::Other);
        let err = f.sync_all().unwrap_err(); // sync 2: schedule
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        f.sync_all().unwrap(); // sync 3: window closed
        assert_eq!(scope.fired(), 2);
        drop(scope);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn suffix_filter_counts_only_matching_paths() {
        let dir = temp_dir("suffix");
        let scope = FailPlan {
            prefix: dir.clone(),
            rules: vec![FsRule {
                op: FsOp::Create,
                suffix: Some(".ckpt".into()),
                nth: 0,
                action: FsAction::Fail(FaultKind::Eio),
            }],
            schedules: Vec::new(),
        }
        .arm();
        assert!(FpFile::create(&dir.join("a.wal")).is_ok());
        assert!(FpFile::create(&dir.join("b.ckpt")).is_err());
        drop(scope);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
