//! # xmap-failpoint
//!
//! Deterministic host-side fault injection for the xmap suite.
//!
//! PR 1's `FaultPlan` made the *network* hostile — seeded loss,
//! duplication, rate-limit pressure — and the scanner robust to it. This
//! crate is the same idea for the *host*: the disk can return `EIO` or
//! `ENOSPC`, a write can land short or torn, an `fsync` can fail, a
//! process can die mid-write, and an executor worker thread can panic or
//! stall. All of those are injectable here, scripted and repeatable, so
//! the storage and executor layers can be tortured in ordinary unit and
//! integration tests instead of waiting for a flaky disk in production.
//!
//! ## Pieces
//!
//! - [`fs`] — a thin filesystem wrapper ([`fs::FpFile`], [`fs::rename`],
//!   …) the `xmap-state` WAL/checkpoint writers route through. With no
//!   plan armed every call costs one relaxed atomic load and forwards
//!   straight to `std::fs` — the production path stays at performance
//!   parity.
//! - [`FailPlan`] / [`FailScope`] — a scripted set of filesystem fault
//!   rules, scoped to a path prefix. Scoping keeps concurrently running
//!   tests isolated: each test arms a plan over its own temp directory
//!   and only operations under that prefix consult the rules.
//! - [`FsSchedule`] — recurring fault schedules riding on a plan:
//!   periodic `EIO` bursts and disk-full (`ENOSPC`) windows over the
//!   operation stream, for long-running degraded-host scenarios where a
//!   one-shot rule would model a single incident rather than a sick
//!   device.
//! - [`ExecPlan`] / [`ExecFaults`] — scripted worker panics and stalls
//!   for the parallel executors, matched by `(worker, nth unit of
//!   work)`.
//!
//! ## Fault taxonomy
//!
//! [`FsAction`] models the failure modes a checkpoint writer actually
//! meets: a clean error with nothing persisted ([`FsAction::Fail`]), a
//! short write that persists a prefix and then errors
//! ([`FsAction::ShortWrite`] — what a full disk or a signal-interrupted
//! `write(2)` leaves behind), and a process-death emulation
//! ([`FsAction::Kill`]) that persists a prefix of the current write and
//! then fails *every* subsequent operation under the scope, so the test
//! can afterwards inspect and resume from exactly the bytes a real kill
//! would have left on disk.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exec;
pub mod fs;

pub use exec::{ExecAction, ExecFaults, ExecPlan, ExecRule};
pub use fs::{FailPlan, FailScope, FaultKind, FsAction, FsOp, FsRule, FsSchedule};
