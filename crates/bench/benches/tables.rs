//! One bench per paper table/figure: times the full regeneration pipeline
//! for each artifact at the quick scale (the `repro` binary prints the
//! actual rows; these benches make regeneration cost visible and guard
//! against regressions).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use xmap_bench::{
    fig2, fig3, fig5, fig6, table1, table10, table11, table12, table2, table3, table4, table5,
    table6, table7, table8, table9, Experiment, ExperimentConfig,
};

fn quick_exp() -> Experiment {
    Experiment::new(ExperimentConfig::quick())
}

fn bench_tables(c: &mut Criterion) {
    let mut g = c.benchmark_group("tables");
    g.sample_size(10);

    g.bench_function("table1_boundary_inference", |b| {
        b.iter(|| {
            let mut exp = quick_exp();
            black_box(table1(&mut exp))
        })
    });
    g.bench_function("table2_periphery_scan", |b| {
        b.iter(|| {
            let mut exp = quick_exp();
            black_box(table2(&mut exp))
        })
    });
    // Tables III-V and Figures 2-3 share the discovery+survey pipeline;
    // bench the incremental rendering on a prepared experiment.
    g.bench_function("table3_iid_analysis", |b| {
        let mut exp = quick_exp();
        exp.campaign();
        b.iter(|| black_box(table3(&mut exp)))
    });
    g.bench_function("table4_vendors", |b| {
        let mut exp = quick_exp();
        exp.campaign();
        b.iter(|| black_box(table4(&mut exp)))
    });
    g.bench_function("table5_service_iid", |b| {
        let mut exp = quick_exp();
        exp.survey();
        b.iter(|| black_box(table5(&mut exp)))
    });
    g.bench_function("table6_probe_spec", |b| b.iter(|| black_box(table6())));
    g.bench_function("table7_service_survey", |b| {
        b.iter(|| {
            let mut exp = quick_exp();
            black_box(table7(&mut exp))
        })
    });
    g.bench_function("table8_software_cves", |b| {
        let mut exp = quick_exp();
        exp.survey();
        b.iter(|| black_box(table8(&mut exp)))
    });
    g.bench_function("table9_bgp_survey", |b| {
        b.iter(|| {
            let mut exp = quick_exp();
            black_box(table9(&mut exp))
        })
    });
    g.bench_function("table10_loop_iid", |b| {
        let mut exp = quick_exp();
        exp.bgp();
        b.iter(|| black_box(table10(&mut exp)))
    });
    g.bench_function("table11_depth_survey", |b| {
        b.iter(|| {
            let mut exp = quick_exp();
            black_box(table11(&mut exp))
        })
    });
    g.bench_function("table12_case_studies", |b| b.iter(|| black_box(table12())));
    g.bench_function("fig2_vendor_services", |b| {
        let mut exp = quick_exp();
        exp.survey();
        b.iter(|| black_box(fig2(&mut exp)))
    });
    g.bench_function("fig3_service_vendors", |b| {
        let mut exp = quick_exp();
        exp.survey();
        b.iter(|| black_box(fig3(&mut exp)))
    });
    g.bench_function("fig5_loop_geography", |b| {
        let mut exp = quick_exp();
        exp.bgp();
        b.iter(|| black_box(fig5(&mut exp)))
    });
    g.bench_function("fig6_loop_vendors", |b| {
        let mut exp = quick_exp();
        exp.depth();
        b.iter(|| black_box(fig6(&mut exp)))
    });
    g.finish();
}

criterion_group!(benches, bench_tables);
criterion_main!(benches);
