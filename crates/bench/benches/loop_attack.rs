//! Routing-loop benches: amplification measurement cost, the h-choice
//! ablation (`hoplimit_tradeoff`), and the full case-study testbed.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use xmap::{ScanConfig, Scanner};
use xmap_loopscan::{measure_amplification, run_case_studies, DepthSurvey};
use xmap_netsim::topology::NAMED_MODELS;
use xmap_netsim::world::{World, WorldConfig};

fn bench_amplification(c: &mut Criterion) {
    let model = NAMED_MODELS.iter().find(|m| m.brand == "Huawei").unwrap();
    let mut g = c.benchmark_group("amplification");
    for n in [0u8, 20, 50] {
        g.bench_with_input(BenchmarkId::new("attack_packet_path", n), &n, |b, n| {
            b.iter(|| black_box(measure_amplification(model, *n)))
        });
    }
    g.finish();

    c.bench_function("case_studies_99_routers", |b| {
        b.iter(|| black_box(run_case_studies()))
    });
}

/// The hop-limit tradeoff of Section VI-B: probing with a larger h finds
/// the same loops but generates proportionally more loop traffic per
/// detection — measured here as the world's loop-forward counter per
/// confirmed loop at h = 32 / 64 / 255.
fn bench_hoplimit_tradeoff(c: &mut Criterion) {
    let mut g = c.benchmark_group("hoplimit_tradeoff");
    g.sample_size(10);
    for h in [32u8, 64, 255] {
        g.bench_with_input(BenchmarkId::new("depth_survey_h", h), &h, |b, h| {
            b.iter(|| {
                let world = World::with_config(WorldConfig::lossless(5, 10));
                let mut scanner = Scanner::new(
                    world,
                    ScanConfig {
                        seed: 5,
                        ..Default::default()
                    },
                );
                let mut result = xmap_loopscan::survey::DepthSurveyResult::default();
                let mut survey = DepthSurvey::new(1 << 12);
                survey.hop_limit = *h;
                survey.run_block(
                    &mut scanner,
                    &xmap_netsim::isp::SAMPLE_BLOCKS[11],
                    &mut result,
                );
                black_box(scanner.network_mut().stats().loop_forwards)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_amplification, bench_hoplimit_tradeoff);
criterion_main!(benches);
