//! Parallel shard executor scaling: `scanner_throughput`'s end-to-end
//! workload at 1, 2 and 4 workers.
//!
//! Each config runs the same seeded scan (`SCAN_TARGETS` probes against
//! the simulated Internet) through [`ParallelScanner`], so elapsed time
//! directly compares against `scanner_throughput/end_to_end/10000` — the
//! 1-worker config *is* that workload plus the executor's merge. Worlds
//! are rebuilt in the untimed `iter_batched` setup (BGP-table generation
//! dwarfs the scan itself and is paid once per worker either way).
//!
//! Scaling expectation: ≥2.5× Melem/s at 4 workers on a ≥4-core host.
//! On fewer cores the workers serialize and the numbers converge on the
//! 1-worker config — record the host's core count next to any figure
//! (see EXPERIMENTS.md "Parallel executor scaling").

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use xmap::{Blocklist, IcmpEchoProbe, ParallelScanner, ScanConfig};
use xmap_netsim::World;

/// Probes per run — matches `scanner_throughput/end_to_end/10000`.
const SCAN_TARGETS: u64 = 10_000;

fn bench_parallel_scaling(c: &mut Criterion) {
    let range: xmap_addr::ScanRange = "2409:8000::/28-60".parse().unwrap();
    let mut g = c.benchmark_group("parallel_scaling");
    for workers in [1usize, 2, 4] {
        g.throughput(Throughput::Elements(SCAN_TARGETS));
        g.bench_with_input(
            BenchmarkId::new("end_to_end_10k", workers),
            &workers,
            |b, &workers| {
                b.iter_batched(
                    || {
                        ParallelScanner::new(
                            workers,
                            ScanConfig {
                                max_targets: Some(SCAN_TARGETS),
                                ..Default::default()
                            },
                            |_, telemetry| {
                                let mut world = World::new(7);
                                world.set_telemetry(telemetry);
                                world
                            },
                        )
                    },
                    |mut scanner| {
                        black_box(scanner.run(&range, &IcmpEchoProbe, &Blocklist::allow_all()))
                    },
                    BatchSize::LargeInput,
                )
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_parallel_scaling);
criterion_main!(benches);
