//! Measures the telemetry cost on the scan hot path.
//!
//! The subsystem's budget is <2% overhead: the instrumented scan (live
//! registry, relaxed atomic adds) is benchmarked against the same scan
//! with `Telemetry::disabled()` (every handle inert), and against a scan
//! with event tracing enabled (ring-buffer pushes; off by default in the
//! library). Counter increments alone are also timed to expose the raw
//! per-add cost.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use std::hint::black_box;
use xmap::{Blocklist, IcmpEchoProbe, ScanConfig, Scanner};
use xmap_netsim::world::WorldConfig;
use xmap_netsim::World;
use xmap_telemetry::Telemetry;

const TARGETS: u64 = 4_096;

fn scan_once(telemetry: Telemetry) -> u64 {
    let mut world = World::with_config(WorldConfig::lossless(7, 10));
    world.set_telemetry(&telemetry);
    let mut scanner = Scanner::with_telemetry(
        world,
        ScanConfig {
            seed: 7,
            max_targets: Some(TARGETS),
            ..Default::default()
        },
        telemetry,
    );
    let range: xmap_addr::ScanRange = "2409:8000::/28-60".parse().unwrap();
    let results = scanner.run(&range, &IcmpEchoProbe, &Blocklist::with_standard_reserved());
    results.stats.sent
}

fn bench_scan_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("telemetry_overhead");
    g.throughput(Throughput::Elements(TARGETS));
    g.bench_function("scan_4k_disabled", |b| {
        b.iter(|| black_box(scan_once(Telemetry::disabled())))
    });
    g.bench_function("scan_4k_metrics", |b| {
        b.iter(|| black_box(scan_once(Telemetry::new())))
    });
    g.bench_function("scan_4k_metrics_and_trace", |b| {
        b.iter(|| black_box(scan_once(Telemetry::with_tracing())))
    });
    g.finish();
}

fn bench_counter_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("counter_ops");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("live_add_10k", |b| {
        let telemetry = Telemetry::new();
        let counter = telemetry.registry.counter("bench.counter");
        b.iter(|| {
            for _ in 0..10_000 {
                counter.inc();
            }
            black_box(counter.get())
        })
    });
    g.bench_function("disabled_add_10k", |b| {
        let telemetry = Telemetry::disabled();
        let counter = telemetry.registry.counter("bench.counter");
        b.iter(|| {
            for _ in 0..10_000 {
                counter.inc();
            }
            black_box(counter.get())
        })
    });
    g.finish();

    c.bench_function("snapshot_json", |b| {
        let telemetry = Telemetry::new();
        for i in 0..32 {
            telemetry.registry.counter(&format!("bench.c{i}")).add(i);
        }
        b.iter_batched(
            || (),
            |()| black_box(telemetry.registry.snapshot().to_json()),
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_scan_overhead, bench_counter_ops);
criterion_main!(benches);
