//! Blocklist ablation (DESIGN.md §4): radix-trie vs linear scan.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use xmap::blocklist::{Blocklist, LinearBlocklist, Verdict};
use xmap_addr::{Ip6, Prefix};

fn prefixes(n: u64) -> Vec<(Prefix, Verdict)> {
    (0..n)
        .map(|i| {
            let addr = Ip6::new(((0x2400 + (i % 64)) as u128) << 112 | (i as u128) << 80);
            let len = 32 + (i % 17) as u8;
            let verdict = if i % 3 == 0 {
                Verdict::Deny
            } else {
                Verdict::Allow
            };
            (Prefix::new(addr, len), verdict)
        })
        .collect()
}

fn lookup_targets(n: u64) -> Vec<Ip6> {
    (0..n)
        .map(|i| Ip6::new(((0x2400 + (i % 80)) as u128) << 112 | (i as u128) << 60 | i as u128))
        .collect()
}

fn bench_blocklist(c: &mut Criterion) {
    for size in [64u64, 1024] {
        let entries = prefixes(size);
        let targets = lookup_targets(1000);

        let mut trie = Blocklist::allow_all();
        let mut linear = LinearBlocklist::new(Verdict::Allow);
        for (p, v) in &entries {
            trie.insert(*p, *v);
            linear.insert(*p, *v);
        }

        let mut g = c.benchmark_group(&format!("blocklist_{size}_entries"));
        g.throughput(Throughput::Elements(targets.len() as u64));
        g.bench_function("trie_lookup_1k", |b| {
            b.iter(|| {
                let mut denied = 0u32;
                for t in &targets {
                    if !trie.is_allowed(black_box(*t)) {
                        denied += 1;
                    }
                }
                black_box(denied)
            })
        });
        g.bench_function("linear_lookup_1k", |b| {
            b.iter(|| {
                let mut denied = 0u32;
                for t in &targets {
                    if !linear.is_allowed(black_box(*t)) {
                        denied += 1;
                    }
                }
                black_box(denied)
            })
        });
        g.finish();
    }
}

criterion_group!(benches, bench_blocklist);
criterion_main!(benches);
