//! Measures the checkpoint subsystem's cost on the scan hot path.
//!
//! The budget is <2% overhead with checkpointing disabled: a scanner with
//! no sink attached must run at the same speed as before the subsystem
//! existed (the hot path pays one `Option::is_some` per slot). The
//! journalling and periodic-checkpoint configurations are measured
//! against that baseline to price durability per cadence.

use std::path::Path;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use xmap::{build_manifest, Blocklist, IcmpEchoProbe, RangeMode, ScanConfig, ScanSession, Scanner};
use xmap_netsim::world::WorldConfig;
use xmap_netsim::World;

const TARGETS: u64 = 4_096;

fn config() -> ScanConfig {
    ScanConfig {
        seed: 7,
        max_targets: Some(TARGETS),
        ..Default::default()
    }
}

fn range() -> xmap_addr::ScanRange {
    "2409:8000::/28-60".parse().unwrap()
}

fn scan_plain() -> u64 {
    let world = World::with_config(WorldConfig::lossless(7, 10));
    let mut scanner = Scanner::new(world, config());
    let results = scanner.run(
        &range(),
        &IcmpEchoProbe,
        &Blocklist::with_standard_reserved(),
    );
    results.stats.sent
}

/// One full checkpointed scan into `dir` (recreated each call — session
/// creation clears stale worker files, so the journal never accretes).
fn scan_checkpointed(dir: &Path, every: u64) -> u64 {
    let blocklist = Blocklist::with_standard_reserved();
    let cfg = config();
    let ranges = [range()];
    let manifest = build_manifest(1, &cfg, &IcmpEchoProbe, &ranges, &blocklist, 7, every);
    let session = ScanSession::create(dir, manifest).expect("create session");
    let wr = session.fresh_worker(0, 1).expect("fresh worker");
    let world = World::with_config(WorldConfig::lossless(7, 10));
    let mut scanner = Scanner::new(world, cfg);
    scanner.set_sink(wr.sink);
    let results =
        scanner.run_checkpointed(0, &ranges[0], &IcmpEchoProbe, &blocklist, RangeMode::Fresh);
    results.stats.sent
}

fn bench_checkpoint_overhead(c: &mut Criterion) {
    let dir = std::env::temp_dir().join(format!("xmap-bench-ckpt-{}", std::process::id()));
    let mut g = c.benchmark_group("checkpoint_overhead");
    g.throughput(Throughput::Elements(TARGETS));
    g.bench_function("scan_4k_no_checkpoint", |b| {
        b.iter(|| black_box(scan_plain()))
    });
    g.bench_function("scan_4k_journal_only", |b| {
        b.iter(|| black_box(scan_checkpointed(&dir, 0)))
    });
    g.bench_function("scan_4k_every_1024", |b| {
        b.iter(|| black_box(scan_checkpointed(&dir, 1024)))
    });
    g.bench_function("scan_4k_every_64", |b| {
        b.iter(|| black_box(scan_checkpointed(&dir, 64)))
    });
    g.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, bench_checkpoint_overhead);
criterion_main!(benches);
