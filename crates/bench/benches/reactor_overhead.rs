//! Prices the reactor engine's dispatch machinery against lock-step.
//!
//! Both engines produce byte-identical artifacts (see DESIGN.md §5i), so
//! the only question is cost: the timer heap, the transport indirection
//! and the two-phase receive drain must stay within 5% of the lock-step
//! loop they mirror (`scripts/bench_reactor_summary.py` enforces the
//! budget from this bench's report). Two workloads bound the engine's
//! regimes: a lossless scan (timer heap armed but never firing — pure
//! dispatch overhead) and a 30%-loss scan (the heap carrying real
//! retransmit load).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use std::time::Duration;
use xmap::{Blocklist, IcmpEchoProbe, ScanConfig, ScanEngine, Scanner};
use xmap_netsim::world::WorldConfig;
use xmap_netsim::{FaultPlan, World};

const TARGETS: u64 = 4_096;

fn run(engine: ScanEngine, loss: bool) -> u64 {
    let mut config = ScanConfig {
        seed: 7,
        max_targets: Some(TARGETS),
        engine,
        ..Default::default()
    };
    let world = if loss {
        config.probes_per_target = 3;
        config.rto_ticks = 4;
        World::with_config(
            WorldConfig::lossless(7, 10)
                .with_fault(FaultPlan::none().seeded(0xF00D).with_forward_loss(0.3)),
        )
    } else {
        World::with_config(WorldConfig::lossless(7, 10))
    };
    let mut scanner = Scanner::new(world, config);
    let results = scanner.run(
        &"2409:8000::/28-60".parse().unwrap(),
        &IcmpEchoProbe,
        &Blocklist::with_standard_reserved(),
    );
    results.stats.sent
}

fn bench_reactor_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("reactor_overhead");
    g.throughput(Throughput::Elements(TARGETS));
    // A scan iteration is milliseconds long; stretch the measured batch
    // so each engine averages over enough iterations that scheduler
    // noise does not masquerade as engine overhead.
    g.measurement_time(Duration::from_millis(400));
    g.bench_function("scan_4k/lockstep", |b| {
        b.iter(|| black_box(run(ScanEngine::LockStep, false)))
    });
    g.bench_function("scan_4k/reactor", |b| {
        b.iter(|| black_box(run(ScanEngine::Reactor, false)))
    });
    g.bench_function("lossy_4k/lockstep", |b| {
        b.iter(|| black_box(run(ScanEngine::LockStep, true)))
    });
    g.bench_function("lossy_4k/reactor", |b| {
        b.iter(|| black_box(run(ScanEngine::Reactor, true)))
    });
    g.finish();
}

criterion_group!(benches, bench_reactor_overhead);
criterion_main!(benches);
