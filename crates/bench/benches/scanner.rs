//! Scanner micro-benchmarks: the numbers behind the feasibility analysis.
//!
//! `scanner_throughput` measures end-to-end probes/second of this
//! implementation against the simulated Internet — the in-memory analogue
//! of the paper's 25 kpps / 1 Gbps wire rates, used by `repro feasibility`
//! to ground the duration arithmetic. The permutation benches are the
//! `permutation_vs_sequential` ablation of DESIGN.md §4.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use xmap::{
    fill_host_bits, Blocklist, Cycle, FeistelPermutation, IcmpEchoProbe, ProbeModule, ScanConfig,
    Scanner, Validator,
};
use xmap_netsim::world::WorldConfig;
use xmap_netsim::{FaultPlan, World};

fn bench_permutations(c: &mut Criterion) {
    let mut g = c.benchmark_group("permutation");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("cyclic_iterate_10k", |b| {
        let cycle = Cycle::new(1 << 32, 7);
        b.iter(|| {
            let mut acc = 0u64;
            for v in cycle.iter().take(10_000) {
                acc ^= v;
            }
            black_box(acc)
        })
    });
    g.bench_function("feistel_iterate_10k", |b| {
        let perm = FeistelPermutation::new(1 << 32, 7);
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..10_000u64 {
                acc ^= perm.index(i);
            }
            black_box(acc)
        })
    });
    g.bench_function("sequential_iterate_10k", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..10_000u64 {
                acc ^= i;
            }
            black_box(acc)
        })
    });
    g.finish();

    c.bench_function("cycle_construction_2e32", |b| {
        b.iter(|| black_box(Cycle::new(1 << 32, black_box(9))))
    });
}

fn bench_probe_path(c: &mut Criterion) {
    let range: xmap_addr::ScanRange = "2409:8000::/28-60".parse().unwrap();

    c.bench_function("fill_host_bits", |b| {
        let target = range.nth(12345).unwrap();
        b.iter(|| black_box(fill_host_bits(black_box(target), 7)))
    });

    c.bench_function("validator_cookie", |b| {
        let v = Validator::new(3);
        let dst: xmap_addr::Ip6 = "2409:8000:1:2::3".parse().unwrap();
        b.iter(|| black_box(v.cookie(black_box(dst))))
    });

    // Per-config labels carry the element count, and the throughput
    // declaration is pinned to each config right before its bench — a
    // config with a different probe count cannot inherit a stale
    // Melem/s denominator from the group.
    const PROBES: u64 = 10_000;
    let mut g = c.benchmark_group("scanner_throughput");
    g.throughput(Throughput::Elements(PROBES));
    g.bench_with_input(BenchmarkId::new("end_to_end", PROBES), &PROBES, |b, &n| {
        b.iter_batched(
            || {
                Scanner::new(
                    World::new(7),
                    ScanConfig {
                        max_targets: Some(n),
                        ..Default::default()
                    },
                )
            },
            |mut scanner| black_box(scanner.run(&range, &IcmpEchoProbe, &Blocklist::allow_all())),
            BatchSize::LargeInput,
        )
    });
    g.throughput(Throughput::Elements(PROBES));
    g.bench_with_input(
        BenchmarkId::new("build_classify_only", PROBES),
        &PROBES,
        |b, &n| {
            let v = Validator::new(1);
            let src: xmap_addr::Ip6 = "fd00::1".parse().unwrap();
            b.iter(|| {
                for i in 0..n {
                    let dst = fill_host_bits(range.nth(i).unwrap(), 7);
                    black_box(IcmpEchoProbe.build(src, dst, 64, &v));
                }
            })
        },
    );
    g.finish();
}

/// The fault layer must be free when no faults are configured:
/// `FaultPlan::none()` short-circuits every per-response draw via
/// `any_faults()`, so a scan over a faultless world should cost the same
/// with the fault plumbing threaded through as without.
fn bench_fault_overhead(c: &mut Criterion) {
    let range: xmap_addr::ScanRange = "2409:8000::/28-60".parse().unwrap();
    let mut g = c.benchmark_group("fault_overhead");
    g.throughput(Throughput::Elements(10_000));
    let scan_with = |config: WorldConfig| {
        move |b: &mut criterion::Bencher| {
            b.iter_batched(
                || {
                    Scanner::new(
                        World::with_config(config),
                        ScanConfig {
                            max_targets: Some(10_000),
                            ..Default::default()
                        },
                    )
                },
                |mut scanner| {
                    black_box(scanner.run(&range, &IcmpEchoProbe, &Blocklist::allow_all()))
                },
                BatchSize::LargeInput,
            )
        }
    };
    // Identity plan: the `any_faults()` fast path. Expect parity with
    // `scanner_throughput/end_to_end_10k_probes`.
    g.bench_function(
        "none_plan_10k_probes",
        scan_with(WorldConfig::lossless(7, 200).with_fault(FaultPlan::none())),
    );
    // Active plan, for contrast: every response pays loss/dup/jitter draws.
    g.bench_function(
        "active_plan_10k_probes",
        scan_with(
            WorldConfig::lossless(7, 200).with_fault(
                FaultPlan::none()
                    .seeded(3)
                    .with_forward_loss(0.05)
                    .with_duplication(0.02)
                    .with_jitter(4),
            ),
        ),
    );
    g.finish();
}

criterion_group!(
    benches,
    bench_permutations,
    bench_probe_path,
    bench_fault_overhead
);
criterion_main!(benches);
