//! Campaign executor scaling: the fifteen-block discovery campaign at
//! 1, 2 and 4 workers, plus the responder-dedup micro-benchmark.
//!
//! Each config runs the same seeded campaign (4096 probes against each
//! of the fifteen sample blocks) through [`ParallelCampaign`]; the
//! 1-worker config is the sequential walk plus the executor's merge, so
//! the ratio between configs is the block-level work-stealing speedup.
//! Worker worlds are built inside the timed routine (the executor
//! constructs its replicas per run), over a small 50-AS table so the
//! scan dominates.
//!
//! Scaling expectation: ≥1.5× wall-clock at 4 workers on a ≥4-core
//! host. On fewer cores the workers serialize and the configs converge —
//! record the host's core count next to any figure (see EXPERIMENTS.md
//! "Campaign executor scaling").
//!
//! The `skewed_giant_*` configs manufacture a straggler: block 2 gets
//! 16× the probes of the other fourteen, so with splitting disabled the
//! campaign tail is one worker grinding the giant block while the rest
//! idle. `skewed_giant_split` runs the same mix with intra-block
//! splitting on (threshold 512). Wall-clock only separates on a ≥4-core
//! host; the deterministic idle-slot gate lives in the summary script's
//! virtual-slot model (`scripts/bench_campaign_summary.py`, ported from
//! `xmap_periphery::split::simulate_schedule`).
//!
//! `campaign_dedup` times raw responder deduplication through the
//! Fx-hashed set the campaign uses, and **asserts** the per-insert cost
//! stays roughly flat (sub-linear total growth) between 2¹⁴ and 2¹⁷
//! responders — a regression here means someone swapped the hasher or
//! broke amortized insertion.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use xmap::ScanConfig;
use xmap_addr::{FxHashSet, Ip6};
use xmap_netsim::world::{World, WorldConfig};
use xmap_periphery::{Campaign, ParallelCampaign};

/// Probes per sample block; ×15 blocks per campaign run.
const TARGETS_PER_BLOCK: u64 = 1 << 12;

fn bench_campaign_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("campaign_scaling");
    for workers in [1usize, 2, 4] {
        g.throughput(Throughput::Elements(TARGETS_PER_BLOCK * 15));
        g.bench_with_input(
            BenchmarkId::new("fifteen_blocks_4k", workers),
            &workers,
            |b, &workers| {
                b.iter_batched(
                    || ParallelCampaign::new(Campaign::new(TARGETS_PER_BLOCK), workers),
                    |executor| {
                        black_box(executor.run(
                            &ScanConfig {
                                seed: 5,
                                ..Default::default()
                            },
                            |_, telemetry| {
                                let mut world = World::with_config(WorldConfig::lossless(99, 50));
                                world.set_telemetry(telemetry);
                                world
                            },
                        ))
                    },
                    BatchSize::LargeInput,
                )
            },
        );
    }
    g.finish();
}

/// Probes per ordinary block in the skewed mix; block 2 gets 16×.
const SKEWED_TARGETS_PER_BLOCK: u64 = 1 << 9;
/// Probes for the one giant block of the skewed mix.
const SKEWED_GIANT_TARGETS: u64 = 1 << 13;
/// Split threshold for the `skewed_giant_split` config.
const SKEWED_SPLIT_THRESHOLD: u64 = 1 << 9;

fn bench_campaign_skew(c: &mut Criterion) {
    let mut g = c.benchmark_group("campaign_scaling");
    let total = SKEWED_TARGETS_PER_BLOCK * 14 + SKEWED_GIANT_TARGETS;
    for (name, threshold) in [
        ("skewed_giant_nosplit", 0u64),
        ("skewed_giant_split", SKEWED_SPLIT_THRESHOLD),
    ] {
        g.throughput(Throughput::Elements(total));
        g.bench_with_input(
            BenchmarkId::new(name, 4usize),
            &threshold,
            |b, &threshold| {
                b.iter_batched(
                    || {
                        let campaign = Campaign::new(SKEWED_TARGETS_PER_BLOCK)
                            .with_block_targets(vec![(2, SKEWED_GIANT_TARGETS)]);
                        ParallelCampaign::new(campaign, 4).with_split_threshold(threshold)
                    },
                    |executor| {
                        black_box(executor.run(
                            &ScanConfig {
                                seed: 5,
                                ..Default::default()
                            },
                            |_, telemetry| {
                                let mut world = World::with_config(WorldConfig::lossless(99, 50));
                                world.set_telemetry(telemetry);
                                world
                            },
                        ))
                    },
                    BatchSize::LargeInput,
                )
            },
        );
    }
    g.finish();
}

/// Simulation-shaped responder stream: `n` addresses where every fourth
/// is a repeat, the duplicate mix `Campaign::run_block` dedups.
fn responders(n: usize) -> Vec<Ip6> {
    (0..n)
        .map(|i| {
            let unique = (i - i / 4) as u128;
            Ip6::new((0x2405_0200u128 << 96) | unique.wrapping_mul(0x9e37_79b9))
        })
        .collect()
}

/// Best-of-five per-insert cost of deduplicating `n` responders.
fn dedup_nanos_per_op(addrs: &[Ip6]) -> f64 {
    let mut best = f64::MAX;
    for _ in 0..5 {
        let start = std::time::Instant::now();
        let mut seen: FxHashSet<Ip6> = FxHashSet::default();
        for a in addrs {
            seen.insert(*a);
        }
        black_box(seen.len());
        best = best.min(start.elapsed().as_nanos() as f64 / addrs.len() as f64);
    }
    best
}

fn bench_campaign_dedup(c: &mut Criterion) {
    // The sub-linearity assertion: 8× the responders must not cost
    // meaningfully more per insert. The 4× bound is deliberately loose —
    // it tolerates cache effects and CI noise but fails on anything
    // O(n log n) or worse.
    let small = dedup_nanos_per_op(&responders(1 << 14));
    let large = dedup_nanos_per_op(&responders(1 << 17));
    assert!(
        large <= small.max(1.0) * 4.0,
        "responder dedup per-insert cost grew superlinearly: \
         {small:.1} ns at 2^14 -> {large:.1} ns at 2^17"
    );

    let mut g = c.benchmark_group("campaign_dedup");
    for bits in [14u32, 17] {
        let addrs = responders(1 << bits);
        g.throughput(Throughput::Elements(1 << bits));
        g.bench_with_input(BenchmarkId::new("fx_insert", bits), &addrs, |b, addrs| {
            b.iter_batched(
                FxHashSet::<Ip6>::default,
                |mut seen| {
                    for a in addrs {
                        seen.insert(*a);
                    }
                    black_box(seen.len())
                },
                BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_campaign_scaling,
    bench_campaign_skew,
    bench_campaign_dedup
);
criterion_main!(benches);
