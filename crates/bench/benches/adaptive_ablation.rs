//! Adaptive vs exhaustive target generation: the probes-per-discovered-CPE
//! ablation behind the adaptive engine's headline claim.
//!
//! Both arms run the *same* engine ([`AdaptiveCampaign`]) over the same
//! seeded clustered-sparse world, restricted to the first 2^16 targets of
//! each sample block so coverage is equal by construction. The exhaustive
//! arm uses [`AdaptiveConfig::exhaustive`] — adaptation switched off, the
//! root enumerated to exhaustion — and the adaptive arm uses the default
//! split/prune knobs. The difference between the arms is therefore exactly
//! the prefix-tree policy, not a pipeline difference.
//!
//! Before timing, the benchmark computes the ablation table once (probes,
//! discoveries, recall against the exhaustive responder set,
//! probes-per-CPE) and **asserts** the acceptance bars: the adaptive arm
//! must draw at least 5× fewer probes while recalling at least 95% of the
//! exhaustive arm's responders. Each arm's numbers are printed as one
//! deterministic `ablation-row: {json}` line; CI feeds the run's output to
//! `scripts/bench_adaptive_summary.py`, which turns those rows into
//! `BENCH_adaptive.json` and re-checks the same bars.
//!
//! The timed portion then measures wall-clock per full fifteen-block run
//! of each arm, with throughput declared in probes so the report shows
//! probes/sec through the shared probe pipeline.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use xmap::ScanConfig;
use xmap_addr::{FxHashSet, Ip6};
use xmap_netsim::world::{Allocation, World, WorldConfig};
use xmap_periphery::{AdaptiveCampaign, AdaptiveConfig};
use xmap_telemetry::Telemetry;

/// Equal-coverage slice: each block's first 2^16 leaf targets.
const ROOT_BITS: u8 = 16;

/// The clustered-sparse allocation the ablation runs on: 1-in-256 pods of
/// 256 consecutive assignments are active, so responders concentrate and
/// the surrounding space is genuinely empty — the regime the paper's
/// periphery blocks exhibit and the one where pruning must pay off.
fn sparse_world(telemetry: &Telemetry) -> World {
    let mut world = World::with_config(WorldConfig::lossless(99, 10).with_allocation(
        Allocation::Clustered {
            pod_bits: 8,
            active_frac: 1.0 / 256.0,
        },
    ));
    world.set_telemetry(telemetry);
    world
}

fn base() -> ScanConfig {
    ScanConfig {
        seed: 5,
        ..Default::default()
    }
}

fn adaptive_config() -> AdaptiveConfig {
    AdaptiveConfig {
        root_bits: Some(ROOT_BITS),
        ..AdaptiveConfig::default()
    }
}

/// One arm's ablation numbers.
struct ArmMetrics {
    probes: u64,
    addresses: FxHashSet<Ip6>,
}

fn run_arm(config: AdaptiveConfig) -> ArmMetrics {
    let outcome = AdaptiveCampaign::new(config).run(&base(), sparse_world);
    ArmMetrics {
        probes: outcome.result.blocks.iter().map(|b| b.probed).sum(),
        addresses: outcome.result.peripheries().map(|p| p.address).collect(),
    }
}

/// Prints one machine-readable ablation row. Every field is a pure
/// function of the fixed seeds, so the line is byte-stable across runs
/// and hosts — the summary script treats it as data, not measurement.
fn print_row(arm: &str, m: &ArmMetrics, recall: f64) {
    let discoveries = m.addresses.len();
    println!(
        "ablation-row: {{\"arm\":\"{arm}\",\"probes\":{},\"discoveries\":{discoveries},\
         \"recall\":{recall:.4},\"probes_per_cpe\":{:.2}}}",
        m.probes,
        m.probes as f64 / discoveries.max(1) as f64,
    );
}

fn bench_adaptive_ablation(c: &mut Criterion) {
    // The ablation table, computed once up front (both arms are seeded
    // and single-threaded, so this is deterministic) and asserted here so
    // a policy regression fails the bench even without the summary script.
    let exhaustive = run_arm(AdaptiveConfig::exhaustive(Some(ROOT_BITS)));
    let adaptive = run_arm(adaptive_config());
    assert!(
        !exhaustive.addresses.is_empty(),
        "exhaustive arm found nothing"
    );
    let recall = adaptive
        .addresses
        .intersection(&exhaustive.addresses)
        .count() as f64
        / exhaustive.addresses.len() as f64;
    print_row("exhaustive", &exhaustive, 1.0);
    print_row("adaptive", &adaptive, recall);
    assert!(
        recall >= 0.95,
        "adaptive recall {recall:.4} below the 95% bar"
    );
    assert!(
        adaptive.probes * 5 <= exhaustive.probes,
        "probe reduction below 5x: adaptive {} vs exhaustive {}",
        adaptive.probes,
        exhaustive.probes
    );

    let mut g = c.benchmark_group("adaptive_ablation");
    for (arm, config, probes) in [
        (
            "exhaustive",
            AdaptiveConfig::exhaustive(Some(ROOT_BITS)),
            exhaustive.probes,
        ),
        ("adaptive", adaptive_config(), adaptive.probes),
    ] {
        g.throughput(Throughput::Elements(probes));
        g.bench_with_input(BenchmarkId::new(arm, ROOT_BITS), &config, |b, config| {
            b.iter_batched(
                || AdaptiveCampaign::new(config.clone()),
                |engine| black_box(engine.run(&base(), sparse_world)),
                BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

criterion_group!(benches, bench_adaptive_ablation);
criterion_main!(benches);
