//! Microbenchmarks of the substrate: address primitives and the procedural
//! world. These bound the simulator overhead inside every reported scan
//! rate (cf. `scanner_throughput`).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use xmap_addr::{classify_iid, Ip6, Prefix};
use xmap_netsim::packet::{Ipv6Packet, Network};
use xmap_netsim::world::{World, WorldConfig};

fn bench_addr_primitives(c: &mut Criterion) {
    let mut g = c.benchmark_group("addr");
    g.throughput(Throughput::Elements(1));
    g.bench_function("classify_iid", |b| {
        let addrs: Vec<Ip6> = (0..64u64)
            .map(|i| Ip6::new((0x2001_0db8u128) << 96 | (i as u128) << 32 | 0x9c3a_71e2))
            .collect();
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % addrs.len();
            black_box(classify_iid(addrs[i]))
        })
    });
    g.bench_function("prefix_contains", |b| {
        let p: Prefix = "2409:8000::/28".parse().unwrap();
        let a: Ip6 = "2409:8007:1:2::3".parse().unwrap();
        b.iter(|| black_box(p.contains(black_box(a))))
    });
    g.bench_function("ip6_parse_display", |b| {
        b.iter(|| {
            let a: Ip6 = black_box("2409:8000:1:2:3:4:5:6").parse().unwrap();
            black_box(a.to_string())
        })
    });
    g.finish();
}

fn bench_world(c: &mut Criterion) {
    let mut g = c.benchmark_group("world");
    g.throughput(Throughput::Elements(1));
    g.bench_function("device_derivation", |b| {
        let world = World::with_config(WorldConfig::lossless(3, 50));
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            black_box(world.device_at(12, i % (1 << 24)))
        })
    });
    g.bench_function("echo_handle", |b| {
        let mut world = World::with_config(WorldConfig::lossless(3, 50));
        let src: Ip6 = "fd00::1".parse().unwrap();
        let base: Ip6 = "2409:8000::".parse().unwrap();
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            let dst = Ip6::new(base.bits() | ((i % (1 << 24)) as u128) << 68 | 0x4242);
            black_box(world.handle(Ipv6Packet::echo_request(src, dst, 64, 1, 1)))
        })
    });
    g.bench_function("world_construction_6911_ases", |b| {
        b.iter(|| {
            black_box(World::with_config(WorldConfig {
                seed: black_box(9),
                bgp_ases: 6911,
                loss_frac: 0.004,
                ..WorldConfig::default()
            }))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_addr_primitives, bench_world);
criterion_main!(benches);
