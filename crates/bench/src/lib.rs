//! Reproduction harness: regenerates every table and figure of the paper.
//!
//! [`Experiment`] runs the complete measurement pipeline once over the
//! simulated Internet at a configurable scale and caches the intermediate
//! results; the `table*` / `fig*` functions render each artifact in the
//! paper's layout, reporting measured values next to the published ones
//! (scale-corrected where the experiment ran on a slice of the full
//! space). The `repro` binary drives this from the command line; the
//! criterion benches time the underlying computations.

use std::collections::HashMap;
use std::fmt::Write as _;

use xmap::{ScanConfig, Scanner};
use xmap_addr::oui::DeviceClass;
use xmap_addr::{IidClass, IidHistogram};
use xmap_appscan::{
    fig2_rows, fig3_rows, ServiceSurvey, SoftwareStats, SurveyRunner, VendorServiceMatrix,
};
use xmap_loopscan::survey::DepthSurveyResult;
use xmap_loopscan::{
    measure_amplification, measure_spoofed_doubling, run_case_studies, BgpSurvey, BgpSurveyResult,
    DepthSurvey,
};
use xmap_netsim::geo;
use xmap_netsim::isp::SAMPLE_BLOCKS;
use xmap_netsim::services::ServiceKind;
use xmap_netsim::topology::{LoopBehavior, NAMED_MODELS};
use xmap_netsim::world::{World, WorldConfig};
use xmap_periphery::{infer_boundary, Campaign, CampaignResult, ParallelCampaign, VendorCounts};
use xmap_telemetry::Telemetry;

/// Scale and seed knobs for one full reproduction run.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentConfig {
    /// World seed.
    pub seed: u64,
    /// Discovery probes per sample block (full space is 2³² or 2²⁸).
    pub discovery_probes_per_block: u64,
    /// Loop-survey probes per sample block.
    pub loop_probes_per_block: u64,
    /// Probes per BGP prefix (full space is 2¹⁶).
    pub bgp_probes_per_prefix: u64,
    /// Number of ASes in the synthetic BGP table.
    pub bgp_ases: usize,
    /// Worker threads for the discovery campaign. With more than one,
    /// blocks run on a work-stealing pool of private world replicas and
    /// merge deterministically — every artifact stays byte-identical to
    /// a single-worker run.
    pub campaign_workers: usize,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            seed: 0x2021_0628, // the DSN'21 presentation date
            discovery_probes_per_block: 1 << 20,
            loop_probes_per_block: 1 << 19,
            bgp_probes_per_prefix: 1 << 8,
            bgp_ases: 6911,
            campaign_workers: 1,
        }
    }
}

impl ExperimentConfig {
    /// A small configuration for tests and quick runs.
    pub fn quick() -> Self {
        ExperimentConfig {
            discovery_probes_per_block: 1 << 15,
            loop_probes_per_block: 1 << 14,
            bgp_probes_per_prefix: 1 << 6,
            bgp_ases: 800,
            ..Default::default()
        }
    }

    /// Reads overrides from `XMAP_SCALE` (log2 of discovery probes per
    /// block), falling back to the default.
    pub fn from_env() -> Self {
        let mut cfg = ExperimentConfig::default();
        if let Ok(v) = std::env::var("XMAP_SCALE") {
            if let Ok(bits) = v.parse::<u32>() {
                let bits = bits.clamp(8, 32);
                cfg.discovery_probes_per_block = 1u64 << bits;
                cfg.loop_probes_per_block = 1u64 << bits.saturating_sub(1).max(8);
            }
        }
        if let Ok(v) = std::env::var("XMAP_CAMPAIGN_WORKERS") {
            if let Ok(workers) = v.parse::<usize>() {
                cfg.campaign_workers = workers.max(1);
            }
        }
        cfg
    }
}

/// Cached pipeline results for one run.
pub struct Experiment {
    /// The configuration used.
    pub config: ExperimentConfig,
    /// Scanner over the world (kept for follow-up probes).
    pub scanner: Scanner<World>,
    campaign: Option<CampaignResult>,
    survey: Option<ServiceSurvey>,
    depth: Option<DepthSurveyResult>,
    bgp: Option<BgpSurveyResult>,
}

impl Experiment {
    /// Creates a fresh experiment.
    pub fn new(config: ExperimentConfig) -> Self {
        Experiment::with_telemetry(config, Telemetry::new())
    }

    /// Creates an experiment whose world and scanner share `telemetry`,
    /// so a run's counters can be exported after the artifacts render.
    pub fn with_telemetry(config: ExperimentConfig, telemetry: Telemetry) -> Self {
        let mut world = World::with_config(WorldConfig {
            seed: config.seed,
            bgp_ases: config.bgp_ases,
            ..WorldConfig::default()
        });
        world.set_telemetry(&telemetry);
        let scanner = Scanner::with_telemetry(
            world,
            ScanConfig {
                seed: config.seed,
                ..Default::default()
            },
            telemetry,
        );
        Experiment {
            config,
            scanner,
            campaign: None,
            survey: None,
            depth: None,
            bgp: None,
        }
    }

    /// The discovery-campaign results (computed on first use).
    ///
    /// With `campaign_workers > 1`, blocks run on the work-stealing
    /// executor over private world replicas and the replicas' telemetry
    /// is folded back into this experiment's registry, so the campaign
    /// result and every exported metric stay byte-identical to the
    /// single-worker sequential walk.
    pub fn campaign(&mut self) -> &CampaignResult {
        if self.campaign.is_none() {
            let campaign = Campaign::new(self.config.discovery_probes_per_block);
            let c =
                if self.config.campaign_workers > 1 {
                    let seed = self.config.seed;
                    let bgp_ases = self.config.bgp_ases;
                    let outcome = ParallelCampaign::new(campaign, self.config.campaign_workers)
                        .run(self.scanner.config(), |_, telemetry| {
                            let mut world = World::with_config(WorldConfig {
                                seed,
                                bgp_ases,
                                ..WorldConfig::default()
                            });
                            world.set_telemetry(telemetry);
                            world
                        });
                    let registry = &self.scanner.telemetry().registry;
                    registry.absorb(&outcome.snapshot);
                    // `absorb` folds counters and histograms only; refresh the
                    // derived hit-rate gauge from the new cumulative totals,
                    // the same formula the scanner applies while running.
                    let snap = registry.snapshot();
                    let ppm = snap
                        .counter(xmap::telemetry::names::VALID)
                        .saturating_mul(1_000_000)
                        .checked_div(snap.counter(xmap::telemetry::names::SENT));
                    if let Some(ppm) = ppm {
                        registry
                            .gauge(xmap::telemetry::names::HIT_RATE_PPM)
                            .set(ppm);
                    }
                    outcome.result
                } else {
                    campaign.run(&mut self.scanner)
                };
            self.campaign = Some(c);
        }
        self.campaign.as_ref().expect("just computed")
    }

    /// The service-survey results (computed on first use).
    pub fn survey(&mut self) -> &ServiceSurvey {
        if self.survey.is_none() {
            self.campaign();
            let campaign = self.campaign.clone().expect("campaign cached");
            let s = SurveyRunner.run(&mut self.scanner, &campaign);
            self.survey = Some(s);
        }
        self.survey.as_ref().expect("just computed")
    }

    /// The depth loop-survey results (computed on first use).
    pub fn depth(&mut self) -> &DepthSurveyResult {
        if self.depth.is_none() {
            let d = DepthSurvey::new(self.config.loop_probes_per_block).run(&mut self.scanner);
            self.depth = Some(d);
        }
        self.depth.as_ref().expect("just computed")
    }

    /// The BGP loop-survey results (computed on first use).
    pub fn bgp(&mut self) -> &BgpSurveyResult {
        if self.bgp.is_none() {
            let survey = BgpSurvey {
                probes_per_prefix: self.config.bgp_probes_per_prefix,
                max_prefixes: None,
            };
            let b = survey.run(&mut self.scanner);
            self.bgp = Some(b);
        }
        self.bgp.as_ref().expect("just computed")
    }
}

fn pct(n: usize, d: usize) -> f64 {
    if d == 0 {
        0.0
    } else {
        n as f64 * 100.0 / d as f64
    }
}

/// Formats large counts compactly (52.5M style).
pub fn human(v: f64) -> String {
    if v >= 1e6 {
        format!("{:.1}M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.1}k", v / 1e3)
    } else {
        format!("{v:.0}")
    }
}

/// Table I — inferred sub-prefix lengths, via live boundary inference.
pub fn table1(exp: &mut Experiment) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "TABLE I: INFERRED IPV6 SUB-PREFIX LENGTH FOR END-USERS OF TARGET ISPS"
    );
    let _ = writeln!(
        out,
        "{:<3} {:<22} {:<10} {:>6} {:>6} {:>9} {:>9} {:>6}",
        "P", "ISP", "Network", "ASN", "Block", "Paper", "Inferred", "Conf"
    );
    for p in SAMPLE_BLOCKS {
        let inf = infer_boundary(&mut exp.scanner, p.scan_prefix(), 6000, 3);
        let inferred = inf
            .inferred_len
            .map(|l| l.to_string())
            .unwrap_or_else(|| "-".to_owned());
        let _ = writeln!(
            out,
            "{:<3} {:<22} {:<10} {:>6} {:>6} {:>9} {:>9} {:>5.0}%",
            p.id,
            p.name,
            p.network.to_string(),
            p.asn,
            format!("/{}", p.block_len),
            p.assigned_len,
            inferred,
            inf.confidence() * 100.0
        );
    }
    out
}

/// Table II — periphery scanning results per block.
pub fn table2(exp: &mut Experiment) -> String {
    let campaign = exp.campaign().clone();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "TABLE II: RESULTS OF PERIPHERY SCANNING FOR ONE SAMPLE IPV6 BLOCK WITHIN EACH ISP"
    );
    let _ = writeln!(
        out,
        "{:<3} {:<22} {:>9} {:>11} {:>7} {:>7} {:>8} {:>8} {:>8} {:>8}",
        "P",
        "ISP",
        "found",
        "est.total",
        "same%",
        "diff%",
        "/64uniq%",
        "EUI64%",
        "MACuniq%",
        "paper"
    );
    for b in &campaign.blocks {
        let p = b.profile();
        let uniq = b.unique();
        let mac_uniq_pct = if b.eui64_count() == 0 {
            100.0
        } else {
            pct(b.unique_mac(), b.eui64_count())
        };
        let _ = writeln!(
            out,
            "{:<3} {:<22} {:>9} {:>11} {:>6.1}% {:>6.1}% {:>7.1}% {:>7.1}% {:>7.1}% {:>8}",
            b.profile_id,
            p.name,
            uniq,
            human(b.estimated_total()),
            b.same_frac() * 100.0,
            (1.0 - b.same_frac()) * 100.0,
            pct(b.unique_64(), uniq.max(1)),
            pct(b.eui64_count(), uniq.max(1)),
            mac_uniq_pct,
            human(p.occupancy * p.space_size() as f64),
        );
    }
    let _ = writeln!(
        out,
        "TOTAL: found {} | est. {} (paper: 52.5M) | same {:.1}% (paper 77.2%)",
        campaign.total_unique(),
        human(campaign.estimated_total()),
        campaign.same_frac() * 100.0
    );
    out
}

fn render_iid_table(title: &str, h: &IidHistogram, paper: &[(IidClass, f64)]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let _ = writeln!(
        out,
        "{:<14} {:>9} {:>9} {:>9}",
        "class", "count", "measured", "paper"
    );
    let paper_map: HashMap<_, _> = paper.iter().copied().collect();
    for class in IidClass::ALL {
        let _ = writeln!(
            out,
            "{:<14} {:>9} {:>8.1}% {:>8.1}%",
            class.to_string(),
            h.count(class),
            h.percent(class),
            paper_map.get(&class).copied().unwrap_or(0.0)
        );
    }
    let _ = writeln!(out, "{:<14} {:>9}", "Total", h.total());
    out
}

/// Table III — IID analysis of all discovered peripheries.
pub fn table3(exp: &mut Experiment) -> String {
    let h = exp.campaign().iid_histogram();
    render_iid_table(
        "TABLE III: IID ANALYSIS OF DISCOVERED PERIPHERIES",
        &h,
        &[
            (IidClass::Eui64, 7.6),
            (IidClass::LowByte, 1.0),
            (IidClass::EmbedIpv4, 5.5),
            (IidClass::Randomized, 75.5),
            (IidClass::BytePattern, 10.4),
        ],
    )
}

/// Table IV — top periphery vendors by device class.
pub fn table4(exp: &mut Experiment) -> String {
    let campaign = exp.campaign();
    let mut counts = VendorCounts::new();
    for p in campaign.peripheries() {
        if let Some(v) = xmap_periphery::identify(p.mac, None) {
            counts.record(v);
        }
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "TABLE IV: TOP APPEARED PERIPHERY VENDORS AND DEVICE NUMBER"
    );
    for class in [DeviceClass::Cpe, DeviceClass::Ue] {
        let _ = writeln!(out, "{class}: total {}", counts.total_of(class));
        for (vendor, count) in counts.top(class).into_iter().take(12) {
            let _ = writeln!(out, "  {vendor:<16} {count}");
        }
    }
    out
}

/// Table V — IID analysis of peripheries with alive services.
pub fn table5(exp: &mut Experiment) -> String {
    let h = exp.survey().iid_histogram();
    render_iid_table(
        "TABLE V: IID ANALYSIS OF PERIPHERIES WITH ALIVE APPLICATION SERVICES",
        &h,
        &[
            (IidClass::Eui64, 30.4),
            (IidClass::LowByte, 0.3),
            (IidClass::EmbedIpv4, 5.5),
            (IidClass::Randomized, 69.0),
            (IidClass::BytePattern, 0.2),
        ],
    )
}

/// Table VI — probing requests and valid responses of the 8 services.
pub fn table6() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "TABLE VI: PROBING REQUESTS AND VALID RESPONSES OF 8 SELECTED SERVICES"
    );
    let _ = writeln!(
        out,
        "{:<18} {:<28} Valid Response",
        "Service/Port", "Request"
    );
    for kind in ServiceKind::ALL {
        let (req, resp) = match kind {
            ServiceKind::Dns => ("\"A\" or version query", "answers"),
            ServiceKind::Ntp => ("version query", "version reply"),
            ServiceKind::Ftp => ("request for connecting", "successful response"),
            ServiceKind::Ssh => ("version, key request", "version, key"),
            ServiceKind::Telnet => ("request for login", "response for login"),
            ServiceKind::Http => ("HTTP GET request", "header, version, body"),
            ServiceKind::Tls => ("certificate request", "certificate, cipher suite"),
            ServiceKind::HttpAlt => ("HTTP GET request", "header, version, body"),
        };
        let _ = writeln!(out, "{:<18} {:<28} {}", kind.label(), req, resp);
    }
    out
}

/// Table VII — alive services on peripheries within each ISP.
pub fn table7(exp: &mut Experiment) -> String {
    let survey = exp.survey().clone();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "TABLE VII: RESULTS OF ALIVE SERVICES ON PERIPHERIES WITHIN EACH ISP"
    );
    let _ = write!(out, "{:<3} {:>7}", "P", "probed");
    for kind in ServiceKind::ALL {
        let _ = write!(out, " {:>13}", kind.short_name());
    }
    let _ = writeln!(out, " {:>13}", "Total");
    for p in SAMPLE_BLOCKS {
        let probed = survey.probed_per_block.get(&p.id).copied().unwrap_or(0);
        let _ = write!(out, "{:<3} {:>7}", p.id, probed);
        for kind in ServiceKind::ALL {
            let n = survey.alive_in_block(p.id, kind);
            let _ = write!(out, " {:>6} {:>5.1}%", n, pct(n, probed.max(1)));
        }
        let any = survey.devices_with_any_in_block(p.id).len();
        let _ = writeln!(out, " {:>6} {:>5.1}%", any, pct(any, probed.max(1)));
    }
    let probed_total = survey.probed();
    let _ = write!(out, "{:<3} {:>7}", "T", probed_total);
    for kind in ServiceKind::ALL {
        let n = survey.alive_total(kind);
        let _ = write!(out, " {:>6} {:>5.1}%", n, pct(n, probed_total.max(1)));
    }
    let any = survey.devices_with_any().len();
    let _ = writeln!(out, " {:>6} {:>5.1}%", any, pct(any, probed_total.max(1)));
    let _ = writeln!(
        out,
        "(paper totals: DNS 1.4%, NTP 0.03%, FTP 0.3%, SSH 0.3%, TELNET 0.3%, HTTP 2.4%, TLS 0.3%, 8080 6.7%, any 9.0%)"
    );
    out
}

/// Table VIII — top software versions, device counts and CVE counts.
pub fn table8(exp: &mut Experiment) -> String {
    let survey = exp.survey().clone();
    let stats = SoftwareStats::from_survey(&survey);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "TABLE VIII: TOP SOFTWARE VERSION AND DEVICE NUMBER OF CRUCIAL SERVICES"
    );
    let _ = writeln!(
        out,
        "{:<10} {:<34} {:>8} {:>6}",
        "Service", "Software & Version", "devices", "#CVE"
    );
    for kind in [
        ServiceKind::Dns,
        ServiceKind::Http,
        ServiceKind::Ssh,
        ServiceKind::Ftp,
    ] {
        let rows = stats.top_for_service(kind);
        for (sw, count) in rows.iter().take(6) {
            let cves = xmap_appscan::cve::count_for_product(sw.name);
            let _ = writeln!(
                out,
                "{:<10} {:<34} {:>8} {:>6}",
                kind.short_name(),
                sw.banner(),
                count,
                cves
            );
        }
    }
    let _ = writeln!(
        out,
        "(stale software: {:.1}% of resolved banners are from releases >= 6 years old)",
        stats.stale_fraction(6) * 100.0
    );
    out
}

/// Table IX — BGP-advertised-prefix scan summary.
pub fn table9(exp: &mut Experiment) -> String {
    let result = exp.bgp();
    let (vuln, vasn, vcty) = result.vulnerable_summary();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "TABLE IX: PERIPHERIES DISCOVERED FROM BGP ADVERTISED PREFIXES SCANNING"
    );
    let _ = writeln!(
        out,
        "{:<22} {:>10} {:>8} {:>9}",
        "Last Hops", "# unique", "# ASN", "# Country"
    );
    let _ = writeln!(
        out,
        "{:<22} {:>10} {:>8} {:>9}",
        "Total",
        result.total(),
        result.asns(),
        result.countries()
    );
    let _ = writeln!(
        out,
        "{:<22} {:>10} {:>8} {:>9}",
        "with Routing Loop", vuln, vasn, vcty
    );
    let _ = writeln!(
        out,
        "(paper: total 4.0M / 6,911 / 170; loop 128k / 3,877 / 132; loop share measured {:.1}% vs paper 3.2%)",
        pct(vuln, result.total().max(1))
    );
    out
}

/// Table X — IID mix of loop-vulnerable last hops.
pub fn table10(exp: &mut Experiment) -> String {
    let h = exp.bgp().vulnerable_iid_histogram();
    render_iid_table(
        "TABLE X: IID ANALYSIS OF LAST HOPS WITH ROUTING LOOP VULNERABILITY",
        &h,
        &[
            (IidClass::Eui64, 18.0),
            (IidClass::LowByte, 31.7),
            (IidClass::EmbedIpv4, 2.4),
            (IidClass::Randomized, 46.7),
            (IidClass::BytePattern, 0.7),
        ],
    )
}

/// Table XI — loop-vulnerable peripheries per sample block.
pub fn table11(exp: &mut Experiment) -> String {
    let depth = exp.depth();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "TABLE XI: RESULTS OF PERIPHERY WITH ROUTING LOOP WITHIN EACH ISP"
    );
    let _ = writeln!(
        out,
        "{:<3} {:<22} {:>8} {:>11} {:>7} {:>7} {:>10}",
        "P", "ISP", "found", "est.total", "same%", "diff%", "paper"
    );
    let mut total_found = 0usize;
    let mut total_est = 0f64;
    for p in SAMPLE_BLOCKS {
        let found = depth.count_in_block(p.id);
        let probed = depth.probed_per_block.get(&p.id).copied().unwrap_or(0);
        let scale = if probed == 0 {
            0.0
        } else {
            p.space_size() as f64 / probed as f64
        };
        let est = found as f64 * scale;
        total_found += found;
        total_est += est;
        let same = depth.same_frac_in_block(p.id);
        let _ = writeln!(
            out,
            "{:<3} {:<22} {:>8} {:>11} {:>6.1}% {:>6.1}% {:>10}",
            p.id,
            p.name,
            found,
            human(est),
            same * 100.0,
            (1.0 - same) * 100.0,
            human(p.occupancy * p.space_size() as f64 * p.loop_rate),
        );
    }
    let _ = writeln!(
        out,
        "TOTAL: found {} | est. {} (paper 5.79M) | same {:.1}% (paper 4.9%)",
        total_found,
        human(total_est),
        depth.same_frac() * 100.0
    );
    out
}

/// Table XII — the 99-router controlled testbed.
pub fn table12() -> String {
    let rows = run_case_studies();
    let mut out = String::new();
    let _ = writeln!(out, "TABLE XII: ROUTING LOOP ROUTERS TESTING RESULTS");
    let _ = writeln!(
        out,
        "{:<14} {:<22} {:<22} {:>5} {:>5} {:>9}",
        "Brand", "Model", "Firmware", "WAN", "LAN", "loop fwd"
    );
    for model in NAMED_MODELS {
        // Hardware rows match brand+model exactly; the OS rows of the
        // catalog carry the version in the firmware field instead.
        let row = rows
            .iter()
            .find(|r| r.model.brand == model.brand && r.model.model == model.model)
            .or_else(|| rows.iter().find(|r| r.model.brand == model.brand))
            .expect("every named brand appears in the catalog");
        let fwd = |v: &xmap_loopscan::case_study::PrefixVerdict| match v {
            xmap_loopscan::case_study::PrefixVerdict::Vulnerable { loop_forwards } => {
                loop_forwards.to_string()
            }
            _ => "-".to_owned(),
        };
        let _ = writeln!(
            out,
            "{:<14} {:<22} {:<22} {:>5} {:>5} {:>9}",
            model.brand,
            model.model,
            model.firmware,
            if row.wan.is_vulnerable() { "YES" } else { "no" },
            if row.lan.is_vulnerable() { "YES" } else { "no" },
            fwd(&row.wan),
        );
    }
    let vulnerable = rows.iter().filter(|r| r.is_vulnerable()).count();
    let limited = rows
        .iter()
        .filter(|r| matches!(r.model.behavior, LoopBehavior::Limited { .. }))
        .count();
    let _ = writeln!(
        out,
        "All {} of {} tested units vulnerable (paper: all 99); {} limited-loop units forward >10 times",
        vulnerable,
        rows.len(),
        limited
    );
    out
}

/// Figure 2 — top-10 vendors with exposed services.
pub fn fig2(exp: &mut Experiment) -> String {
    let campaign = exp.campaign().clone();
    let survey = exp.survey().clone();
    let matrix = VendorServiceMatrix::build(&campaign, &survey);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "FIGURE 2: TOP 10 PERIPHERY DEVICE VENDORS WITH EXPOSED SERVICES"
    );
    let _ = write!(out, "{:<16} {:>7}", "Vendor", "total");
    for kind in ServiceKind::ALL {
        let _ = write!(out, " {:>9}", kind.short_name());
    }
    let _ = writeln!(out);
    for (vendor, counts, total) in fig2_rows(&matrix, 10) {
        let _ = write!(out, "{vendor:<16} {total:>7}");
        for c in counts {
            let _ = write!(out, " {c:>9}");
        }
        let _ = writeln!(out);
    }
    let _ = writeln!(
        out,
        "(unidentified devices with services: {})",
        matrix.unidentified
    );
    out
}

/// Figure 3 — top-20 vendors within each service.
pub fn fig3(exp: &mut Experiment) -> String {
    let campaign = exp.campaign().clone();
    let survey = exp.survey().clone();
    let matrix = VendorServiceMatrix::build(&campaign, &survey);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "FIGURE 3: TOP 20 PERIPHERY DEVICE VENDORS WITHIN EACH SERVICE"
    );
    for (kind, vendors) in fig3_rows(&matrix, 20) {
        let _ = write!(out, "{:<10}:", kind.short_name());
        for (v, c) in vendors.iter().take(8) {
            let _ = write!(out, " {v}({c})");
        }
        let _ = writeln!(out);
    }
    out
}

/// Figure 5 — top loop ASNs and countries from the BGP survey.
pub fn fig5(exp: &mut Experiment) -> String {
    let result = exp.bgp();
    let mut out = String::new();
    let _ = writeln!(out, "FIGURE 5: TOP 10 ROUTING LOOP ASN & COUNTRY");
    let _ = writeln!(out, "ASNs:");
    for (asn, count) in result.top_loop_asns(10) {
        let _ = writeln!(out, "  AS{asn:<8} {:<24} {count}", geo::name_of(asn));
    }
    let _ = writeln!(
        out,
        "Countries (paper order: BR CN EC VN US MM IN GB DE CH CZ):"
    );
    for (cc, count) in result.top_loop_countries(11) {
        let _ = writeln!(out, "  {cc:<4} {count}");
    }
    out
}

/// Figure 6 — top loop vendors within top ASes (depth survey).
pub fn fig6(exp: &mut Experiment) -> String {
    let depth = exp.depth();
    let rows = depth.fig6_rows(5);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "FIGURE 6: TOP 5 ROUTING LOOP PERIPHERY DEVICE VENDORS WITHIN TOP 5 ASES"
    );
    for (vendor, per_as, total) in rows {
        let mut ases: Vec<(u32, usize)> = per_as.into_iter().collect();
        ases.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
        let _ = write!(out, "{vendor:<16} total {total:>6} |");
        for (asn, c) in ases.into_iter().take(5) {
            let _ = write!(out, " AS{asn}:{c}");
        }
        let _ = writeln!(out);
    }
    out
}

/// The feasibility analysis of Sections III-B and IV-E.
pub fn feasibility() -> String {
    let rows = xmap::feasibility::paper_rows();
    let mut out = String::new();
    let _ = writeln!(out, "FEASIBILITY (Section III-B / IV-E)");
    let labels = [
        "all /64 sub-prefixes of a /24 at 1 Gbps (paper: ~8 days)",
        "all /60 sub-prefixes of a /24 at 1 Gbps (paper: ~14 h)",
        "one 32-bit sample space at 25 kpps (paper: ~48 h)",
    ];
    for (row, label) in rows.iter().zip(labels) {
        let _ = writeln!(
            out,
            "2^{} probes at {:>9.0} pps -> {:>7.1} h ({:>5.1} days) | {label}",
            row.space_bits,
            row.pps,
            row.hours(),
            row.days()
        );
    }
    out
}

/// Baseline comparison (Section VIII): sub-prefix probing vs traceroute
/// vs hitlist+TGA under an equal probe budget.
pub fn baselines(exp: &mut Experiment) -> String {
    use xmap_periphery::BaselineComparison;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "BASELINES: peripheries discovered per 1000 probes (equal budget, China Mobile block)"
    );
    let cmp = BaselineComparison::run(&mut exp.scanner, 12, &SAMPLE_BLOCKS[12], 1 << 14, 32);
    let (x, t, g) = cmp.efficiency();
    let _ = writeln!(
        out,
        "{:<28} {:>8} found / {:>8} probes = {:>7.2} per 1k",
        "sub-prefix probing (XMap)", cmp.xmap.0, cmp.xmap.1, x
    );
    let _ = writeln!(
        out,
        "{:<28} {:>8} found / {:>8} probes = {:>7.2} per 1k",
        "traceroute (PAM'20 style)", cmp.traceroute.0, cmp.traceroute.1, t
    );
    let _ = writeln!(
        out,
        "{:<28} {:>8} found / {:>8} probes = {:>7.2} per 1k",
        "hitlist + TGA (new finds)", cmp.hitlist_tga.0, cmp.hitlist_tga.1, g
    );
    let _ = writeln!(
        out,
        "(the paper's claim: search effort per periphery drops from 2^64+ to 1 probe)"
    );
    out
}

/// The amplification analysis of Section VI-A.
pub fn amplification() -> String {
    let model = NAMED_MODELS
        .iter()
        .find(|m| m.brand == "Huawei")
        .expect("full-loop model");
    let mut out = String::new();
    let _ = writeln!(
        out,
        "AMPLIFICATION (Section VI-A): one 255-hop-limit packet, path length n"
    );
    let _ = writeln!(
        out,
        "{:>4} {:>12} {:>18}",
        "n", "loop fwds", "spoofed (2x trick)"
    );
    for n in [0u8, 10, 20, 30, 40, 50] {
        let point = measure_amplification(model, n);
        let (_, spoofed) = measure_spoofed_doubling(model, n);
        let _ = writeln!(out, "{:>4} {:>12} {:>18}", n, point.loop_forwards, spoofed);
    }
    let _ = writeln!(
        out,
        "(paper: amplification factor 255-n, >200 for typical paths)"
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_experiment_renders_all_artifacts() {
        let mut exp = Experiment::new(ExperimentConfig::quick());
        for (name, text) in [
            ("table2", table2(&mut exp)),
            ("table3", table3(&mut exp)),
            ("table4", table4(&mut exp)),
            ("table5", table5(&mut exp)),
            ("table6", table6()),
            ("table7", table7(&mut exp)),
            ("table8", table8(&mut exp)),
            ("table9", table9(&mut exp)),
            ("table10", table10(&mut exp)),
            ("table11", table11(&mut exp)),
            ("table12", table12()),
            ("fig2", fig2(&mut exp)),
            ("fig3", fig3(&mut exp)),
            ("fig5", fig5(&mut exp)),
            ("fig6", fig6(&mut exp)),
            ("feasibility", feasibility()),
            ("baselines", baselines(&mut exp)),
        ] {
            assert!(text.lines().count() >= 3, "{name} too short:\n{text}");
        }
    }

    #[test]
    fn human_formatting() {
        assert_eq!(human(52_478_703.0), "52.5M");
        assert_eq!(human(2_404.0), "2.4k");
        assert_eq!(human(31.0), "31");
    }

    #[test]
    fn config_from_env_clamps() {
        // No env set: defaults.
        let cfg = ExperimentConfig::from_env();
        assert!(cfg.discovery_probes_per_block >= 1 << 8);
    }
}
