//! Ablation studies for the design choices DESIGN.md §4 calls out.
//!
//! Unlike the criterion benches (which time code paths), this binary
//! measures the *quality* dimensions of each choice:
//!
//! * `permutation` — load spread across target /40 networks: random
//!   permutation vs sequential probing (why ZMap/XMap randomize),
//! * `probes` — discovery completeness vs probes-per-prefix under packet
//!   loss (why one probe per sub-prefix suffices at real loss rates),
//! * `hoplimit` — loop-detection yield vs generated loop traffic for
//!   h ∈ {32, 64, 128, 255} (why the paper picks 32).

use std::collections::HashMap;

use xmap::{Blocklist, Cycle, IcmpEchoProbe, Permutation, ProbeResult, ScanConfig, Scanner};
use xmap_loopscan::DepthSurvey;
use xmap_netsim::fault::IcmpRateLimit;
use xmap_netsim::isp::SAMPLE_BLOCKS;
use xmap_netsim::world::{World, WorldConfig};
use xmap_netsim::FaultPlan;
use xmap_periphery::Campaign;
use xmap_telemetry::Telemetry;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut metrics_out = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--metrics-out" => {
                if i + 1 >= args.len() {
                    eprintln!("ablations: --metrics-out requires a value");
                    std::process::exit(2);
                }
                metrics_out = Some(args.remove(i + 1));
                args.remove(i);
            }
            _ => i += 1,
        }
    }
    let telemetry = Telemetry::new();
    let all = args.is_empty() || args.iter().any(|a| a == "all");
    if all || args.iter().any(|a| a == "permutation") {
        permutation_load_spread();
    }
    if all || args.iter().any(|a| a == "probes") {
        probes_per_prefix_completeness(&telemetry);
    }
    if all || args.iter().any(|a| a == "hoplimit") {
        hoplimit_tradeoff(&telemetry);
    }
    if all || args.iter().any(|a| a == "faults") {
        fault_recovery_matrix(&telemetry);
    }
    if let Some(path) = metrics_out {
        let json = telemetry.registry.snapshot().to_json();
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("ablations: write {path}: {e}");
            std::process::exit(1);
        }
    }
}

/// A scanner whose world and metric handles feed the shared bundle.
fn scanner_with(mut world: World, config: ScanConfig, telemetry: &Telemetry) -> Scanner<World> {
    world.set_telemetry(telemetry);
    Scanner::with_telemetry(world, config, telemetry.clone())
}

/// Measures how many probes land in the same /40 network within any
/// 1000-probe window — sequential scanning hammers one network, the
/// permutation spreads load.
fn permutation_load_spread() {
    println!("ABLATION: permutation vs sequential — probe-load spread");
    println!("(max probes hitting one /40 network within any 1000-probe window)");
    let range: xmap_addr::ScanRange = "2409:8000::/28-60".parse().expect("static");
    for (label, indices) in [
        (
            "cyclic",
            Cycle::new(1 << 32, 7)
                .iter()
                .take(20_000)
                .collect::<Vec<_>>(),
        ),
        ("sequential", (0..20_000u64).collect::<Vec<_>>()),
    ] {
        let mut worst = 0usize;
        for window in indices.chunks(1000) {
            let mut per_net: HashMap<u64, usize> = HashMap::new();
            for i in window {
                // /40 network = top 12 bits of the 32-bit sub-prefix index.
                let net = range
                    .nth(*i)
                    .map(|p| p.addr().bit_slice(28, 40))
                    .unwrap_or(0);
                *per_net.entry(net).or_insert(0) += 1;
            }
            worst = worst.max(per_net.values().copied().max().unwrap_or(0));
        }
        println!("  {label:<12} worst-case per-/40 load: {worst} / 1000");
    }
    println!();
}

/// Discovery completeness (found / ground truth) for k probes per prefix
/// at several loss rates; ground truth from the world's device oracle.
fn probes_per_prefix_completeness(telemetry: &Telemetry) {
    println!("ABLATION: probes per sub-prefix vs completeness under loss");
    let slice = 1u64 << 15;
    let profile_idx = 12; // China Mobile broadband, dense
    let profile = &SAMPLE_BLOCKS[profile_idx];
    for loss in [0.0, 0.02, 0.10] {
        // Ground truth: allocated, unfiltered sub-prefixes in the slice.
        let oracle = World::with_config(WorldConfig {
            loss_frac: loss,
            ..WorldConfig::lossless(9, 10)
        });
        let mut truth = 0usize;
        for i in 0..slice {
            if oracle.device_at(profile_idx, i).is_some() {
                truth += 1;
            }
        }
        print!("  loss {:>4.0}% | truth {truth:>4} |", loss * 100.0);
        for k in [1u32, 2, 3] {
            let world = World::with_config(WorldConfig {
                loss_frac: loss,
                ..WorldConfig::lossless(9, 10)
            });
            let mut scanner = scanner_with(
                world,
                ScanConfig {
                    seed: 9,
                    permutation: Permutation::Sequential,
                    max_targets: Some(slice),
                    ..Default::default()
                },
                telemetry,
            );
            let mut found = std::collections::HashSet::new();
            for i in 0..slice {
                let target = profile.scan_range().nth(i).expect("in slice");
                for attempt in 0..k {
                    // Vary the IID per attempt so a lost exchange is retried
                    // on a fresh (deterministically lossy) path.
                    let dst = xmap::fill_host_bits(target, 9 + attempt as u64);
                    let hits = scanner.probe_addr(dst, &IcmpEchoProbe, 64);
                    if hits.iter().any(|(_, r)| {
                        matches!(
                            r,
                            ProbeResult::Unreachable { .. } | ProbeResult::TimeExceeded
                        )
                    }) {
                        found.insert(i);
                        break;
                    }
                }
            }
            let completeness = found.len() as f64 * 100.0 / truth.max(1) as f64;
            print!(" k={k}: {completeness:>5.1}%");
        }
        println!();
    }
    println!();
}

/// Loop-survey yield and generated loop traffic at different probing hop
/// limits — the accuracy/impact tradeoff of Section VI-B.
fn hoplimit_tradeoff(telemetry: &Telemetry) {
    println!("ABLATION: loop probing hop limit h — yield vs generated loop traffic");
    for h in [32u8, 64, 128, 255] {
        let world = World::with_config(WorldConfig::lossless(5, 10));
        let mut scanner = scanner_with(
            world,
            ScanConfig {
                seed: 5,
                ..Default::default()
            },
            telemetry,
        );
        let mut result = xmap_loopscan::survey::DepthSurveyResult::default();
        let mut survey = DepthSurvey::new(1 << 14);
        survey.hop_limit = h;
        survey.run_block(&mut scanner, &SAMPLE_BLOCKS[11], &mut result);
        let stats = scanner.network_mut().stats();
        println!(
            "  h={h:<4} loops found: {:>4} | loop link-traversals generated: {:>8} | per detection: {:>6.0}",
            result.peripheries.len(),
            stats.loop_forwards,
            stats.loop_forwards as f64 / result.peripheries.len().max(1) as f64,
        );
    }
    println!("(same yield at every h; traffic grows with h — hence the paper's h = 32)");
    let _ = Blocklist::allow_all();
}

/// Discovery completeness under the fault matrix (loss × ICMPv6 rate
/// limiting × flaky devices), for a single-probe scan vs the full
/// loss-recovery pipeline (3 probes/target + mop-up). Completeness is
/// measured against the lossless single-probe baseline of the same world
/// seed, so 100% means full recovery.
fn fault_recovery_matrix(telemetry: &Telemetry) {
    println!("ABLATION: fault matrix — single probe vs retransmission + mop-up");
    let profile = &SAMPLE_BLOCKS[2];
    let slice = 1u64 << 13;
    let seed = 9001;

    let baseline = {
        let mut s = scanner_with(
            World::with_config(WorldConfig::lossless(seed, 30)),
            ScanConfig {
                seed: 5,
                max_targets: Some(slice),
                ..Default::default()
            },
            telemetry,
        );
        Campaign::new(slice).run_block(&mut s, profile).unique()
    };
    println!("  lossless baseline: {baseline} peripheries");
    println!("  loss | limiter | flaky || single | recovered");

    for loss in [0.0, 0.05] {
        for depleted in [0.0, 0.5] {
            for flaky in [0.0, 0.1] {
                let mut plan = FaultPlan::none().seeded(0xAB1E).with_forward_loss(loss);
                if depleted > 0.0 {
                    plan = plan.with_icmp_limit(IcmpRateLimit::TokenBucket {
                        capacity: 8,
                        refill_interval: 512,
                        start_depleted_frac: depleted,
                    });
                }
                if flaky > 0.0 {
                    plan = plan.with_flaky(flaky, 1024, 256);
                }
                let config = WorldConfig::lossless(seed, 30).with_fault(plan);
                let single = {
                    let mut s = scanner_with(
                        World::with_config(config),
                        ScanConfig {
                            seed: 5,
                            max_targets: Some(slice),
                            ..Default::default()
                        },
                        telemetry,
                    );
                    Campaign::new(slice).run_block(&mut s, profile).unique()
                };
                let recovered = {
                    let mut s = scanner_with(
                        World::with_config(config),
                        ScanConfig {
                            seed: 5,
                            max_targets: Some(slice),
                            probes_per_target: 3,
                            ..Default::default()
                        },
                        telemetry,
                    );
                    Campaign::new(slice)
                        .with_mop_up(2048)
                        .run_block(&mut s, profile)
                        .unique()
                };
                let pct = |n: usize| n as f64 * 100.0 / baseline.max(1) as f64;
                println!(
                    "  {:>4.0}% | {:>6.0}% | {:>4.0}% || {:>5.1}% | {:>8.1}%",
                    loss * 100.0,
                    depleted * 100.0,
                    flaky * 100.0,
                    pct(single),
                    pct(recovered),
                );
            }
        }
    }
    println!("(recovered tracks the baseline; single-probe degrades with every fault axis)");
    println!();
}
