//! Regenerates the paper's tables and figures from the simulated Internet.
//!
//! Usage:
//!
//! ```text
//! repro [--campaign-workers N] [--metrics-out FILE] [--quiet] [artifact...]
//! ```
//!
//! Artifacts: `table1`..`table12`, `fig2`, `fig3`, `fig5`, `fig6`,
//! `feasibility`, `amplification`, or `all` (default). The scale of the
//! scans is controlled by `XMAP_SCALE` (log2 of discovery probes per
//! block, default 20; the full space would be 32). `--campaign-workers`
//! (or `XMAP_CAMPAIGN_WORKERS`) runs the discovery campaign on a
//! work-stealing block pool; every artifact and the exported metrics are
//! byte-identical for any worker count. `--metrics-out` writes the run's
//! final telemetry snapshot as JSON; `--quiet` suppresses the progress
//! lines on stderr.

use xmap_bench::{
    amplification, baselines, feasibility, fig2, fig3, fig5, fig6, table1, table10, table11,
    table12, table2, table3, table4, table5, table6, table7, table8, table9, Experiment,
    ExperimentConfig,
};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut metrics_out = None;
    let mut campaign_workers = None;
    let mut quiet = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--metrics-out" => {
                if i + 1 >= args.len() {
                    eprintln!("repro: --metrics-out requires a value");
                    std::process::exit(2);
                }
                metrics_out = Some(args.remove(i + 1));
                args.remove(i);
            }
            "--campaign-workers" => {
                if i + 1 >= args.len() {
                    eprintln!("repro: --campaign-workers requires a value");
                    std::process::exit(2);
                }
                match args.remove(i + 1).parse::<usize>() {
                    Ok(n) if n >= 1 => campaign_workers = Some(n),
                    _ => {
                        eprintln!("repro: --campaign-workers must be an integer >= 1");
                        std::process::exit(2);
                    }
                }
                args.remove(i);
            }
            "--quiet" | "-q" => {
                quiet = true;
                args.remove(i);
            }
            _ => i += 1,
        }
    }
    let wanted: Vec<&str> = if args.is_empty() || args.iter().any(|a| a == "all") {
        vec![
            "feasibility",
            "table1",
            "table2",
            "table3",
            "table4",
            "table5",
            "table6",
            "table7",
            "table8",
            "table9",
            "table10",
            "table11",
            "table12",
            "fig2",
            "fig3",
            "fig5",
            "fig6",
            "amplification",
            "baselines",
        ]
    } else {
        args.iter().map(String::as_str).collect()
    };

    let mut config = ExperimentConfig::from_env();
    if let Some(n) = campaign_workers {
        config.campaign_workers = n;
    }
    if !quiet {
        eprintln!(
            "# seed {:#x}, discovery 2^{} probes/block, loop 2^{} probes/block, BGP 2^{}/prefix over {} ASes, {} campaign worker(s)",
            config.seed,
            config.discovery_probes_per_block.trailing_zeros(),
            config.loop_probes_per_block.trailing_zeros(),
            config.bgp_probes_per_prefix.trailing_zeros(),
            config.bgp_ases,
            config.campaign_workers,
        );
    }
    let telemetry = xmap_telemetry::Telemetry::new();
    let mut exp = Experiment::with_telemetry(config, telemetry.clone());

    for artifact in wanted {
        let started = std::time::Instant::now();
        let text = match artifact {
            "table1" => table1(&mut exp),
            "table2" => table2(&mut exp),
            "table3" => table3(&mut exp),
            "table4" => table4(&mut exp),
            "table5" => table5(&mut exp),
            "table6" => table6(),
            "table7" => table7(&mut exp),
            "table8" => table8(&mut exp),
            "table9" => table9(&mut exp),
            "table10" => table10(&mut exp),
            "table11" => table11(&mut exp),
            "table12" => table12(),
            "fig2" => fig2(&mut exp),
            "fig3" => fig3(&mut exp),
            "fig5" => fig5(&mut exp),
            "fig6" => fig6(&mut exp),
            "feasibility" => feasibility(),
            "amplification" => amplification(),
            "baselines" => baselines(&mut exp),
            other => {
                eprintln!("unknown artifact {other:?}; see --help in the source header");
                std::process::exit(2);
            }
        };
        println!("{text}");
        if !quiet {
            eprintln!("# {artifact} rendered in {:.2?}", started.elapsed());
        }
    }
    if let Some(path) = metrics_out {
        let json = telemetry.registry.snapshot().to_json();
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("repro: write {path}: {e}");
            std::process::exit(1);
        }
    }
}
