//! The unintended-exposed-services survey (Tables V, VII).
//!
//! Probes each of the eight Table VI services once on every discovered
//! periphery ("each service is probed just once, and no more than one
//! service simultaneously at the same target"), records valid responses,
//! and aggregates per ISP block and per service.

use std::collections::{HashMap, HashSet};

use xmap::Scanner;
use xmap_addr::{IidHistogram, Ip6};
use xmap_netsim::packet::Network;
use xmap_netsim::services::{AppResponse, ServiceKind, SoftwareId};
use xmap_periphery::{CampaignResult, DiscoveredPeriphery};

use crate::grab::{grab_with, GrabOutcome};

/// One alive-service observation.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceObservation {
    /// The periphery's address.
    pub address: Ip6,
    /// Block id (Table VII `P` column).
    pub profile_id: u8,
    /// The alive service.
    pub kind: ServiceKind,
    /// The application response.
    pub response: AppResponse,
}

/// Aggregated survey results.
#[derive(Debug, Clone, Default)]
pub struct ServiceSurvey {
    /// All alive observations.
    pub observations: Vec<ServiceObservation>,
    /// Peripheries probed per block.
    pub probed_per_block: HashMap<u8, usize>,
}

impl ServiceSurvey {
    /// Total peripheries probed.
    pub fn probed(&self) -> usize {
        self.probed_per_block.values().sum()
    }

    /// Alive devices for `kind` in block `profile_id` (a Table VII cell).
    pub fn alive_in_block(&self, profile_id: u8, kind: ServiceKind) -> usize {
        self.observations
            .iter()
            .filter(|o| o.profile_id == profile_id && o.kind == kind)
            .count()
    }

    /// Alive devices for `kind` across blocks (Table VII total row).
    pub fn alive_total(&self, kind: ServiceKind) -> usize {
        self.observations.iter().filter(|o| o.kind == kind).count()
    }

    /// Addresses with at least one alive service (Table VII "Total").
    pub fn devices_with_any(&self) -> HashSet<Ip6> {
        self.observations.iter().map(|o| o.address).collect()
    }

    /// Addresses with at least one alive service within one block.
    pub fn devices_with_any_in_block(&self, profile_id: u8) -> HashSet<Ip6> {
        self.observations
            .iter()
            .filter(|o| o.profile_id == profile_id)
            .map(|o| o.address)
            .collect()
    }

    /// IID histogram of peripheries with alive services (Table V).
    pub fn iid_histogram(&self) -> IidHistogram {
        self.devices_with_any().into_iter().collect()
    }

    /// Histogram of serving software across observations (Table VIII).
    pub fn software_histogram(&self) -> HashMap<SoftwareId, u64> {
        let mut h = HashMap::new();
        for o in &self.observations {
            if let Some(sw) = o.response.software() {
                *h.entry(sw).or_insert(0) += 1;
            }
        }
        h
    }

    /// Devices whose HTTP/80 page is a login/management page (the paper's
    /// 1.1M-of-1.3M observation).
    pub fn login_page_count(&self) -> usize {
        self.observations
            .iter()
            .filter(|o| {
                o.kind == ServiceKind::Http
                    && matches!(
                        o.response,
                        AppResponse::HttpPage {
                            login_page: true,
                            ..
                        }
                    )
            })
            .count()
    }

    /// Application-layer vendor disclosure for an address, if any response
    /// carried one.
    pub fn app_vendor_of(&self, address: Ip6) -> Option<&'static str> {
        self.observations
            .iter()
            .filter(|o| o.address == address)
            .find_map(|o| o.response.vendor())
    }
}

/// Survey driver: probes all eight services on a set of peripheries.
#[derive(Debug, Clone, Copy, Default)]
pub struct SurveyRunner;

impl SurveyRunner {
    /// Runs the survey over every periphery discovered by a campaign.
    pub fn run<N: Network>(
        &self,
        scanner: &mut Scanner<N>,
        campaign: &CampaignResult,
    ) -> ServiceSurvey {
        let start_tick = scanner.ticks();
        let mut survey = ServiceSurvey::default();
        for block in &campaign.blocks {
            let mut probed = 0usize;
            for periphery in &block.peripheries {
                probed += 1;
                self.probe_device(scanner, block.profile_id, periphery, &mut survey);
            }
            survey.probed_per_block.insert(block.profile_id, probed);
        }
        if scanner.tracer().is_enabled() {
            scanner.tracer().span_event(
                start_tick,
                scanner.ticks(),
                "appscan.survey",
                vec![
                    ("devices", (survey.probed() as u64).into()),
                    ("observations", (survey.observations.len() as u64).into()),
                ],
            );
        }
        survey
    }

    /// Probes the eight services of one periphery.
    pub fn probe_device<N: Network>(
        &self,
        scanner: &mut Scanner<N>,
        profile_id: u8,
        periphery: &DiscoveredPeriphery,
        survey: &mut ServiceSurvey,
    ) {
        let mut scratch = Vec::new();
        for kind in ServiceKind::ALL {
            if let GrabOutcome::Open(response) =
                grab_with(scanner, periphery.address, kind, &mut scratch)
            {
                survey.observations.push(ServiceObservation {
                    address: periphery.address,
                    profile_id,
                    kind,
                    response,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmap::ScanConfig;
    use xmap_netsim::isp::SAMPLE_BLOCKS;
    use xmap_netsim::world::{World, WorldConfig};
    use xmap_periphery::Campaign;

    fn surveyed() -> (ServiceSurvey, CampaignResult) {
        let world = World::with_config(WorldConfig::lossless(55, 10));
        let mut scanner = Scanner::new(
            world,
            ScanConfig {
                seed: 21,
                ..Default::default()
            },
        );
        // Scan only the two service-rich Chinese broadband blocks, sliced.
        let campaign = Campaign::new(1 << 16);
        let mut result = xmap_periphery::CampaignResult::default();
        for idx in [11usize, 12] {
            result
                .blocks
                .push(campaign.run_block(&mut scanner, &SAMPLE_BLOCKS[idx]));
        }
        let survey = SurveyRunner.run(&mut scanner, &result);
        (survey, result)
    }

    #[test]
    fn survey_finds_exposed_services() {
        let (survey, campaign) = surveyed();
        assert!(campaign.total_unique() > 40, "{}", campaign.total_unique());
        assert!(!survey.observations.is_empty());
        // China Mobile broadband (id 13): HTTP-8080 dominates (44.8%).
        let alt = survey.alive_in_block(13, ServiceKind::HttpAlt);
        let probed = survey.probed_per_block[&13];
        let frac = alt as f64 / probed as f64;
        assert!(
            (0.25..0.65).contains(&frac),
            "8080 rate {frac} ({alt}/{probed})"
        );
        // DNS exposure exists in both blocks (Unicom 15.9%, Mobile 5.5%).
        assert!(survey.alive_total(ServiceKind::Dns) > 3);
    }

    #[test]
    fn any_service_share_matches_paper_shape() {
        let (survey, campaign) = surveyed();
        // Table VII: 57.5% of China Mobile peripheries expose something;
        // Unicom 24.6%.
        let mobile_any =
            survey.devices_with_any_in_block(13).len() as f64 / survey.probed_per_block[&13] as f64;
        assert!((0.35..0.8).contains(&mobile_any), "{mobile_any}");
        let unicom_any =
            survey.devices_with_any_in_block(12).len() as f64 / survey.probed_per_block[&12] as f64;
        assert!((0.1..0.45).contains(&unicom_any), "{unicom_any}");
        assert!(mobile_any > unicom_any);
        let _ = campaign;
    }

    #[test]
    fn software_histogram_is_populated() {
        let (survey, _) = surveyed();
        let hist = survey.software_histogram();
        assert!(!hist.is_empty());
        // Jetty dominates 8080 in China Mobile.
        let jetty = xmap_netsim::services::software_id("Jetty", "9.x").unwrap();
        assert!(hist.get(&jetty).copied().unwrap_or(0) > 0, "{hist:?}");
    }

    #[test]
    fn login_pages_majority_of_http80() {
        let (survey, _) = surveyed();
        let http80 = survey.alive_total(ServiceKind::Http);
        if http80 > 10 {
            let login = survey.login_page_count();
            assert!(
                login as f64 >= http80 as f64 * 0.6,
                "{login} login pages of {http80} HTTP"
            );
        }
    }

    #[test]
    fn iid_histogram_counts_devices_once() {
        let (survey, _) = surveyed();
        let h = survey.iid_histogram();
        assert_eq!(h.total() as usize, survey.devices_with_any().len());
    }
}
