//! Vendor × service aggregation for Figures 2 and 3.
//!
//! Figure 2 shows, for the ten vendors with the most exposed devices, how
//! their alive services split across the eight probed services; Figure 3
//! shows, for each service, the top twenty contributing vendors. Both are
//! views over the same matrix built here by joining service observations
//! with device-vendor identification (MAC channel from the discovery
//! records, application channel from the responses themselves).

use std::collections::HashMap;

use xmap_addr::Ip6;
use xmap_netsim::services::ServiceKind;
use xmap_periphery::{identify, CampaignResult};

use crate::survey::ServiceSurvey;

/// vendor → per-service alive-device counts.
#[derive(Debug, Clone, Default)]
pub struct VendorServiceMatrix {
    rows: HashMap<&'static str, [u64; 8]>,
    /// Devices with alive services but no vendor identification.
    pub unidentified: u64,
}

impl VendorServiceMatrix {
    /// Builds the matrix by joining a survey with its discovery campaign.
    pub fn build(campaign: &CampaignResult, survey: &ServiceSurvey) -> Self {
        // Address → MAC lookup from the discovery records.
        let mac_of: HashMap<Ip6, _> = campaign.peripheries().map(|p| (p.address, p.mac)).collect();
        let mut matrix = VendorServiceMatrix::default();
        // Count each (device, service) pair once.
        let mut seen = std::collections::HashSet::new();
        for obs in &survey.observations {
            if !seen.insert((obs.address, obs.kind)) {
                continue;
            }
            let mac = mac_of.get(&obs.address).copied().flatten();
            let app_vendor = survey.app_vendor_of(obs.address);
            match identify(mac, app_vendor) {
                Some(vendor) => {
                    let row = matrix.rows.entry(vendor).or_insert([0; 8]);
                    row[slot(obs.kind)] += 1;
                }
                None => matrix.unidentified += 1,
            }
        }
        matrix
    }

    /// Count for one vendor/service cell.
    pub fn count(&self, vendor: &str, kind: ServiceKind) -> u64 {
        self.rows.get(vendor).map_or(0, |r| r[slot(kind)])
    }

    /// Total alive services of a vendor's devices.
    pub fn vendor_total(&self, vendor: &str) -> u64 {
        self.rows.get(vendor).map_or(0, |r| r.iter().sum())
    }

    /// All vendors present.
    pub fn vendors(&self) -> impl Iterator<Item = &'static str> + '_ {
        self.rows.keys().copied()
    }
}

fn slot(kind: ServiceKind) -> usize {
    ServiceKind::ALL
        .iter()
        .position(|k| *k == kind)
        .expect("kind in ALL")
}

/// Figure 2 rows: the top `n` vendors by total exposed services, each with
/// its per-service counts, sorted descending by total.
pub fn fig2_rows(matrix: &VendorServiceMatrix, n: usize) -> Vec<(&'static str, [u64; 8], u64)> {
    let mut rows: Vec<(&'static str, [u64; 8], u64)> = matrix
        .vendors()
        .map(|v| {
            let counts = std::array::from_fn(|i| matrix.count(v, ServiceKind::ALL[i]));
            (v, counts, matrix.vendor_total(v))
        })
        .collect();
    rows.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(b.0)));
    rows.truncate(n);
    rows
}

/// Figure 3 rows: for each service, the top `n` vendors by count.
pub fn fig3_rows(
    matrix: &VendorServiceMatrix,
    n: usize,
) -> Vec<(ServiceKind, Vec<(&'static str, u64)>)> {
    ServiceKind::ALL
        .into_iter()
        .map(|kind| {
            let mut vendors: Vec<(&'static str, u64)> = matrix
                .vendors()
                .map(|v| (v, matrix.count(v, kind)))
                .filter(|(_, c)| *c > 0)
                .collect();
            vendors.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
            vendors.truncate(n);
            (kind, vendors)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::survey::ServiceObservation;
    use xmap_netsim::services::{software_id, AppResponse};
    use xmap_periphery::DiscoveredPeriphery;

    fn synthetic_inputs() -> (CampaignResult, ServiceSurvey) {
        // Two devices: one ZTE (EUI-64 MAC), one identified via app layer.
        let zte_mac: xmap_addr::Mac = "38:e1:aa:00:00:01".parse().unwrap();
        let addr1 = xmap_addr::eui64_address("2408:8200::/64".parse().unwrap(), zte_mac);
        let addr2: Ip6 = "2409:8000::1234:5678:9abc:def0".parse().unwrap();
        let make = |address: Ip6, mac| DiscoveredPeriphery {
            address,
            target: "2408:8200::/64".parse().unwrap(),
            probe_dst: address,
            same64: true,
            iid_class: xmap_addr::classify_iid(address),
            mac,
            via_time_exceeded: false,
        };
        let mut campaign = CampaignResult::default();
        campaign.blocks.push(xmap_periphery::BlockResult {
            profile_id: 12,
            peripheries: vec![make(addr1, Some(zte_mac)), make(addr2, None)],
            stats: Default::default(),
            probed: 2,
            space_size: 4,
            alias_candidates: Vec::new(),
            mop_up_recovered: 0,
        });
        let http = software_id("micro_httpd", "14aug2014").unwrap();
        let survey = ServiceSurvey {
            observations: vec![
                ServiceObservation {
                    address: addr1,
                    profile_id: 12,
                    kind: ServiceKind::Dns,
                    response: AppResponse::DnsAnswer {
                        software: software_id("dnsmasq", "2.5x").unwrap(),
                    },
                },
                ServiceObservation {
                    address: addr1,
                    profile_id: 12,
                    kind: ServiceKind::Http,
                    response: AppResponse::HttpPage {
                        software: http,
                        login_page: true,
                        vendor: None,
                    },
                },
                ServiceObservation {
                    address: addr2,
                    profile_id: 12,
                    kind: ServiceKind::Http,
                    response: AppResponse::HttpPage {
                        software: http,
                        login_page: true,
                        vendor: Some("TP-Link"),
                    },
                },
            ],
            probed_per_block: [(12u8, 2usize)].into_iter().collect(),
        };
        (campaign, survey)
    }

    #[test]
    fn matrix_joins_both_vendor_channels() {
        let (campaign, survey) = synthetic_inputs();
        let m = VendorServiceMatrix::build(&campaign, &survey);
        assert_eq!(m.count("ZTE", ServiceKind::Dns), 1);
        assert_eq!(m.count("ZTE", ServiceKind::Http), 1);
        assert_eq!(m.count("TP-Link", ServiceKind::Http), 1);
        assert_eq!(m.vendor_total("ZTE"), 2);
        assert_eq!(m.unidentified, 0);
    }

    #[test]
    fn fig2_sorted_by_total() {
        let (campaign, survey) = synthetic_inputs();
        let m = VendorServiceMatrix::build(&campaign, &survey);
        let rows = fig2_rows(&m, 10);
        assert_eq!(rows[0].0, "ZTE");
        assert_eq!(rows[0].2, 2);
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn fig3_groups_by_service() {
        let (campaign, survey) = synthetic_inputs();
        let m = VendorServiceMatrix::build(&campaign, &survey);
        let rows = fig3_rows(&m, 20);
        let http_row = rows.iter().find(|(k, _)| *k == ServiceKind::Http).unwrap();
        assert_eq!(http_row.1.len(), 2);
        let ntp_row = rows.iter().find(|(k, _)| *k == ServiceKind::Ntp).unwrap();
        assert!(ntp_row.1.is_empty());
    }

    #[test]
    fn duplicate_observations_counted_once() {
        let (campaign, mut survey) = synthetic_inputs();
        let dup = survey.observations[0].clone();
        survey.observations.push(dup);
        let m = VendorServiceMatrix::build(&campaign, &survey);
        assert_eq!(m.count("ZTE", ServiceKind::Dns), 1);
    }
}
