//! DNS amplification-risk analysis of open resolvers (Section V-B).
//!
//! The paper warns that the 741k periphery DNS forwarders it finds "can
//! facilitate DDoS attacks for IPv6" (citing Hendriks et al., PAM'17):
//! a small spoofed query draws a large answer toward the victim. This
//! module quantifies that risk for a survey's DNS population using the
//! standard request/response size model for the relevant query types, and
//! aggregates the attack bandwidth a survey's open-resolver population
//! could reflect.

use xmap_netsim::services::ServiceKind;

use crate::survey::ServiceSurvey;

/// Wire sizes (bytes, including IPv6 + UDP headers) of a DNS query.
pub const QUERY_BYTES: u64 = 103; // 40 IPv6 + 8 UDP + ~55 DNS question

/// Query types attackers use for amplification, with typical response
/// sizes through a home-router forwarder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AmpQuery {
    /// Plain A/AAAA lookup — mild amplification.
    Address,
    /// `ANY` lookup on a record-rich name — the classic abuse.
    Any,
    /// DNSSEC-signed lookup with EDNS0 (large RRSIGs).
    DnssecAny,
}

impl AmpQuery {
    /// All modelled query types.
    pub const ALL: [AmpQuery; 3] = [AmpQuery::Address, AmpQuery::Any, AmpQuery::DnssecAny];

    /// Typical response size in bytes through a CPE forwarder.
    pub const fn response_bytes(self) -> u64 {
        match self {
            AmpQuery::Address => 151,
            AmpQuery::Any => 1_746,
            AmpQuery::DnssecAny => 3_843,
        }
    }

    /// Bandwidth amplification factor (response/query bytes).
    pub fn factor(self) -> f64 {
        self.response_bytes() as f64 / QUERY_BYTES as f64
    }

    /// Display label.
    pub const fn label(self) -> &'static str {
        match self {
            AmpQuery::Address => "A/AAAA",
            AmpQuery::Any => "ANY",
            AmpQuery::DnssecAny => "ANY+DNSSEC",
        }
    }
}

/// Aggregate amplification capacity of a resolver population.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AmpAssessment {
    /// Open resolvers in the population.
    pub resolvers: usize,
    /// Attacker query rate per resolver (pps) the model assumes — kept low
    /// so no single reflector is saturated.
    pub per_resolver_qps: u64,
    /// Query type modelled.
    pub query: AmpQuery,
}

impl AmpAssessment {
    /// Attacker upstream bandwidth required (bits/s).
    pub fn attacker_bps(&self) -> f64 {
        (self.resolvers as u64 * self.per_resolver_qps * QUERY_BYTES * 8) as f64
    }

    /// Victim-facing reflected bandwidth (bits/s).
    pub fn reflected_bps(&self) -> f64 {
        (self.resolvers as u64 * self.per_resolver_qps * self.query.response_bytes() * 8) as f64
    }

    /// The population-level amplification factor (same as the per-query
    /// factor; exposed for reports).
    pub fn factor(&self) -> f64 {
        self.query.factor()
    }
}

/// Builds the assessment for a survey's DNS-open peripheries.
pub fn assess(survey: &ServiceSurvey, per_resolver_qps: u64, query: AmpQuery) -> AmpAssessment {
    AmpAssessment {
        resolvers: survey.alive_total(ServiceKind::Dns),
        per_resolver_qps,
        query,
    }
}

/// Scale-corrects an assessment from a sampled population to a full one
/// (e.g. the paper's 741k resolvers from a measured slice).
pub fn scale_resolvers(assessment: AmpAssessment, scale: f64) -> AmpAssessment {
    AmpAssessment {
        resolvers: (assessment.resolvers as f64 * scale).round() as usize,
        ..assessment
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::survey::ServiceObservation;
    use xmap_netsim::services::{software_id, AppResponse};

    fn survey_with_resolvers(n: usize) -> ServiceSurvey {
        let mut survey = ServiceSurvey::default();
        let sw = software_id("dnsmasq", "2.4x").unwrap();
        for i in 0..n {
            survey.observations.push(ServiceObservation {
                address: xmap_addr::Ip6::new(i as u128 + 1),
                profile_id: 13,
                kind: ServiceKind::Dns,
                response: AppResponse::DnsAnswer { software: sw },
            });
        }
        survey
    }

    #[test]
    fn factors_are_ordered_and_plausible() {
        assert!(AmpQuery::Address.factor() > 1.0);
        assert!(AmpQuery::Any.factor() > 10.0);
        assert!(AmpQuery::DnssecAny.factor() > AmpQuery::Any.factor());
        // The literature's ballpark for DNS ANY amplification: 10-50x.
        assert!(AmpQuery::Any.factor() < 50.0);
    }

    #[test]
    fn assessment_bandwidth_math() {
        let survey = survey_with_resolvers(1000);
        let a = assess(&survey, 10, AmpQuery::Any);
        assert_eq!(a.resolvers, 1000);
        // 1000 resolvers x 10 qps x 103 B x 8 = 8.24 Mbps attacker side.
        assert!((a.attacker_bps() - 8.24e6).abs() < 1e4);
        // Reflected: x ~17.
        assert!(a.reflected_bps() / a.attacker_bps() > 15.0);
        assert_eq!(a.factor(), AmpQuery::Any.factor());
    }

    #[test]
    fn paper_population_reflects_ddos_scale() {
        // 741k open resolvers at a gentle 10 qps each reflect >100 Gbps of
        // ANY traffic — the "facilitate DDoS attacks" warning, quantified.
        let survey = survey_with_resolvers(741);
        let scaled = scale_resolvers(assess(&survey, 10, AmpQuery::Any), 1000.0);
        assert_eq!(scaled.resolvers, 741_000);
        assert!(scaled.reflected_bps() > 100e9, "{}", scaled.reflected_bps());
    }

    #[test]
    fn assess_counts_only_dns() {
        let mut survey = survey_with_resolvers(5);
        survey.observations.push(ServiceObservation {
            address: xmap_addr::Ip6::new(999),
            profile_id: 13,
            kind: ServiceKind::Http,
            response: AppResponse::HttpPage {
                software: software_id("Jetty", "9.x").unwrap(),
                login_page: false,
                vendor: None,
            },
        });
        assert_eq!(assess(&survey, 1, AmpQuery::Address).resolvers, 5);
    }
}
