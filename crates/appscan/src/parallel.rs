//! Work-stealing parallel driver for the exposed-services survey.
//!
//! [`SurveyRunner`] walks the discovered peripheries one device at a
//! time — eight sequential service grabs each — so a campaign-sized
//! survey is dominated by that serial walk. [`ParallelServiceSurvey`]
//! schedules the devices over an [`xmap::StealQueue`]: each worker owns
//! a private [`World`] replica and scanner (no shared simulator state,
//! no locks on the hot path) and drains device indices from its deque,
//! stealing from a victim's tail once its own runs dry — the same
//! discipline the loopscan BGP driver and the campaign executor use.
//!
//! Determinism: scheduling order is nondeterministic under contention,
//! so each device's observations are captured in a per-device slot and
//! merged in **campaign order** (block order, then discovery order
//! within the block — exactly the order the sequential runner probes).
//! The paper's "no more than one service simultaneously at the same
//! target" constraint is preserved per device: a device's eight grabs
//! stay sequential on one worker, only distinct devices overlap.
//! `parallel_survey_matches_sequential` pins the merged survey against
//! the sequential runner for 1, 2 and 4 workers.
//!
//! Registry warm-up: the simulated [`World`] only answers application
//! probes for addresses its discovery registry has seen respond — the
//! sequential survey inherits that registry from the discovery scan it
//! shares a scanner with, but a fresh replica starts cold and would
//! grab `Silent` everywhere. Before a worker grabs a device it replays
//! that device's discovery probe once (an ICMPv6 echo to the recorded
//! `probe_dst`, same hop limit as the scan) and discards the answers;
//! in the lossless worlds this survey targets, the replay registers
//! exactly the responder the original scan registered, so per-replica
//! state converges with the sequential scanner's for every grabbed
//! address.

use std::sync::Mutex;

use xmap::{IcmpEchoProbe, ScanConfig, Scanner, StealQueue};
use xmap_netsim::World;
use xmap_periphery::CampaignResult;

use crate::survey::{ServiceObservation, ServiceSurvey, SurveyRunner};

/// Parallel exposed-services survey over private world replicas.
#[derive(Debug, Clone, Copy)]
pub struct ParallelServiceSurvey {
    /// Worker threads. `0` is treated as `1`.
    pub workers: usize,
}

impl ParallelServiceSurvey {
    /// Creates a driver running the survey on `workers` threads.
    pub fn new(workers: usize) -> Self {
        ParallelServiceSurvey { workers }
    }

    /// Surveys every periphery discovered by `campaign`. `make_world`
    /// builds one world replica per worker and **must** return identical
    /// worlds for every index (same seed, same config): service state is
    /// read independently per replica, and the merge assumes device *i*
    /// answers the same everywhere.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panics.
    pub fn run<F>(
        &self,
        config: &ScanConfig,
        campaign: &CampaignResult,
        make_world: F,
    ) -> ServiceSurvey
    where
        F: Fn(usize) -> World + Sync,
    {
        let workers = self.workers.max(1);
        // Flatten devices in the sequential probe order: block order,
        // then discovery order within the block. Slot i belongs to the
        // i-th probed device, so the merge below reproduces the
        // sequential observation order no matter who surveyed what.
        let devices: Vec<(usize, usize)> = campaign
            .blocks
            .iter()
            .enumerate()
            .flat_map(|(b, blk)| (0..blk.peripheries.len()).map(move |p| (b, p)))
            .collect();

        let queue = StealQueue::new(devices.len(), workers);
        let slots: Vec<Mutex<Option<Vec<ServiceObservation>>>> =
            (0..devices.len()).map(|_| Mutex::new(None)).collect();

        std::thread::scope(|s| {
            for w in 0..workers {
                let queue = &queue;
                let slots = &slots;
                let devices = &devices;
                let make_world = &make_world;
                s.spawn(move || {
                    let mut scanner = Scanner::new(make_world(w), config.clone());
                    let hop_limit = scanner.config().hop_limit;
                    let (mut scratch, mut answers) = (Vec::new(), Vec::new());
                    while let Some(i) = queue.pop(w) {
                        let (b, p) = devices[i];
                        let block = &campaign.blocks[b];
                        let periphery = &block.peripheries[p];
                        // Warm the replica's discovery registry (see the
                        // module docs): replay the device's discovery
                        // probe and drop the answers.
                        scanner.probe_addr_into(
                            periphery.probe_dst,
                            &IcmpEchoProbe,
                            hop_limit,
                            &mut scratch,
                            &mut answers,
                        );
                        let mut part = ServiceSurvey::default();
                        SurveyRunner.probe_device(
                            &mut scanner,
                            block.profile_id,
                            periphery,
                            &mut part,
                        );
                        *slots[i].lock().expect("survey slot poisoned") = Some(part.observations);
                    }
                });
            }
        });

        let mut survey = ServiceSurvey::default();
        for slot in slots {
            let obs = slot
                .into_inner()
                .expect("survey slot poisoned")
                .expect("every queued device is surveyed exactly once");
            survey.observations.extend(obs);
        }
        for block in &campaign.blocks {
            survey
                .probed_per_block
                .insert(block.profile_id, block.peripheries.len());
        }
        survey
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmap_netsim::isp::SAMPLE_BLOCKS;
    use xmap_netsim::world::WorldConfig;
    use xmap_periphery::Campaign;

    fn make_world(_w: usize) -> World {
        World::with_config(WorldConfig::lossless(55, 10))
    }

    fn config() -> ScanConfig {
        ScanConfig {
            seed: 21,
            ..Default::default()
        }
    }

    /// The two service-rich Chinese broadband blocks, sliced, plus the
    /// sequential survey baseline run on the *same* scanner — the flow
    /// [`SurveyRunner`] documents, where the survey inherits the
    /// discovery scan's warmed world registry.
    fn discovered() -> (CampaignResult, ServiceSurvey) {
        let mut scanner = Scanner::new(make_world(0), config());
        let campaign = Campaign::new(1 << 16);
        let mut result = CampaignResult::default();
        for idx in [11usize, 12] {
            result
                .blocks
                .push(campaign.run_block(&mut scanner, &SAMPLE_BLOCKS[idx]));
        }
        let sequential = SurveyRunner.run(&mut scanner, &result);
        (result, sequential)
    }

    #[test]
    fn parallel_survey_matches_sequential() {
        let (result, sequential) = discovered();
        assert!(
            sequential.observations.len() > 20,
            "{} observations",
            sequential.observations.len()
        );

        for workers in [1usize, 2, 4] {
            let parallel = ParallelServiceSurvey::new(workers).run(&config(), &result, make_world);
            assert_eq!(
                parallel.observations, sequential.observations,
                "observations diverge at {workers} workers"
            );
            assert_eq!(
                parallel.probed_per_block, sequential.probed_per_block,
                "probed tallies diverge at {workers} workers"
            );
        }
    }

    #[test]
    fn empty_campaign_surveys_nothing() {
        let result = CampaignResult::default();
        let survey = ParallelServiceSurvey::new(4).run(&config(), &result, make_world);
        assert!(survey.observations.is_empty());
        assert!(survey.probed_per_block.is_empty());
    }
}
