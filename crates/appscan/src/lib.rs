//! Application-layer scanning of discovered peripheries (Section V).
//!
//! The paper probes seven security services (eight ports) on every
//! discovered periphery with ZGrab2 and analyzes the results along four
//! axes, all implemented here:
//!
//! * [`mod@grab`] — per-service banner grabbing over the simulated transport
//!   (UDP request/response; TCP SYN → handshake → request → response),
//! * [`survey`] — the full campaign across peripheries and blocks
//!   (Tables V and VII, Figures 2 and 3),
//! * [`parallel`] — the same survey over a work-stealing worker pool
//!   with a deterministic campaign-order merge,
//! * [`software`] — banner parsing into (product, version) and staleness
//!   analysis (Table VIII),
//! * [`cve`] — the embedded CVE snapshot joining software versions to
//!   known vulnerabilities (Table VIII's #CVE column).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cve;
pub mod dnsamp;
pub mod grab;
pub mod parallel;
pub mod report;
pub mod software;
pub mod survey;

pub use dnsamp::{assess, AmpAssessment, AmpQuery};
pub use grab::{grab, grab_with, GrabOutcome};
pub use parallel::ParallelServiceSurvey;
pub use report::{fig2_rows, fig3_rows, VendorServiceMatrix};
pub use software::{parse_banner, resolve_banner, SoftwareStats};
pub use survey::{ServiceObservation, ServiceSurvey, SurveyRunner};
