//! Banner parsing and software-staleness analysis (Table VIII).
//!
//! The simulator's responses carry software ids, but real analyses work
//! from banner *strings*; to keep the pipeline faithful, [`SoftwareStats`]
//! renders each observation to its banner, re-parses it with
//! [`parse_banner`], and resolves the result against the catalog — any
//! unparseable banner is counted as unknown, exactly as ZGrab2 output
//! post-processing would.

use std::collections::HashMap;

use xmap_netsim::services::{software_id, ServiceKind, Software, SoftwareId};

use crate::survey::ServiceSurvey;

/// Splits a banner like `dnsmasq-2.4x` or `openssh-7.x` into
/// (product, version). The product may itself contain hyphens or spaces;
/// the version is the suffix after the last `-`.
pub fn parse_banner(banner: &str) -> Option<(&str, &str)> {
    let (name, version) = banner.rsplit_once('-')?;
    if name.is_empty() || version.is_empty() {
        return None;
    }
    Some((name, version))
}

/// Resolves a banner against the catalog, trying every `-` split point
/// from right to left — version labels may themselves contain hyphens
/// (dropbear `2011-2019.x`).
pub fn resolve_banner(banner: &str) -> Option<SoftwareId> {
    let bytes = banner.as_bytes();
    for (i, b) in bytes.iter().enumerate().rev() {
        if *b != b'-' || i == 0 || i + 1 == bytes.len() {
            continue;
        }
        let (name, version) = (&banner[..i], &banner[i + 1..]);
        if let Some(id) = software_id(name, version) {
            return Some(id);
        }
    }
    None
}

/// Per-software observation counts with staleness analysis.
#[derive(Debug, Clone, Default)]
pub struct SoftwareStats {
    counts: HashMap<SoftwareId, u64>,
    /// Banners that failed to parse or resolve.
    pub unknown: u64,
}

impl SoftwareStats {
    /// Builds stats from a survey by rendering + re-parsing every banner.
    pub fn from_survey(survey: &ServiceSurvey) -> Self {
        let mut stats = SoftwareStats::default();
        for obs in &survey.observations {
            let Some(sw) = obs.response.software() else {
                continue;
            };
            let banner = sw.get().banner();
            match resolve_banner(&banner) {
                Some(id) => *stats.counts.entry(id).or_insert(0) += 1,
                None => stats.unknown += 1,
            }
        }
        stats
    }

    /// Count for one software version.
    pub fn count(&self, id: SoftwareId) -> u64 {
        self.counts.get(&id).copied().unwrap_or(0)
    }

    /// Total resolved observations.
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Rows for one service, sorted by descending count (Table VIII rows).
    pub fn top_for_service(&self, kind: ServiceKind) -> Vec<(&'static Software, u64)> {
        let http_like = |s: ServiceKind| matches!(s, ServiceKind::Http | ServiceKind::HttpAlt);
        let mut rows: Vec<(&'static Software, u64)> = self
            .counts
            .iter()
            .filter(|(id, _)| {
                let s = id.get().service;
                s == kind || (http_like(s) && http_like(kind))
            })
            .map(|(id, c)| (id.get(), *c))
            .collect();
        rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.banner().cmp(&b.0.banner())));
        rows
    }

    /// Devices running software released at least `years` years before the
    /// probing date (the "released 8-10 years ago" analysis).
    pub fn stale_count(&self, years: u16) -> u64 {
        self.counts
            .iter()
            .filter(|(id, _)| id.get().age_at_probe() >= years)
            .map(|(_, c)| *c)
            .sum()
    }

    /// Fraction of resolved observations that are stale by `years`.
    pub fn stale_fraction(&self, years: u16) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.stale_count(years) as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::survey::ServiceObservation;
    use xmap_netsim::services::AppResponse;

    #[test]
    fn banner_parsing() {
        assert_eq!(parse_banner("dnsmasq-2.4x"), Some(("dnsmasq", "2.4x")));
        assert_eq!(
            parse_banner("GNU Inetutils-1.4.1"),
            Some(("GNU Inetutils", "1.4.1"))
        );
        assert_eq!(
            parse_banner("dropbear-2011-2019.x"),
            Some(("dropbear-2011", "2019.x"))
        );
        assert_eq!(parse_banner("noversion"), None);
        assert_eq!(parse_banner("-2.0"), None);
        assert_eq!(parse_banner("name-"), None);
    }

    fn survey_with(software: &[(&str, &str, u64)]) -> ServiceSurvey {
        let mut survey = ServiceSurvey::default();
        for (name, version, n) in software {
            let id = software_id(name, version).unwrap();
            for i in 0..*n {
                survey.observations.push(ServiceObservation {
                    address: xmap_addr::Ip6::new(i as u128 + 1),
                    profile_id: 13,
                    kind: id.get().service,
                    response: AppResponse::DnsAnswer { software: id },
                });
            }
        }
        survey
    }

    #[test]
    fn from_survey_counts_roundtrip() {
        let survey = survey_with(&[("dnsmasq", "2.4x", 5), ("dnsmasq", "2.7x", 2)]);
        let stats = SoftwareStats::from_survey(&survey);
        assert_eq!(stats.count(software_id("dnsmasq", "2.4x").unwrap()), 5);
        assert_eq!(stats.count(software_id("dnsmasq", "2.7x").unwrap()), 2);
        assert_eq!(stats.total(), 7);
        assert_eq!(stats.unknown, 0);
    }

    #[test]
    fn top_for_service_sorted() {
        let survey = survey_with(&[
            ("dnsmasq", "2.4x", 5),
            ("dnsmasq", "2.7x", 9),
            ("dropbear", "0.48", 3),
        ]);
        let stats = SoftwareStats::from_survey(&survey);
        let dns = stats.top_for_service(ServiceKind::Dns);
        assert_eq!(dns.len(), 2);
        assert_eq!(dns[0].0.version, "2.7x");
        let ssh = stats.top_for_service(ServiceKind::Ssh);
        assert_eq!(ssh.len(), 1);
    }

    #[test]
    fn staleness_thresholds() {
        // dnsmasq 2.4x released 2012 (age 8 at probe), 2.7x released 2018
        // (age 2).
        let survey = survey_with(&[("dnsmasq", "2.4x", 4), ("dnsmasq", "2.7x", 6)]);
        let stats = SoftwareStats::from_survey(&survey);
        assert_eq!(stats.stale_count(8), 4);
        assert_eq!(stats.stale_count(1), 10);
        assert!((stats.stale_fraction(8) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn dropbear_2011_2019_version_resolves_despite_hyphen() {
        // The "2011-2019.x" version label contains a hyphen; naive
        // rightmost splitting fails, but resolve_banner tries every split
        // point and recovers the catalog entry.
        let id = software_id("dropbear", "2011-2019.x").unwrap();
        let banner = id.get().banner();
        assert_eq!(
            parse_banner(&banner).and_then(|(n, v)| software_id(n, v)),
            None
        );
        assert_eq!(resolve_banner(&banner), Some(id));
        assert_eq!(resolve_banner("garbage"), None);
    }
}
