//! Embedded CVE snapshot (the offline stand-in for the MITRE database).
//!
//! Table VIII joins each observed software family to the number of CVEs
//! that could be leveraged against devices running it: 16 for the dnsmasq
//! family, 24 for the embedded HTTP servers, 10 for dropbear, 74 for
//! openssh, 1 for the FreeBSD ftpd and 2 for vsftpd (GNU Inetutils and
//! Fritz!Box show none). The MITRE database is not available offline, so
//! this module carries a snapshot: the well-known identifiers are real;
//! the remainder (dominated by openssh's long history) are synthetic
//! fillers flagged as such, so counts — the only thing Table VIII uses —
//! are exact.

use xmap_netsim::services::SoftwareId;

/// Impact classes the paper calls out (DoS, code execution, bypass...).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Impact {
    /// Denial of service.
    Dos,
    /// Memory corruption / buffer overflow.
    Overflow,
    /// Remote code execution.
    CodeExecution,
    /// Authentication / policy bypass.
    Bypass,
    /// Information disclosure.
    Disclosure,
}

/// One CVE entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CveEntry {
    /// CVE identifier.
    pub id: &'static str,
    /// Affected product (catalog software name).
    pub product: &'static str,
    /// Impact class.
    pub impact: Impact,
    /// Whether the identifier is a synthetic filler (count-preserving
    /// stand-in for an entry of the real database).
    pub synthetic: bool,
}

macro_rules! cve {
    ($id:literal, $product:literal, $impact:ident) => {
        CveEntry {
            id: $id,
            product: $product,
            impact: Impact::$impact,
            synthetic: false,
        }
    };
    (syn $id:literal, $product:literal, $impact:ident) => {
        CveEntry {
            id: $id,
            product: $product,
            impact: Impact::$impact,
            synthetic: true,
        }
    };
}

/// The snapshot. Counts per product family match Table VIII exactly.
pub const CVE_TABLE: &[CveEntry] = &[
    // -- dnsmasq: 16 (DoS and buffer-overflow bugs) --
    cve!("CVE-2012-3411", "dnsmasq", Bypass),
    cve!("CVE-2013-0198", "dnsmasq", Dos),
    cve!("CVE-2015-3294", "dnsmasq", Disclosure),
    cve!("CVE-2017-13704", "dnsmasq", Dos),
    cve!("CVE-2017-14491", "dnsmasq", Overflow),
    cve!("CVE-2017-14492", "dnsmasq", Overflow),
    cve!("CVE-2017-14493", "dnsmasq", Overflow),
    cve!("CVE-2017-14494", "dnsmasq", Disclosure),
    cve!("CVE-2017-14495", "dnsmasq", Dos),
    cve!("CVE-2017-14496", "dnsmasq", Dos),
    cve!("CVE-2019-14834", "dnsmasq", Dos),
    cve!("CVE-2020-25681", "dnsmasq", Overflow),
    cve!("CVE-2020-25682", "dnsmasq", Overflow),
    cve!("CVE-2020-25683", "dnsmasq", Overflow),
    cve!("CVE-2020-25684", "dnsmasq", Bypass),
    cve!("CVE-2020-25685", "dnsmasq", Bypass),
    // -- embedded HTTP servers: 24 total --
    cve!("CVE-2017-17562", "GoAhead Embedded", CodeExecution),
    cve!("CVE-2019-5096", "GoAhead Embedded", CodeExecution),
    cve!("CVE-2019-5097", "GoAhead Embedded", Dos),
    cve!("CVE-2021-42342", "GoAhead Embedded", CodeExecution),
    cve!("CVE-2014-9707", "GoAhead Embedded", Overflow),
    cve!(syn "CVE-2016-10974", "GoAhead Embedded", Dos),
    cve!("CVE-2017-7656", "Jetty", Bypass),
    cve!("CVE-2017-7657", "Jetty", Overflow),
    cve!("CVE-2017-7658", "Jetty", Bypass),
    cve!("CVE-2017-9735", "Jetty", Disclosure),
    cve!("CVE-2018-12545", "Jetty", Dos),
    cve!("CVE-2019-10241", "Jetty", Disclosure),
    cve!("CVE-2019-10247", "Jetty", Disclosure),
    cve!("CVE-2020-27216", "Jetty", Bypass),
    cve!(syn "CVE-2015-11001", "Jetty", Dos),
    cve!(syn "CVE-2016-11002", "Jetty", Disclosure),
    cve!("CVE-2014-4927", "MiniWeb HTTP Server", Overflow),
    cve!(syn "CVE-2013-11003", "MiniWeb HTTP Server", Dos),
    cve!(syn "CVE-2015-11004", "MiniWeb HTTP Server", Overflow),
    cve!(syn "CVE-2018-11005", "MiniWeb HTTP Server", Disclosure),
    cve!(syn "CVE-2014-11006", "micro_httpd", Dos),
    cve!(syn "CVE-2015-11007", "micro_httpd", Overflow),
    cve!(syn "CVE-2016-11008", "micro_httpd", Disclosure),
    cve!(syn "CVE-2017-11009", "micro_httpd", Dos),
    // -- dropbear: 10 --
    cve!("CVE-2012-0920", "dropbear", CodeExecution),
    cve!("CVE-2013-4421", "dropbear", Dos),
    cve!("CVE-2013-4434", "dropbear", Disclosure),
    cve!("CVE-2016-7405", "dropbear", CodeExecution),
    cve!("CVE-2016-7406", "dropbear", CodeExecution),
    cve!("CVE-2016-7407", "dropbear", CodeExecution),
    cve!("CVE-2016-7408", "dropbear", CodeExecution),
    cve!("CVE-2017-9078", "dropbear", CodeExecution),
    cve!("CVE-2017-9079", "dropbear", Disclosure),
    cve!("CVE-2018-15599", "dropbear", Disclosure),
    // -- openssh: 74 (12 real + 62 count-preserving fillers) --
    cve!("CVE-2002-0640", "openssh", Overflow),
    cve!("CVE-2003-0693", "openssh", Overflow),
    cve!("CVE-2006-5051", "openssh", CodeExecution),
    cve!("CVE-2008-5161", "openssh", Disclosure),
    cve!("CVE-2010-4478", "openssh", Bypass),
    cve!("CVE-2015-5600", "openssh", Bypass),
    cve!("CVE-2016-0777", "openssh", Disclosure),
    cve!("CVE-2016-0778", "openssh", Overflow),
    cve!("CVE-2016-10009", "openssh", CodeExecution),
    cve!("CVE-2016-10012", "openssh", Bypass),
    cve!("CVE-2018-15473", "openssh", Disclosure),
    cve!("CVE-2019-6111", "openssh", CodeExecution),
    cve!(syn "CVE-2003-12001", "openssh", Dos),
    cve!(syn "CVE-2003-12002", "openssh", Bypass),
    cve!(syn "CVE-2004-12003", "openssh", Dos),
    cve!(syn "CVE-2004-12004", "openssh", Disclosure),
    cve!(syn "CVE-2005-12005", "openssh", Dos),
    cve!(syn "CVE-2005-12006", "openssh", Bypass),
    cve!(syn "CVE-2006-12007", "openssh", Dos),
    cve!(syn "CVE-2006-12008", "openssh", Disclosure),
    cve!(syn "CVE-2007-12009", "openssh", Dos),
    cve!(syn "CVE-2007-12010", "openssh", Bypass),
    cve!(syn "CVE-2008-12011", "openssh", Dos),
    cve!(syn "CVE-2008-12012", "openssh", Disclosure),
    cve!(syn "CVE-2009-12013", "openssh", Dos),
    cve!(syn "CVE-2009-12014", "openssh", Bypass),
    cve!(syn "CVE-2010-12015", "openssh", Dos),
    cve!(syn "CVE-2010-12016", "openssh", Disclosure),
    cve!(syn "CVE-2011-12017", "openssh", Dos),
    cve!(syn "CVE-2011-12018", "openssh", Bypass),
    cve!(syn "CVE-2012-12019", "openssh", Dos),
    cve!(syn "CVE-2012-12020", "openssh", Disclosure),
    cve!(syn "CVE-2013-12021", "openssh", Dos),
    cve!(syn "CVE-2013-12022", "openssh", Bypass),
    cve!(syn "CVE-2014-12023", "openssh", Dos),
    cve!(syn "CVE-2014-12024", "openssh", Disclosure),
    cve!(syn "CVE-2015-12025", "openssh", Dos),
    cve!(syn "CVE-2015-12026", "openssh", Bypass),
    cve!(syn "CVE-2016-12027", "openssh", Dos),
    cve!(syn "CVE-2016-12028", "openssh", Disclosure),
    cve!(syn "CVE-2017-12029", "openssh", Dos),
    cve!(syn "CVE-2017-12030", "openssh", Bypass),
    cve!(syn "CVE-2018-12031", "openssh", Dos),
    cve!(syn "CVE-2018-12032", "openssh", Disclosure),
    cve!(syn "CVE-2019-12033", "openssh", Dos),
    cve!(syn "CVE-2019-12034", "openssh", Bypass),
    cve!(syn "CVE-2020-12035", "openssh", Dos),
    cve!(syn "CVE-2020-12036", "openssh", Disclosure),
    cve!(syn "CVE-2003-12037", "openssh", Overflow),
    cve!(syn "CVE-2004-12038", "openssh", Overflow),
    cve!(syn "CVE-2005-12039", "openssh", Overflow),
    cve!(syn "CVE-2006-12040", "openssh", Overflow),
    cve!(syn "CVE-2007-12041", "openssh", Overflow),
    cve!(syn "CVE-2008-12042", "openssh", Overflow),
    cve!(syn "CVE-2009-12043", "openssh", Overflow),
    cve!(syn "CVE-2010-12044", "openssh", Overflow),
    cve!(syn "CVE-2011-12045", "openssh", Overflow),
    cve!(syn "CVE-2012-12046", "openssh", Overflow),
    cve!(syn "CVE-2013-12047", "openssh", Overflow),
    cve!(syn "CVE-2014-12048", "openssh", Overflow),
    cve!(syn "CVE-2015-12049", "openssh", Overflow),
    cve!(syn "CVE-2016-12050", "openssh", Overflow),
    cve!(syn "CVE-2017-12051", "openssh", Overflow),
    cve!(syn "CVE-2018-12052", "openssh", Overflow),
    cve!(syn "CVE-2019-12053", "openssh", Overflow),
    cve!(syn "CVE-2020-12054", "openssh", Overflow),
    cve!(syn "CVE-2005-12055", "openssh", Bypass),
    cve!(syn "CVE-2007-12056", "openssh", Bypass),
    cve!(syn "CVE-2009-12057", "openssh", Bypass),
    cve!(syn "CVE-2011-12058", "openssh", Bypass),
    cve!(syn "CVE-2013-12059", "openssh", Bypass),
    cve!(syn "CVE-2015-12060", "openssh", Bypass),
    cve!(syn "CVE-2017-12061", "openssh", Bypass),
    cve!(syn "CVE-2019-12062", "openssh", Bypass),
    // -- FTP --
    cve!("CVE-2006-0226", "FreeBSD", Overflow),
    cve!("CVE-2011-2523", "vsftpd", CodeExecution),
    cve!("CVE-2015-1419", "vsftpd", Bypass),
];

/// All CVEs affecting the product of a software version.
pub fn cves_for(software: SoftwareId) -> Vec<&'static CveEntry> {
    let product = software.get().name;
    CVE_TABLE.iter().filter(|e| e.product == product).collect()
}

/// CVE count for a product family by name.
pub fn count_for_product(product: &str) -> usize {
    CVE_TABLE.iter().filter(|e| e.product == product).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmap_netsim::services::software_id;

    #[test]
    fn counts_match_table_viii() {
        assert_eq!(count_for_product("dnsmasq"), 16);
        assert_eq!(count_for_product("dropbear"), 10);
        assert_eq!(count_for_product("openssh"), 74);
        assert_eq!(count_for_product("FreeBSD"), 1);
        assert_eq!(count_for_product("vsftpd"), 2);
        assert_eq!(count_for_product("GNU Inetutils"), 0);
        assert_eq!(count_for_product("Fritz!Box"), 0);
        // HTTP family: 24 across the four servers.
        let http: usize = [
            "Jetty",
            "MiniWeb HTTP Server",
            "micro_httpd",
            "GoAhead Embedded",
        ]
        .iter()
        .map(|p| count_for_product(p))
        .sum();
        assert_eq!(http, 24);
    }

    #[test]
    fn ids_are_unique_and_well_formed() {
        let mut ids: Vec<&str> = CVE_TABLE.iter().map(|e| e.id).collect();
        ids.sort_unstable();
        let before = ids.len();
        ids.dedup();
        assert_eq!(ids.len(), before, "duplicate CVE ids");
        for e in CVE_TABLE {
            assert!(e.id.starts_with("CVE-"), "{}", e.id);
            let rest = &e.id[4..];
            let (year, num) = rest.split_once('-').expect("CVE-YYYY-NNNN");
            assert!(
                year.len() == 4 && year.chars().all(|c| c.is_ascii_digit()),
                "{}",
                e.id
            );
            assert!(
                num.len() >= 4 && num.chars().all(|c| c.is_ascii_digit()),
                "{}",
                e.id
            );
        }
    }

    #[test]
    fn lookup_by_software_version() {
        let old_dnsmasq = software_id("dnsmasq", "2.4x").unwrap();
        assert_eq!(cves_for(old_dnsmasq).len(), 16);
        let fritz = software_id("Fritz!Box", "ftpd").unwrap();
        assert!(cves_for(fritz).is_empty());
    }

    #[test]
    fn real_ids_marked_real() {
        let real = CVE_TABLE.iter().filter(|e| !e.synthetic).count();
        // Every non-filler id is a genuine, well-known CVE.
        assert!(real >= 45, "{real}");
        assert!(CVE_TABLE
            .iter()
            .any(|e| e.id == "CVE-2017-14491" && !e.synthetic));
    }
}
