//! Per-service banner grabbing (the ZGrab2 role).
//!
//! For a UDP service the grabber sends the application-specific request of
//! Table VI and waits for a valid response. For a TCP service it first
//! checks port openness with a SYN (as the paper does), then performs the
//! application exchange on the open port.

use xmap::Scanner;
use xmap_addr::Ip6;
use xmap_netsim::packet::{AppData, Ipv6Packet, Network, Payload, TcpFlags};
use xmap_netsim::services::{AppResponse, ServiceKind, TransportProto};

/// Outcome of grabbing one service on one target.
#[derive(Debug, Clone, PartialEq)]
pub enum GrabOutcome {
    /// The service answered with a valid application response.
    Open(AppResponse),
    /// The port is closed (RST / port unreachable).
    Closed,
    /// No answer (filtered or dead).
    Silent,
    /// The port answered but the application response was invalid for the
    /// service (e.g. a mismatched protocol) — counted as not alive.
    Protocol,
}

impl GrabOutcome {
    /// Whether the service is alive per Table VI's valid-response rule.
    pub fn is_alive(&self) -> bool {
        matches!(self, GrabOutcome::Open(_))
    }

    /// The response, when alive.
    pub fn response(&self) -> Option<&AppResponse> {
        match self {
            GrabOutcome::Open(r) => Some(r),
            _ => None,
        }
    }
}

/// Per-protocol metric name for one grab counter, e.g.
/// `appscan.grabs.dns` or `appscan.open.http-8080`.
pub fn metric_name(prefix: &str, kind: ServiceKind) -> String {
    format!(
        "appscan.{prefix}.{}",
        kind.short_name().to_ascii_lowercase()
    )
}

/// Grabs one service from one target address.
///
/// When the scanner carries a live telemetry bundle, every attempt bumps
/// the per-protocol `appscan.grabs.<svc>` counter and every valid
/// response bumps `appscan.open.<svc>`.
pub fn grab<N: Network>(scanner: &mut Scanner<N>, addr: Ip6, kind: ServiceKind) -> GrabOutcome {
    let mut scratch = Vec::new();
    grab_with(scanner, addr, kind, &mut scratch)
}

/// [`grab`] with an external response buffer, for drivers grabbing many
/// (target, service) pairs: the buffer's capacity is reused across
/// calls, so the steady-state grab loop does not allocate.
pub fn grab_with<N: Network>(
    scanner: &mut Scanner<N>,
    addr: Ip6,
    kind: ServiceKind,
    scratch: &mut Vec<Ipv6Packet>,
) -> GrabOutcome {
    let out = match kind.transport() {
        TransportProto::Udp => grab_udp(scanner, addr, kind, scratch),
        TransportProto::Tcp => grab_tcp(scanner, addr, kind, scratch),
    };
    let registry = &scanner.telemetry().registry;
    if registry.is_enabled() {
        registry.counter(&metric_name("grabs", kind)).inc();
        if out.is_alive() {
            registry.counter(&metric_name("open", kind)).inc();
        }
    }
    out
}

fn grab_udp<N: Network>(
    scanner: &mut Scanner<N>,
    addr: Ip6,
    kind: ServiceKind,
    scratch: &mut Vec<Ipv6Packet>,
) -> GrabOutcome {
    let src = scanner.config().source;
    let sport = scanner.validator().source_port(addr);
    let probe = Ipv6Packet::udp_request(src, addr, sport, kind.port(), kind.request());
    scratch.clear();
    scanner.network_mut().handle_into(probe, scratch);
    classify_app_responses(scratch, sport, kind)
}

fn grab_tcp<N: Network>(
    scanner: &mut Scanner<N>,
    addr: Ip6,
    kind: ServiceKind,
    scratch: &mut Vec<Ipv6Packet>,
) -> GrabOutcome {
    let src = scanner.config().source;
    let sport = scanner.validator().source_port(addr);
    // Step 1: SYN to check openness.
    let syn = Ipv6Packet::tcp_syn(src, addr, sport, kind.port());
    let mut open = false;
    scratch.clear();
    scanner.network_mut().handle_into(syn, scratch);
    for resp in scratch.iter() {
        match &resp.payload {
            Payload::Tcp {
                flags: TcpFlags::SynAck,
                dst_port,
                ..
            } if *dst_port == sport => {
                open = true;
            }
            Payload::Tcp {
                flags: TcpFlags::Rst,
                dst_port,
                ..
            } if *dst_port == sport => {
                return GrabOutcome::Closed;
            }
            Payload::Icmp(_) => return GrabOutcome::Closed,
            _ => {}
        }
    }
    if !open {
        return GrabOutcome::Silent;
    }
    // Step 2: application exchange.
    let req = Ipv6Packet::tcp_request(src, addr, sport, kind.port(), kind.request());
    scratch.clear();
    scanner.network_mut().handle_into(req, scratch);
    classify_app_responses(scratch, sport, kind)
}

fn classify_app_responses(
    responses: &mut Vec<Ipv6Packet>,
    sport: u16,
    kind: ServiceKind,
) -> GrabOutcome {
    for resp in responses.drain(..) {
        match resp.payload {
            Payload::Udp {
                dst_port,
                data: AppData::Response(r),
                ..
            }
            | Payload::Tcp {
                dst_port,
                data: AppData::Response(r),
                ..
            } if dst_port == sport => {
                return if r.is_valid_for(kind) {
                    GrabOutcome::Open(r)
                } else {
                    GrabOutcome::Protocol
                };
            }
            Payload::Tcp {
                flags: TcpFlags::Rst,
                dst_port,
                ..
            } if dst_port == sport => {
                return GrabOutcome::Closed;
            }
            Payload::Icmp(_) => return GrabOutcome::Closed,
            _ => {}
        }
    }
    GrabOutcome::Silent
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmap::{IcmpEchoProbe, ProbeResult, ScanConfig};
    use xmap_netsim::isp::SAMPLE_BLOCKS;
    use xmap_netsim::world::{World, WorldConfig};

    /// Discovers one periphery with at least one open service and returns
    /// (scanner, address, expected services).
    fn discover_service_device() -> (Scanner<World>, Ip6, xmap_netsim::device::ServiceSet) {
        let world = World::with_config(WorldConfig::lossless(77, 10));
        let mut scanner = Scanner::new(
            world,
            ScanConfig {
                seed: 13,
                ..Default::default()
            },
        );
        // China Mobile broadband (index 12) is service-rich.
        let p = &SAMPLE_BLOCKS[12];
        for i in 0..3_000_000u64 {
            let Some(d) = scanner.network_mut().device_at(12, i) else {
                continue;
            };
            if !d.services.any() {
                continue;
            }
            let target = p.scan_prefix().subprefix(p.assigned_len, i as u128);
            let dst = xmap::fill_host_bits(target, 13);
            let hits = scanner.probe_addr(dst, &IcmpEchoProbe, 64);
            let Some((addr, _)) = hits.iter().find(|(_, r)| {
                matches!(
                    r,
                    ProbeResult::Unreachable { .. } | ProbeResult::TimeExceeded
                )
            }) else {
                continue;
            };
            return (scanner, *addr, d.services);
        }
        panic!("no service device found");
    }

    #[test]
    fn open_services_grab_valid_responses() {
        let (mut scanner, addr, services) = discover_service_device();
        for (kind, _) in services.iter() {
            let out = grab(&mut scanner, addr, kind);
            assert!(out.is_alive(), "{kind} should be alive, got {out:?}");
            assert!(out.response().unwrap().is_valid_for(kind));
        }
    }

    #[test]
    fn grab_counters_track_each_protocol() {
        let (mut scanner, addr, _) = discover_service_device();
        let base = scanner.telemetry().registry.snapshot();
        for kind in ServiceKind::ALL {
            let out = grab(&mut scanner, addr, kind);
            let snap = scanner.telemetry().registry.snapshot();
            let grabs = metric_name("grabs", kind);
            let open = metric_name("open", kind);
            assert_eq!(snap.counter(&grabs) - base.counter(&grabs), 1, "{kind}");
            assert_eq!(
                snap.counter(&open) - base.counter(&open),
                u64::from(out.is_alive()),
                "{kind}"
            );
        }
    }

    #[test]
    fn closed_services_report_closed() {
        let (mut scanner, addr, services) = discover_service_device();
        for kind in ServiceKind::ALL {
            if services.has(kind) {
                continue;
            }
            let out = grab(&mut scanner, addr, kind);
            assert!(
                matches!(out, GrabOutcome::Closed | GrabOutcome::Silent),
                "{kind}: {out:?}"
            );
        }
    }

    #[test]
    fn undiscovered_address_is_silent() {
        let world = World::with_config(WorldConfig::lossless(77, 10));
        let mut scanner = Scanner::new(world, ScanConfig::default());
        let out = grab(
            &mut scanner,
            "2405:200::1".parse().unwrap(),
            ServiceKind::Dns,
        );
        assert_eq!(out, GrabOutcome::Silent);
    }
}
