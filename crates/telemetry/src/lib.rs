//! `xmap-telemetry` — workspace-wide metrics, event tracing and live
//! monitoring for the XMap reproduction.
//!
//! The paper's headline claims are rates measured *while* scanning (840
//! Kpps send rate, per-block hit rates, ICMPv6 error rate limiting, loop
//! amplification factors); this crate is the observability substrate that
//! lets every crate in the workspace report them:
//!
//! - [`Registry`] — a lock-free metric store. Hot paths hold pre-bound
//!   [`Counter`]/[`Gauge`]/[`Histogram`] handles whose update is one
//!   relaxed atomic operation; [`Registry::disabled`] hands out inert
//!   handles for zero-overhead builds.
//! - [`Tracer`] — a bounded ring buffer of structured [`TraceEvent`]s with
//!   per-span virtual-clock timing, dumpable as NDJSON.
//! - [`Monitor`] — a ZMap-style periodic status-line renderer driven by
//!   the scan's virtual clock, so its output is deterministic under test.
//! - [`Snapshot`] — a deterministic JSON export of the registry, the
//!   format behind `xmap --metrics-out` and bench trajectories.
//!
//! Everything is seeded/virtual-clock friendly: no wall-clock time leaks
//! into any exported artifact, so two runs of the same seeded scan produce
//! byte-identical snapshots and traces.
//!
//! # Quick start
//!
//! ```
//! use xmap_telemetry::{Registry, Telemetry};
//!
//! let telemetry = Telemetry::new();
//! let sent = telemetry.registry.counter("scan.sent");
//! let rtt = telemetry.registry.histogram("scan.rtt_ticks", &[1, 4, 16, 64]);
//! sent.inc();
//! rtt.record(3);
//! telemetry.tracer.event(0, "scan.send", vec![("attempt", 0u64.into())]);
//! let snapshot = telemetry.registry.snapshot();
//! assert_eq!(snapshot.counter("scan.sent"), 1);
//! assert!(snapshot.to_json().contains("\"scan.rtt_ticks\""));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod monitor;
pub mod registry;
pub mod trace;

pub use monitor::{Monitor, MonitorSink};
pub use registry::{
    Counter, Gauge, Histogram, HistogramSnapshot, Registry, Snapshot, SNAPSHOT_SCHEMA,
};
pub use trace::{FieldValue, TraceEvent, Tracer, DEFAULT_TRACE_CAPACITY};

use std::sync::Arc;

/// A shareable bundle of one registry and one tracer — the handle every
/// instrumented component takes.
#[derive(Debug, Clone)]
pub struct Telemetry {
    /// The metric store.
    pub registry: Arc<Registry>,
    /// The event-trace ring buffer.
    pub tracer: Arc<Tracer>,
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::new()
    }
}

impl Telemetry {
    /// Live metrics, tracing disabled (the default for library scanners:
    /// counters are cheap, per-event tracing is opt-in).
    pub fn new() -> Self {
        Telemetry {
            registry: Arc::new(Registry::new()),
            tracer: Arc::new(Tracer::disabled()),
        }
    }

    /// Live metrics and live tracing with the default ring capacity.
    pub fn with_tracing() -> Self {
        Telemetry {
            registry: Arc::new(Registry::new()),
            tracer: Arc::new(Tracer::default()),
        }
    }

    /// Fully inert telemetry (the baseline of the overhead bench).
    pub fn disabled() -> Self {
        Telemetry {
            registry: Arc::new(Registry::disabled()),
            tracer: Arc::new(Tracer::disabled()),
        }
    }
}
