//! Structured event tracing on the virtual clock.
//!
//! A [`Tracer`] is a bounded ring buffer of [`TraceEvent`]s. Every event
//! carries the virtual-clock tick it happened at; span events additionally
//! carry a duration in ticks, so "how long did the mop-up pass take" is
//! answered in deterministic simulated time, never wall clock. When the
//! ring is full the oldest events are dropped (and counted), keeping the
//! cost of tracing bounded no matter how long a scan runs.
//!
//! The buffer dumps as NDJSON — one JSON object per line, in record order —
//! which is what `xmap --trace-out` writes.

use std::collections::VecDeque;
use std::sync::Mutex;

use crate::registry::push_json_string;

/// Default ring capacity (events kept before the oldest are dropped).
pub const DEFAULT_TRACE_CAPACITY: usize = 4096;

/// A field value attached to a trace event. Only integer and string
/// payloads are allowed so NDJSON output stays deterministic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FieldValue {
    /// An unsigned integer field.
    U64(u64),
    /// A string field.
    Str(String),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_owned())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Monotone sequence number (survives ring-buffer eviction, so gaps
    /// reveal dropped events).
    pub seq: u64,
    /// Virtual-clock tick the event happened at (span start for spans).
    pub tick: u64,
    /// Span / event name, e.g. `scan.send` or `periphery.mopup`.
    pub span: &'static str,
    /// Span duration in ticks; `None` for instantaneous events.
    pub dur_ticks: Option<u64>,
    /// Free-form key/value payload.
    pub fields: Vec<(&'static str, FieldValue)>,
}

impl TraceEvent {
    fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(96);
        out.push_str(&format!(
            "{{\"seq\": {}, \"tick\": {}, \"span\": ",
            self.seq, self.tick
        ));
        push_json_string(&mut out, self.span);
        if let Some(d) = self.dur_ticks {
            out.push_str(&format!(", \"dur_ticks\": {d}"));
        }
        for (k, v) in &self.fields {
            out.push_str(", ");
            push_json_string(&mut out, k);
            out.push_str(": ");
            match v {
                FieldValue::U64(n) => out.push_str(&n.to_string()),
                FieldValue::Str(s) => push_json_string(&mut out, s),
            }
        }
        out.push('}');
        out
    }
}

#[derive(Debug, Default)]
struct Ring {
    events: VecDeque<TraceEvent>,
    next_seq: u64,
    dropped: u64,
}

/// Bounded structured-event recorder. Shareable via `Arc`; recording takes
/// a mutex, so keep per-packet hot paths on [`crate::Counter`]s and trace
/// phase-level spans and exceptional events instead.
#[derive(Debug)]
pub struct Tracer {
    enabled: bool,
    capacity: usize,
    ring: Mutex<Ring>,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new(DEFAULT_TRACE_CAPACITY)
    }
}

impl Tracer {
    /// A live tracer keeping the last `capacity` events.
    pub fn new(capacity: usize) -> Self {
        Tracer {
            enabled: true,
            capacity: capacity.max(1),
            ring: Mutex::new(Ring::default()),
        }
    }

    /// A tracer that records nothing (checks one bool per call).
    pub fn disabled() -> Self {
        Tracer {
            enabled: false,
            capacity: 0,
            ring: Mutex::new(Ring::default()),
        }
    }

    /// Whether events are being recorded.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records an instantaneous event at `tick`.
    #[inline]
    pub fn event(&self, tick: u64, span: &'static str, fields: Vec<(&'static str, FieldValue)>) {
        if self.enabled {
            self.push(tick, span, None, fields);
        }
    }

    /// Records a span that started at `start_tick` and ended at `end_tick`
    /// on the same virtual clock.
    #[inline]
    pub fn span_event(
        &self,
        start_tick: u64,
        end_tick: u64,
        span: &'static str,
        fields: Vec<(&'static str, FieldValue)>,
    ) {
        if self.enabled {
            self.push(
                start_tick,
                span,
                Some(end_tick.saturating_sub(start_tick)),
                fields,
            );
        }
    }

    fn push(
        &self,
        tick: u64,
        span: &'static str,
        dur_ticks: Option<u64>,
        fields: Vec<(&'static str, FieldValue)>,
    ) {
        let mut ring = self.ring.lock().expect("tracer poisoned");
        let seq = ring.next_seq;
        ring.next_seq += 1;
        if ring.events.len() == self.capacity {
            ring.events.pop_front();
            ring.dropped += 1;
        }
        ring.events.push_back(TraceEvent {
            seq,
            tick,
            span,
            dur_ticks,
            fields,
        });
    }

    /// Number of events currently buffered.
    pub fn len(&self) -> usize {
        self.ring.lock().expect("tracer poisoned").events.len()
    }

    /// Whether no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.ring.lock().expect("tracer poisoned").dropped
    }

    /// A copy of the buffered events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.ring
            .lock()
            .expect("tracer poisoned")
            .events
            .iter()
            .cloned()
            .collect()
    }

    /// Dumps the buffer as NDJSON (one event per line, oldest first).
    pub fn to_ndjson(&self) -> String {
        let ring = self.ring.lock().expect("tracer poisoned");
        let mut out = String::with_capacity(ring.events.len() * 96);
        for ev in &ring.events {
            out.push_str(&ev.to_json_line());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_record_in_order_with_fields() {
        let t = Tracer::new(16);
        t.event(3, "scan.send", vec![("attempt", 0u64.into())]);
        t.span_event(3, 11, "netsim.tick", vec![("delivered", 2u64.into())]);
        let evs = t.events();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].span, "scan.send");
        assert_eq!(evs[0].dur_ticks, None);
        assert_eq!(evs[1].dur_ticks, Some(8));
        let nd = t.to_ndjson();
        assert_eq!(nd.lines().count(), 2);
        assert!(nd.contains("{\"seq\": 0, \"tick\": 3, \"span\": \"scan.send\", \"attempt\": 0}"));
        assert!(nd.contains("\"dur_ticks\": 8"));
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let t = Tracer::new(2);
        for i in 0..5u64 {
            t.event(i, "e", vec![]);
        }
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 3);
        let evs = t.events();
        assert_eq!((evs[0].seq, evs[1].seq), (3, 4));
    }

    #[test]
    fn disabled_tracer_is_inert() {
        let t = Tracer::disabled();
        t.event(0, "e", vec![]);
        t.span_event(0, 5, "s", vec![]);
        assert!(t.is_empty());
        assert_eq!(t.to_ndjson(), "");
    }

    #[test]
    fn string_fields_are_escaped() {
        let t = Tracer::new(4);
        t.event(0, "e", vec![("msg", "a\"b".into())]);
        assert!(t.to_ndjson().contains("\"msg\": \"a\\\"b\""));
    }
}
