//! The live scan monitor.
//!
//! ZMap prints a status line every wall-clock second from a dedicated
//! monitor thread. Our scans run on a virtual clock (one tick per send
//! slot), so the [`Monitor`] is polled with the current tick instead and
//! emits a line whenever an interval boundary passes — which makes its
//! output deterministic for a seeded scan, wall-clock speed be damned.
//!
//! The monitor reads the scanner's well-known `scan.*` counters from the
//! shared registry; rates are computed over the virtual interval using the
//! configured tick⇄second conversion.

use std::io::Write;
use std::sync::{Arc, Mutex};

use crate::registry::{Counter, Registry};

/// Well-known counter names the monitor renders (bound at construction;
/// the scanner updates the same cells through its own handles).
pub mod names {
    /// Probes sent.
    pub const SENT: &str = "scan.sent";
    /// Response packets received.
    pub const RECEIVED: &str = "scan.received";
    /// Valid, recorded responses.
    pub const VALID: &str = "scan.valid";
    /// Retransmitted probes.
    pub const RETRANSMITS: &str = "scan.retransmits";
    /// Targets abandoned after exhausting every attempt.
    pub const GAVE_UP: &str = "scan.gave_up";
}

/// Where status lines go.
#[derive(Clone)]
pub enum MonitorSink {
    /// Write to the process's stderr.
    Stderr,
    /// Append lines to a shared buffer (used by tests and embedders).
    Buffer(Arc<Mutex<Vec<String>>>),
}

impl std::fmt::Debug for MonitorSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MonitorSink::Stderr => f.write_str("MonitorSink::Stderr"),
            MonitorSink::Buffer(_) => f.write_str("MonitorSink::Buffer"),
        }
    }
}

/// Periodic status-line renderer driven by the virtual clock.
#[derive(Debug)]
pub struct Monitor {
    interval_ticks: u64,
    ticks_per_sec: u64,
    next_due: u64,
    last_tick: u64,
    last_sent: u64,
    last_received: u64,
    sent: Counter,
    received: Counter,
    valid: Counter,
    retransmits: Counter,
    gave_up: Counter,
    sink: MonitorSink,
    lines_emitted: u64,
}

impl Monitor {
    /// A monitor over `registry`, emitting every `interval_ticks` of
    /// virtual time, converting ticks to seconds at `ticks_per_sec`.
    ///
    /// # Panics
    ///
    /// Panics if `interval_ticks` or `ticks_per_sec` is zero.
    pub fn new(registry: &Registry, interval_ticks: u64, ticks_per_sec: u64) -> Self {
        assert!(interval_ticks > 0, "monitor interval must be nonzero");
        assert!(ticks_per_sec > 0, "ticks_per_sec must be nonzero");
        Monitor {
            interval_ticks,
            ticks_per_sec,
            next_due: interval_ticks,
            last_tick: 0,
            last_sent: 0,
            last_received: 0,
            sent: registry.counter(names::SENT),
            received: registry.counter(names::RECEIVED),
            valid: registry.counter(names::VALID),
            retransmits: registry.counter(names::RETRANSMITS),
            gave_up: registry.counter(names::GAVE_UP),
            sink: MonitorSink::Stderr,
            lines_emitted: 0,
        }
    }

    /// Redirects status lines (tests capture them in a buffer).
    pub fn with_sink(mut self, sink: MonitorSink) -> Self {
        self.sink = sink;
        self
    }

    /// Status lines emitted so far.
    pub fn lines_emitted(&self) -> u64 {
        self.lines_emitted
    }

    /// Whether [`poll`](Self::poll) at tick `now` would emit a line. Hot
    /// loops check this before flushing batched tallies into the registry
    /// so the emitted line reads exact counts.
    #[inline]
    pub fn is_due(&self, now: u64) -> bool {
        now >= self.next_due
    }

    /// Polls the monitor at virtual tick `now`, emitting one status line
    /// per elapsed interval boundary (at most one line per poll: bursts of
    /// virtual time collapse into a line covering the whole burst).
    pub fn poll(&mut self, now: u64) {
        if now < self.next_due {
            return;
        }
        let line = self.render(now);
        self.emit(&line);
        self.last_tick = now;
        self.last_sent = self.sent.get();
        self.last_received = self.received.get();
        // Skip boundaries the burst jumped over rather than replaying them.
        let intervals = now / self.interval_ticks + 1;
        self.next_due = intervals * self.interval_ticks;
        self.lines_emitted += 1;
    }

    /// Renders the status line for tick `now` without emitting it.
    pub fn render(&self, now: u64) -> String {
        let sent = self.sent.get();
        let received = self.received.get();
        let valid = self.valid.get();
        let dt_ticks = now.saturating_sub(self.last_tick).max(1);
        let send_pps = rate_pps(sent - self.last_sent, dt_ticks, self.ticks_per_sec);
        let recv_pps = rate_pps(received - self.last_received, dt_ticks, self.ticks_per_sec);
        let hit_rate = if sent == 0 {
            0.0
        } else {
            valid as f64 / sent as f64 * 100.0
        };
        format!(
            "t={}; send: {} ({}); recv: {} ({}); hits: {:.2}%; retrans: {}; gave_up: {}",
            fmt_virtual_secs(now, self.ticks_per_sec),
            sent,
            fmt_pps(send_pps),
            received,
            fmt_pps(recv_pps),
            hit_rate,
            self.retransmits.get(),
            self.gave_up.get(),
        )
    }

    fn emit(&self, line: &str) {
        match &self.sink {
            MonitorSink::Stderr => {
                let mut err = std::io::stderr().lock();
                let _ = writeln!(err, "{line}");
            }
            MonitorSink::Buffer(buf) => {
                buf.lock()
                    .expect("monitor sink poisoned")
                    .push(line.to_owned());
            }
        }
    }
}

fn rate_pps(delta: u64, dt_ticks: u64, ticks_per_sec: u64) -> f64 {
    delta as f64 * ticks_per_sec as f64 / dt_ticks as f64
}

fn fmt_virtual_secs(ticks: u64, ticks_per_sec: u64) -> String {
    format!("{:.1}s", ticks as f64 / ticks_per_sec as f64)
}

fn fmt_pps(pps: f64) -> String {
    if pps >= 1_000_000.0 {
        format!("{:.1} Mp/s", pps / 1_000_000.0)
    } else if pps >= 1_000.0 {
        format!("{:.1} Kp/s", pps / 1_000.0)
    } else {
        format!("{pps:.1} p/s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn buffer_monitor(
        reg: &Registry,
        interval: u64,
        tps: u64,
    ) -> (Monitor, Arc<Mutex<Vec<String>>>) {
        let buf = Arc::new(Mutex::new(Vec::new()));
        let mon = Monitor::new(reg, interval, tps).with_sink(MonitorSink::Buffer(buf.clone()));
        (mon, buf)
    }

    #[test]
    fn emits_once_per_interval() {
        let reg = Registry::new();
        let sent = reg.counter(names::SENT);
        let (mut mon, buf) = buffer_monitor(&reg, 10, 10);
        for now in 1..=35u64 {
            sent.add(2);
            mon.poll(now);
        }
        let lines = buf.lock().unwrap().clone();
        assert_eq!(lines.len(), 3, "{lines:?}");
        assert!(
            lines[0].starts_with("t=1.0s; send: 20 (20.0 p/s)"),
            "{}",
            lines[0]
        );
        assert!(
            lines[1].starts_with("t=2.0s; send: 40 (20.0 p/s)"),
            "{}",
            lines[1]
        );
    }

    #[test]
    fn burst_of_virtual_time_collapses_to_one_line() {
        let reg = Registry::new();
        let (mut mon, buf) = buffer_monitor(&reg, 10, 10);
        mon.poll(95);
        mon.poll(96);
        assert_eq!(buf.lock().unwrap().len(), 1);
        assert_eq!(mon.lines_emitted(), 1);
    }

    #[test]
    fn render_is_deterministic_and_shows_hit_rate() {
        let reg = Registry::new();
        reg.counter(names::SENT).add(1000);
        reg.counter(names::RECEIVED).add(80);
        reg.counter(names::VALID).add(40);
        reg.counter(names::RETRANSMITS).add(7);
        let mon = Monitor::new(&reg, 100, 1000);
        let line = mon.render(100);
        assert_eq!(
            line,
            "t=0.1s; send: 1000 (10.0 Kp/s); recv: 80 (800.0 p/s); hits: 4.00%; retrans: 7; gave_up: 0"
        );
        assert_eq!(line, mon.render(100));
    }
}
