//! The lock-free metrics registry.
//!
//! Hot paths hold pre-bound handles ([`Counter`], [`Gauge`], [`Histogram`])
//! whose update cost is a single relaxed atomic operation; the registry's
//! lock is taken only at bind time (get-or-create by name) and at snapshot
//! time. A registry created with [`Registry::disabled`] hands out inert
//! handles so instrumented code can keep its call sites unconditionally —
//! the `telemetry_overhead` bench measures the difference.
//!
//! Snapshots are deterministic: metric names are ordered, values are plain
//! integers, and nothing derives from wall-clock time, so a seeded scan
//! produces a byte-identical [`Snapshot`] on every run.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Schema identifier stamped into every snapshot export.
pub const SNAPSHOT_SCHEMA: &str = "xmap-telemetry/v1";

/// A monotonically increasing counter handle.
#[derive(Debug, Clone)]
pub struct Counter {
    cell: Arc<AtomicU64>,
    enabled: bool,
}

impl Counter {
    /// Adds `n` (one relaxed atomic add on the hot path).
    #[inline]
    pub fn add(&self, n: u64) {
        if self.enabled {
            self.cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Increments by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A last-value-wins gauge handle.
#[derive(Debug, Clone)]
pub struct Gauge {
    cell: Arc<AtomicU64>,
    enabled: bool,
}

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: u64) {
        if self.enabled {
            self.cell.store(v, Ordering::Relaxed);
        }
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramCell {
    /// Inclusive upper bounds of the finite buckets, strictly increasing.
    bounds: Vec<u64>,
    /// One slot per bound plus a trailing overflow bucket.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
}

/// A fixed-bucket histogram handle (`value <= bound` selects the bucket;
/// values above the last bound land in the overflow bucket).
#[derive(Debug, Clone)]
pub struct Histogram {
    cell: Arc<HistogramCell>,
    enabled: bool,
}

impl Histogram {
    /// Records one observation: two relaxed adds plus a bucket search.
    #[inline]
    pub fn record(&self, value: u64) {
        if !self.enabled {
            return;
        }
        let idx = self
            .cell
            .bounds
            .partition_point(|&b| b < value)
            .min(self.cell.bounds.len());
        self.cell.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.cell.count.fetch_add(1, Ordering::Relaxed);
        self.cell.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Records `n` identical observations with the same three relaxed adds
    /// a single [`record`](Self::record) costs — for hot loops that tally a
    /// repeated value locally and flush in one call.
    #[inline]
    pub fn record_n(&self, value: u64, n: u64) {
        if !self.enabled || n == 0 {
            return;
        }
        let idx = self
            .cell
            .bounds
            .partition_point(|&b| b < value)
            .min(self.cell.bounds.len());
        self.cell.buckets[idx].fetch_add(n, Ordering::Relaxed);
        self.cell.count.fetch_add(n, Ordering::Relaxed);
        self.cell
            .sum
            .fetch_add(value.wrapping_mul(n), Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.cell.count.load(Ordering::Relaxed)
    }

    /// Sum of observed values (wrapping on u64 overflow).
    pub fn sum(&self) -> u64 {
        self.cell.sum.load(Ordering::Relaxed)
    }

    /// Per-bucket counts (finite buckets then the overflow bucket).
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.cell
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// The configured finite bucket bounds.
    pub fn bounds(&self) -> &[u64] {
        &self.cell.bounds
    }
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: BTreeMap<String, Arc<AtomicU64>>,
    gauges: BTreeMap<String, Arc<AtomicU64>>,
    histograms: BTreeMap<String, Arc<HistogramCell>>,
}

/// The metric store. Cheap to share via `Arc`; see the module docs for the
/// locking discipline.
#[derive(Debug)]
pub struct Registry {
    enabled: bool,
    inner: Mutex<RegistryInner>,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl Registry {
    /// A live registry.
    pub fn new() -> Self {
        Registry {
            enabled: true,
            inner: Mutex::new(RegistryInner::default()),
        }
    }

    /// A registry whose handles are no-ops (still registered, always zero).
    /// Lets instrumented code keep unconditional call sites at effectively
    /// zero cost.
    pub fn disabled() -> Self {
        Registry {
            enabled: false,
            inner: Mutex::new(RegistryInner::default()),
        }
    }

    /// Whether handles from this registry record anything.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Gets or creates the counter `name`.
    pub fn counter(&self, name: &str) -> Counter {
        let mut inner = self.inner.lock().expect("registry poisoned");
        let cell = inner
            .counters
            .entry(name.to_owned())
            .or_insert_with(|| Arc::new(AtomicU64::new(0)))
            .clone();
        Counter {
            cell,
            enabled: self.enabled,
        }
    }

    /// Gets or creates the gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut inner = self.inner.lock().expect("registry poisoned");
        let cell = inner
            .gauges
            .entry(name.to_owned())
            .or_insert_with(|| Arc::new(AtomicU64::new(0)))
            .clone();
        Gauge {
            cell,
            enabled: self.enabled,
        }
    }

    /// Gets or creates the histogram `name` with the given finite bucket
    /// bounds (strictly increasing). Bounds passed on later lookups of an
    /// existing histogram are ignored.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly increasing.
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Histogram {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        let mut inner = self.inner.lock().expect("registry poisoned");
        let cell = inner
            .histograms
            .entry(name.to_owned())
            .or_insert_with(|| {
                Arc::new(HistogramCell {
                    bounds: bounds.to_vec(),
                    buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
                    count: AtomicU64::new(0),
                    sum: AtomicU64::new(0),
                })
            })
            .clone();
        Histogram {
            cell,
            enabled: self.enabled,
        }
    }

    /// Overwrites every metric named in `snap` with its snapshot value,
    /// creating metrics (with the snapshot's bucket bounds) that do not
    /// exist yet. Metrics present in the registry but absent from the
    /// snapshot are left untouched.
    ///
    /// This is the resume path of the checkpoint subsystem: a worker's
    /// registry is rebuilt to the exact state it had when the checkpoint
    /// was taken, so `stats_since`-style deltas and final exports match
    /// an uninterrupted run byte for byte.
    ///
    /// # Panics
    ///
    /// Panics if an existing histogram's bounds differ from the
    /// snapshot's (same contract as [`Snapshot::merge`]) — that indicates
    /// a checkpoint from an incompatible build.
    pub fn restore(&self, snap: &Snapshot) {
        let mut inner = self.inner.lock().expect("registry poisoned");
        for (name, value) in &snap.counters {
            inner
                .counters
                .entry(name.clone())
                .or_insert_with(|| Arc::new(AtomicU64::new(0)))
                .store(*value, Ordering::Relaxed);
        }
        for (name, value) in &snap.gauges {
            inner
                .gauges
                .entry(name.clone())
                .or_insert_with(|| Arc::new(AtomicU64::new(0)))
                .store(*value, Ordering::Relaxed);
        }
        for (name, h) in &snap.histograms {
            let cell = inner.histograms.entry(name.clone()).or_insert_with(|| {
                Arc::new(HistogramCell {
                    bounds: h.bounds.clone(),
                    buckets: (0..=h.bounds.len()).map(|_| AtomicU64::new(0)).collect(),
                    count: AtomicU64::new(0),
                    sum: AtomicU64::new(0),
                })
            });
            assert_eq!(
                cell.bounds, h.bounds,
                "histogram `{name}`: restore with mismatched bucket bounds"
            );
            for (bucket, count) in cell.buckets.iter().zip(&h.counts) {
                bucket.store(*count, Ordering::Relaxed);
            }
            cell.count.store(h.count, Ordering::Relaxed);
            cell.sum.store(h.sum, Ordering::Relaxed);
        }
    }

    /// Folds `snap` *additively* into the live registry: counters add,
    /// histogram buckets/counts add (creating metrics that do not exist
    /// yet), gauges are left untouched — a gauge is a derived point
    /// value, so callers recompute it from the absorbed totals.
    ///
    /// This is how a registry that drove part of a run absorbs the
    /// merged delta of work executed on other registries (e.g. a
    /// parallel campaign's per-worker registries), so the combined
    /// export matches the same work executed locally.
    ///
    /// # Panics
    ///
    /// Panics if an existing histogram's bounds differ from the
    /// snapshot's (same contract as [`Snapshot::merge`]).
    pub fn absorb(&self, snap: &Snapshot) {
        let mut inner = self.inner.lock().expect("registry poisoned");
        for (name, value) in &snap.counters {
            inner
                .counters
                .entry(name.clone())
                .or_insert_with(|| Arc::new(AtomicU64::new(0)))
                .fetch_add(*value, Ordering::Relaxed);
        }
        for (name, h) in &snap.histograms {
            let cell = inner.histograms.entry(name.clone()).or_insert_with(|| {
                Arc::new(HistogramCell {
                    bounds: h.bounds.clone(),
                    buckets: (0..=h.bounds.len()).map(|_| AtomicU64::new(0)).collect(),
                    count: AtomicU64::new(0),
                    sum: AtomicU64::new(0),
                })
            });
            assert_eq!(
                cell.bounds, h.bounds,
                "histogram `{name}`: absorb with mismatched bucket bounds"
            );
            for (bucket, count) in cell.buckets.iter().zip(&h.counts) {
                bucket.fetch_add(*count, Ordering::Relaxed);
            }
            cell.count.fetch_add(h.count, Ordering::Relaxed);
            cell.sum.fetch_add(h.sum, Ordering::Relaxed);
        }
    }

    /// A point-in-time copy of every registered metric.
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.inner.lock().expect("registry poisoned");
        Snapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, v)| {
                    (
                        k.clone(),
                        HistogramSnapshot {
                            bounds: v.bounds.clone(),
                            counts: v
                                .buckets
                                .iter()
                                .map(|b| b.load(Ordering::Relaxed))
                                .collect(),
                            count: v.count.load(Ordering::Relaxed),
                            sum: v.sum.load(Ordering::Relaxed),
                        },
                    )
                })
                .collect(),
        }
    }
}

/// Frozen histogram state inside a [`Snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Finite bucket bounds.
    pub bounds: Vec<u64>,
    /// Per-bucket counts; the trailing entry is the overflow bucket.
    pub counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
}

/// A deterministic point-in-time export of a [`Registry`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, u64>,
    /// Histogram states by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl Snapshot {
    /// One counter's value, defaulting to zero.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Folds `other` into `self`, the reduction step for combining the
    /// per-worker registries of a sharded run into one export.
    ///
    /// Counters add (saturating), histogram buckets/counts add per slot
    /// (saturating, with the `sum` field wrapping exactly as
    /// [`Histogram::record`] does), and gauges take `other`'s value
    /// (last-wins, matching [`Gauge::set`] semantics) — callers that can
    /// recompute a gauge from merged counters should overwrite it after
    /// merging. Metric names missing on either side are unioned in.
    ///
    /// # Panics
    ///
    /// Panics if the same histogram name carries different bucket bounds
    /// on the two sides: merging those would silently misbin, and every
    /// worker of a sharded run binds identical metric surfaces.
    pub fn merge(&mut self, other: &Snapshot) {
        for (name, v) in &other.counters {
            let slot = self.counters.entry(name.clone()).or_insert(0);
            *slot = slot.saturating_add(*v);
        }
        for (name, v) in &other.gauges {
            self.gauges.insert(name.clone(), *v);
        }
        for (name, h) in &other.histograms {
            match self.histograms.entry(name.clone()) {
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(h.clone());
                }
                std::collections::btree_map::Entry::Occupied(mut e) => {
                    let mine = e.get_mut();
                    assert_eq!(
                        mine.bounds, h.bounds,
                        "histogram {name:?} merged with mismatched bounds"
                    );
                    for (slot, add) in mine.counts.iter_mut().zip(&h.counts) {
                        *slot = slot.saturating_add(*add);
                    }
                    mine.count = mine.count.saturating_add(h.count);
                    mine.sum = mine.sum.wrapping_add(h.sum);
                }
            }
        }
    }

    /// The delta from `baseline` to `self`: counters and histogram
    /// buckets/counts subtract (saturating; the histogram `sum` wraps,
    /// the exact inverse of [`Snapshot::merge`]'s wrapping add), gauges
    /// keep `self`'s absolute value (a gauge has no meaningful delta).
    /// Metric names present only in `baseline` are dropped — a metric
    /// that stopped existing contributed nothing in between.
    ///
    /// `base.merge(&current.diff(&base))` reproduces `current`'s
    /// counters and histograms exactly, which is what lets a campaign
    /// checkpoint store per-block deltas and rebuild the merged export
    /// under any worker count.
    ///
    /// # Panics
    ///
    /// Panics if the same histogram name carries different bucket bounds
    /// on the two sides.
    pub fn diff(&self, baseline: &Snapshot) -> Snapshot {
        let mut out = self.clone();
        for (name, v) in &baseline.counters {
            if let Some(slot) = out.counters.get_mut(name) {
                *slot = slot.saturating_sub(*v);
            }
        }
        for (name, h) in &baseline.histograms {
            if let Some(mine) = out.histograms.get_mut(name) {
                assert_eq!(
                    mine.bounds, h.bounds,
                    "histogram {name:?} diffed with mismatched bounds"
                );
                for (slot, sub) in mine.counts.iter_mut().zip(&h.counts) {
                    *slot = slot.saturating_sub(*sub);
                }
                mine.count = mine.count.saturating_sub(h.count);
                mine.sum = mine.sum.wrapping_sub(h.sum);
            }
        }
        out
    }

    /// Renders the snapshot as pretty-printed JSON. Key order and number
    /// formatting are fixed, so equal snapshots render byte-identically.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n");
        out.push_str(&format!("  \"schema\": \"{SNAPSHOT_SCHEMA}\",\n"));
        out.push_str("  \"counters\": {");
        push_scalar_map(&mut out, &self.counters);
        out.push_str("},\n  \"gauges\": {");
        push_scalar_map(&mut out, &self.gauges);
        out.push_str("},\n  \"histograms\": {");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            push_json_string(&mut out, name);
            out.push_str(&format!(
                ": {{\"bounds\": {}, \"counts\": {}, \"count\": {}, \"sum\": {}}}",
                json_u64_array(&h.bounds),
                json_u64_array(&h.counts),
                h.count,
                h.sum
            ));
        }
        if !self.histograms.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("}\n}\n");
        out
    }
}

fn push_scalar_map(out: &mut String, map: &BTreeMap<String, u64>) {
    for (i, (name, v)) in map.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    ");
        push_json_string(out, name);
        out.push_str(&format!(": {v}"));
    }
    if !map.is_empty() {
        out.push_str("\n  ");
    }
}

fn json_u64_array(values: &[u64]) -> String {
    let mut s = String::from("[");
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        s.push_str(&v.to_string());
    }
    s.push(']');
    s
}

/// Appends `s` as a JSON string literal, escaping the characters that can
/// occur in metric names and trace fields.
pub(crate) fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_share_by_name() {
        let reg = Registry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.add(3);
        b.inc();
        assert_eq!(a.get(), 4);
        assert_eq!(reg.snapshot().counter("x"), 4);
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let reg = Registry::disabled();
        let c = reg.counter("x");
        let h = reg.histogram("h", &[1, 2]);
        let g = reg.gauge("g");
        c.add(10);
        h.record(1);
        g.set(7);
        assert!(!reg.is_enabled());
        assert_eq!(c.get(), 0);
        assert_eq!(h.count(), 0);
        assert_eq!(g.get(), 0);
    }

    #[test]
    fn histogram_bucketing_edge_cases() {
        let reg = Registry::new();
        let h = reg.histogram("rtt", &[1, 4, 16]);
        // Zero lands in the first bucket (le 1).
        h.record(0);
        // A value equal to a bound lands in that bound's bucket.
        h.record(4);
        // One past a bound moves to the next bucket.
        h.record(5);
        // The last bound is still finite...
        h.record(16);
        // ...and anything above it, including u64::MAX, overflows.
        h.record(17);
        h.record(u64::MAX);
        assert_eq!(h.bucket_counts(), vec![1, 1, 2, 2]);
        assert_eq!(h.count(), 6);
        assert_eq!(
            h.sum(),
            0u64.wrapping_add(4 + 5 + 16 + 17).wrapping_add(u64::MAX)
        );
    }

    #[test]
    fn record_n_matches_repeated_record() {
        let reg = Registry::new();
        let a = reg.histogram("a", &[1, 4, 16]);
        let b = reg.histogram("b", &[1, 4, 16]);
        for _ in 0..5 {
            a.record(4);
        }
        b.record_n(4, 5);
        b.record_n(4, 0); // zero-count flush is a no-op
        assert_eq!(a.bucket_counts(), b.bucket_counts());
        assert_eq!(a.count(), b.count());
        assert_eq!(a.sum(), b.sum());
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn histogram_rejects_unsorted_bounds() {
        Registry::new().histogram("bad", &[4, 4]);
    }

    #[test]
    fn concurrent_counter_increments_sum_exactly() {
        let reg = Arc::new(Registry::new());
        let c = reg.counter("threads");
        let h = reg.histogram("obs", &[10, 100]);
        std::thread::scope(|scope| {
            for t in 0..8 {
                let c = c.clone();
                let h = h.clone();
                scope.spawn(move || {
                    for i in 0..10_000u64 {
                        c.inc();
                        h.record((t * 10_000 + i) % 150);
                    }
                });
            }
        });
        assert_eq!(c.get(), 80_000);
        assert_eq!(h.count(), 80_000);
        assert_eq!(h.bucket_counts().iter().sum::<u64>(), 80_000);
    }

    #[test]
    fn snapshot_json_is_deterministic_and_ordered() {
        let build = || {
            let reg = Registry::new();
            reg.counter("b.second").add(2);
            reg.counter("a.first").add(1);
            reg.gauge("g").set(9);
            reg.histogram("h", &[1, 2]).record(3);
            reg.snapshot().to_json()
        };
        let a = build();
        let b = build();
        assert_eq!(a, b);
        // Names are sorted.
        assert!(a.find("a.first").unwrap() < a.find("b.second").unwrap());
        assert!(a.contains("\"schema\": \"xmap-telemetry/v1\""));
        assert!(a.contains("\"counts\": [0, 0, 1]"));
    }

    #[test]
    fn snapshot_merge_sums_counters_and_histograms() {
        let mk = |sent: u64, rtt: u64| {
            let reg = Registry::new();
            reg.counter("scan.sent").add(sent);
            reg.gauge("scan.hit_rate_ppm").set(sent / 2);
            reg.histogram("rtt", &[1, 4]).record(rtt);
            reg.snapshot()
        };
        let mut a = mk(10, 0);
        let b = mk(32, 5);
        a.merge(&b);
        assert_eq!(a.counter("scan.sent"), 42);
        // Gauges are last-wins: merged value is b's.
        assert_eq!(a.gauges["scan.hit_rate_ppm"], 16);
        let h = &a.histograms["rtt"];
        assert_eq!(h.counts, vec![1, 0, 1]);
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 5);
    }

    #[test]
    fn snapshot_merge_unions_names_and_saturates() {
        let left = Registry::new();
        left.counter("only.left").add(1);
        left.counter("both").add(u64::MAX - 1);
        let right = Registry::new();
        right.counter("only.right").add(2);
        right.counter("both").add(5);
        right.histogram("h", &[1]).record(0);
        let mut snap = left.snapshot();
        snap.merge(&right.snapshot());
        assert_eq!(snap.counter("only.left"), 1);
        assert_eq!(snap.counter("only.right"), 2);
        assert_eq!(snap.counter("both"), u64::MAX, "saturating, not wrapping");
        assert_eq!(snap.histograms["h"].count, 1);
    }

    #[test]
    #[should_panic(expected = "mismatched bounds")]
    fn snapshot_merge_rejects_mismatched_histogram_bounds() {
        let a = Registry::new();
        a.histogram("h", &[1, 2]);
        let b = Registry::new();
        b.histogram("h", &[1, 3]);
        a.snapshot().merge(&b.snapshot());
    }

    #[test]
    fn json_escaping() {
        let mut s = String::new();
        push_json_string(&mut s, "a\"b\\c\nd");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn restore_rebuilds_exact_state() {
        let source = Registry::new();
        source.counter("c").add(41);
        source.gauge("g").set(7);
        let h = source.histogram("h", &[1, 4, 16]);
        h.record(0);
        h.record(5);
        h.record(1_000);
        let snap = source.snapshot();

        // Target has stale values for some metrics and lacks others.
        let target = Registry::new();
        target.counter("c").add(999);
        target.counter("untouched").add(3);
        target.restore(&snap);
        let live = target.counter("c");
        let restored = target.snapshot();
        assert_eq!(restored.counter("c"), 41);
        assert_eq!(restored.counter("untouched"), 3);
        assert_eq!(restored.gauges["g"], 7);
        assert_eq!(restored.histograms["h"], snap.histograms["h"]);
        // Handles bound before the restore still see restored values.
        live.inc();
        assert_eq!(target.snapshot().counter("c"), 42);
    }

    #[test]
    #[should_panic(expected = "mismatched bucket bounds")]
    fn restore_rejects_mismatched_histogram_bounds() {
        let a = Registry::new();
        a.histogram("h", &[1, 2]);
        let b = Registry::new();
        b.histogram("h", &[1, 3]);
        b.restore(&a.snapshot());
    }

    #[test]
    fn diff_then_merge_roundtrips() {
        let reg = Registry::new();
        reg.counter("c").add(10);
        let h = reg.histogram("h", &[1, 4]);
        h.record(0);
        h.record(2);
        reg.gauge("g").set(3);
        let base = reg.snapshot();
        reg.counter("c").add(5);
        reg.counter("new").add(2);
        h.record(100);
        reg.gauge("g").set(9);
        let current = reg.snapshot();

        let delta = current.diff(&base);
        assert_eq!(delta.counter("c"), 5);
        assert_eq!(delta.counter("new"), 2);
        assert_eq!(delta.histograms["h"].count, 1);
        // Gauges carry the absolute value, not a delta.
        assert_eq!(delta.gauges["g"], 9);

        let mut rebuilt = base.clone();
        rebuilt.merge(&delta);
        assert_eq!(rebuilt.counters, current.counters);
        assert_eq!(rebuilt.histograms, current.histograms);
    }

    #[test]
    fn absorb_adds_counters_and_histograms_only() {
        let reg = Registry::new();
        reg.counter("c").add(7);
        reg.gauge("g").set(1);
        reg.histogram("h", &[1, 4]).record(2);

        let other = Registry::new();
        other.counter("c").add(3);
        other.counter("d").add(4);
        other.gauge("g").set(99);
        let oh = other.histogram("h", &[1, 4]);
        oh.record(0);
        oh.record(50);

        reg.absorb(&other.snapshot());
        let snap = reg.snapshot();
        assert_eq!(snap.counter("c"), 10);
        assert_eq!(snap.counter("d"), 4);
        // Gauges are derived values; absorb leaves them alone.
        assert_eq!(snap.gauges["g"], 1);
        assert_eq!(snap.histograms["h"].count, 3);
        assert_eq!(snap.histograms["h"].sum, 52);
    }

    #[test]
    fn absorb_of_empty_snapshot_is_a_no_op() {
        let reg = Registry::new();
        reg.counter("c").add(7);
        reg.histogram("h", &[1, 4]).record(2);
        let before = reg.snapshot();
        // An empty registry's snapshot carries no metrics at all.
        reg.absorb(&Registry::new().snapshot());
        assert_eq!(reg.snapshot(), before);
        // The mirror case: absorbing into an empty registry recreates
        // the counters and histograms (gauges stay absent by design).
        let fresh = Registry::new();
        fresh.absorb(&before);
        let snap = fresh.snapshot();
        assert_eq!(snap.counter("c"), 7);
        assert_eq!(snap.histograms["h"], before.histograms["h"]);
        assert!(snap.gauges.is_empty());
    }

    #[test]
    fn diff_saturates_instead_of_underflowing() {
        // A counter that regressed below its baseline (a restore from an
        // older snapshot, or u64 wrap-around in a pathological run) must
        // diff to zero, not to a huge bogus delta.
        let reg = Registry::new();
        reg.counter("c").add(100);
        let baseline = reg.snapshot();
        let newer = Registry::new();
        newer.counter("c").add(40);
        let delta = newer.snapshot().diff(&baseline);
        assert_eq!(delta.counter("c"), 0, "saturating, not wrapping");

        // At the saturation ceiling the delta still subtracts cleanly.
        let reg = Registry::new();
        reg.counter("c").add(u64::MAX);
        let base = reg.snapshot();
        reg.counter("c").add(5); // fetch_add wraps the cell; snapshot sees the wrap
        let wrapped = reg.snapshot();
        assert_eq!(
            wrapped.diff(&base).counter("c"),
            0,
            "wrapped cell saturates to zero"
        );
        assert_eq!(base.diff(&wrapped).counter("c"), u64::MAX - 4);

        // Histogram count/buckets saturate the same way; sum wraps by
        // contract so merge can reverse it.
        let a = Registry::new();
        a.histogram("h", &[10]).record(3);
        let b = Registry::new();
        let bh = b.histogram("h", &[10]);
        bh.record(3);
        bh.record(4);
        let d = a.snapshot().diff(&b.snapshot());
        assert_eq!(d.histograms["h"].count, 0);
        assert!(d.histograms["h"].counts.iter().all(|c| *c == 0));
    }

    #[test]
    fn diff_with_disjoint_metric_sets_keeps_only_self() {
        let current = Registry::new();
        current.counter("mine").add(9);
        current.gauge("mg").set(2);
        current.histogram("mh", &[1]).record(0);
        let baseline = Registry::new();
        baseline.counter("theirs").add(5);
        baseline.gauge("tg").set(8);
        baseline.histogram("th", &[1]).record(0);

        let delta = current.snapshot().diff(&baseline.snapshot());
        // Metrics only the baseline knew are dropped, not negated: a
        // delta must be absorbable without inventing regressions.
        assert_eq!(delta.counter("mine"), 9);
        assert!(!delta.counters.contains_key("theirs"));
        assert_eq!(delta.gauges.get("mg"), Some(&2));
        assert!(!delta.gauges.contains_key("tg"));
        assert!(delta.histograms.contains_key("mh"));
        assert!(!delta.histograms.contains_key("th"));
        // Diffing against a completely empty baseline is the identity.
        let snap = current.snapshot();
        assert_eq!(snap.diff(&Snapshot::default()), snap);
    }

    #[test]
    fn one_sided_split_counters_survive_absorb_and_diff() {
        // The campaign executor inserts `exec.splits`/`exec.split_shards`
        // only when a run actually split a block, so a resumed campaign
        // routinely merges a delta that carries them into a baseline
        // that has never heard of them (and vice versa). The round trip
        // `base.merge(delta)` / `merged.diff(base)` must neither drop
        // nor invent the one-sided counters.
        let base_reg = Registry::new();
        base_reg.counter("exec.blocks").add(3);
        let base = base_reg.snapshot();

        // Worker A split a block; worker B ran split-free.
        let a = Registry::new();
        a.counter("exec.blocks").add(1);
        a.counter("exec.splits").add(2);
        a.counter("exec.split_shards").add(5);
        let b = Registry::new();
        b.counter("exec.blocks").add(2);

        let mut merged = base.clone();
        merged.merge(&a.snapshot());
        merged.merge(&b.snapshot());
        assert_eq!(merged.counter("exec.blocks"), 6);
        assert_eq!(merged.counter("exec.splits"), 2);
        assert_eq!(merged.counter("exec.split_shards"), 5);

        // The delta back out carries exactly the split counters the
        // baseline lacked, and replaying it reproduces the merge.
        let delta = merged.diff(&base);
        assert_eq!(delta.counter("exec.splits"), 2);
        assert_eq!(delta.counter("exec.split_shards"), 5);
        let mut rebuilt = base.clone();
        rebuilt.merge(&delta);
        assert_eq!(rebuilt, merged);

        // A live registry that never registered the split counters
        // absorbs them into existence; absorbing a split-free delta
        // afterwards leaves them untouched.
        let live = Registry::new();
        live.counter("exec.blocks").add(3);
        live.absorb(&delta);
        live.absorb(&b.snapshot());
        let snap = live.snapshot();
        assert_eq!(snap.counter("exec.splits"), 2);
        assert_eq!(snap.counter("exec.split_shards"), 5);
        assert_eq!(snap.counter("exec.blocks"), 8);

        // Mirror direction: a split-free current diffed against a
        // baseline that did split drops (never negates) the counters,
        // so no downstream merge can regress a split tally.
        let spare = base.diff(&merged);
        assert!(!spare.counters.contains_key("exec.splits"));
        assert!(!spare.counters.contains_key("exec.split_shards"));
    }
}
