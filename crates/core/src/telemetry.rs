//! The scanner's metric surface.
//!
//! [`ScanMetrics`] binds every well-known `scan.*` metric against a shared
//! [`Registry`] once, so the scan hot path pays exactly one relaxed atomic
//! add per counted event. [`crate::ScanStats`] is now a *view* over these
//! metrics: [`Scanner::run`](crate::Scanner::run) snapshots a
//! [`MetricsBaseline`] on entry and reports the delta on exit, which makes
//! the registry the single source of truth for scan accounting — the
//! campaign mop-up pass and the pipelined runner count through the same
//! handles.

use xmap_telemetry::{Counter, Gauge, Histogram, Registry};

use crate::scanner::ScanStats;

/// Well-known metric names (the monitor and snapshot consumers key on
/// these; keep them in sync with DESIGN.md §"Telemetry").
pub mod names {
    /// Probes sent (counter).
    pub const SENT: &str = "scan.sent";
    /// Targets skipped by the blocklist (counter).
    pub const BLOCKED: &str = "scan.blocked";
    /// Response packets received (counter).
    pub const RECEIVED: &str = "scan.received";
    /// Responses failing stateless validation (counter).
    pub const INVALID: &str = "scan.invalid";
    /// Valid, recorded responses (counter).
    pub const VALID: &str = "scan.valid";
    /// Retransmitted probes (counter).
    pub const RETRANSMITS: &str = "scan.retransmits";
    /// Suspected ICMPv6 rate-limited targets (counter).
    pub const RATE_LIMITED: &str = "scan.rate_limited_suspected";
    /// Targets abandoned with every attempt unanswered (counter).
    pub const GAVE_UP: &str = "scan.gave_up";
    /// Accounted pacing in nanoseconds of virtual send time (counter).
    pub const PACED_NANOS: &str = "scan.paced_nanos";
    /// Valid responses per million probes sent (gauge, updated per run).
    pub const HIT_RATE_PPM: &str = "scan.hit_rate_ppm";
    /// Probe→response round-trip time in virtual ticks (histogram).
    pub const RTT_TICKS: &str = "scan.rtt_ticks";
    /// Scheduled retransmission backoff in virtual ticks (histogram).
    pub const BACKOFF_TICKS: &str = "scan.backoff_ticks";
    /// 1 while a checkpoint sink is running in degraded (in-memory)
    /// mode after a storage failure, 0 once durability is restored
    /// (gauge; only present in runs that degraded at least once).
    pub const DURABILITY_DEGRADED: &str = "state.durability_degraded";
    /// Worker panics caught and supervised by a parallel executor
    /// (counter; only present in runs that saw at least one).
    pub const EXEC_WORKER_PANICS: &str = "exec.worker_panics";
    /// Work units (shards/blocks) requeued for retry after a worker
    /// panic or stall (counter; only present when nonzero).
    pub const EXEC_REQUEUED: &str = "exec.requeued";
    /// Work units abandoned as poisoned after exhausting retry attempts
    /// (counter; only present when nonzero).
    pub const EXEC_POISONED: &str = "exec.poisoned";
    /// Stalled workers detected by the campaign watchdog (counter; only
    /// present when nonzero).
    pub const EXEC_STALLS: &str = "exec.stalls_detected";
    /// Intra-block split events performed by the campaign executor
    /// (counter; schedule-dependent, only present when nonzero).
    pub const EXEC_SPLITS: &str = "exec.splits";
    /// Sub-shard units created by intra-block splits, summed over all
    /// split events (counter; schedule-dependent, only present when
    /// nonzero).
    pub const EXEC_SPLIT_SHARDS: &str = "exec.split_shards";
}

/// RTT histogram bucket bounds (virtual ticks; one tick per send slot).
pub const RTT_BOUNDS: [u64; 9] = [0, 1, 2, 4, 8, 16, 32, 64, 128];

/// Backoff histogram bucket bounds (virtual ticks).
pub const BACKOFF_BOUNDS: [u64; 7] = [8, 16, 32, 64, 128, 256, 512];

/// Pre-bound handles for every scanner metric.
#[derive(Debug, Clone)]
pub struct ScanMetrics {
    /// Probes sent.
    pub sent: Counter,
    /// Blocklist skips.
    pub blocked: Counter,
    /// Responses received.
    pub received: Counter,
    /// Validation failures.
    pub invalid: Counter,
    /// Valid responses.
    pub valid: Counter,
    /// Retransmissions (included in `sent`).
    pub retransmits: Counter,
    /// Suspected rate-limited targets.
    pub rate_limited_suspected: Counter,
    /// Abandoned targets.
    pub gave_up: Counter,
    /// Accounted pacing, nanoseconds.
    pub paced_nanos: Counter,
    /// Valid-per-million-sent, refreshed after every run.
    pub hit_rate_ppm: Gauge,
    /// Round-trip times in ticks.
    pub rtt_ticks: Histogram,
    /// Retransmission backoffs in ticks.
    pub backoff_ticks: Histogram,
}

impl ScanMetrics {
    /// Binds all scan metrics in `registry`.
    pub fn bind(registry: &Registry) -> Self {
        ScanMetrics {
            sent: registry.counter(names::SENT),
            blocked: registry.counter(names::BLOCKED),
            received: registry.counter(names::RECEIVED),
            invalid: registry.counter(names::INVALID),
            valid: registry.counter(names::VALID),
            retransmits: registry.counter(names::RETRANSMITS),
            rate_limited_suspected: registry.counter(names::RATE_LIMITED),
            gave_up: registry.counter(names::GAVE_UP),
            paced_nanos: registry.counter(names::PACED_NANOS),
            hit_rate_ppm: registry.gauge(names::HIT_RATE_PPM),
            rtt_ticks: registry.histogram(names::RTT_TICKS, &RTT_BOUNDS),
            backoff_ticks: registry.histogram(names::BACKOFF_TICKS, &BACKOFF_BOUNDS),
        }
    }

    /// The raw counter totals right now (the anchor for a per-run delta).
    pub fn baseline(&self) -> MetricsBaseline {
        MetricsBaseline {
            sent: self.sent.get(),
            blocked: self.blocked.get(),
            received: self.received.get(),
            invalid: self.invalid.get(),
            valid: self.valid.get(),
            retransmits: self.retransmits.get(),
            rate_limited_suspected: self.rate_limited_suspected.get(),
            gave_up: self.gave_up.get(),
            paced_nanos: self.paced_nanos.get(),
        }
    }

    /// The [`ScanStats`] accumulated since `base` was captured. Exact: the
    /// subtraction happens on the raw integer counters (pacing included,
    /// as nanoseconds) before any float conversion.
    pub fn stats_since(&self, base: &MetricsBaseline) -> ScanStats {
        ScanStats {
            sent: self.sent.get() - base.sent,
            blocked: self.blocked.get() - base.blocked,
            received: self.received.get() - base.received,
            invalid: self.invalid.get() - base.invalid,
            valid: self.valid.get() - base.valid,
            retransmits: self.retransmits.get() - base.retransmits,
            rate_limited_suspected: self.rate_limited_suspected.get() - base.rate_limited_suspected,
            gave_up: self.gave_up.get() - base.gave_up,
            paced_secs: (self.paced_nanos.get() - base.paced_nanos) as f64 / 1e9,
        }
    }

    /// Refreshes the hit-rate gauge from the lifetime totals.
    pub fn update_hit_rate(&self) {
        let ppm = self
            .valid
            .get()
            .saturating_mul(1_000_000)
            .checked_div(self.sent.get());
        if let Some(ppm) = ppm {
            self.hit_rate_ppm.set(ppm);
        }
    }
}

/// Plain-integer tallies for the scanner's per-slot loop.
///
/// The hot path bumps these local fields (one register add, no atomics)
/// and [`flush`](HotTally::flush)es them through the shared [`ScanMetrics`]
/// handles at observation boundaries: before the monitor renders a status
/// line, every 1024 send slots (the liveness heartbeat concurrent
/// observers such as the campaign watchdog read), and when a run
/// finishes. Everything the registry exports therefore stays exact where
/// it is read, while the per-probe cost drops to nothing.
///
/// Only metrics the send/recv loop can touch every slot are batched; rare
/// events (suspected rate limiting, nonzero RTTs, backoff scheduling)
/// keep their direct handles.
#[derive(Debug, Default)]
pub struct HotTally {
    /// Probes sent.
    pub sent: u64,
    /// Blocklist skips.
    pub blocked: u64,
    /// Responses received.
    pub received: u64,
    /// Validation failures.
    pub invalid: u64,
    /// Valid responses.
    pub valid: u64,
    /// Retransmitted probes (every slot is one under sustained loss).
    pub retransmits: u64,
    /// Accounted pacing, nanoseconds.
    pub paced_nanos: u64,
    /// Valid responses that arrived in the send slot (RTT of zero ticks,
    /// the overwhelmingly common case) — flushed into the RTT histogram
    /// with [`Histogram::record_n`](xmap_telemetry::Histogram::record_n).
    pub rtt_zero: u64,
}

impl HotTally {
    /// Adds every nonzero tally to the shared handles and resets to zero.
    pub fn flush(&mut self, metrics: &ScanMetrics) {
        fn bump(counter: &Counter, n: &mut u64) {
            if *n > 0 {
                counter.add(*n);
                *n = 0;
            }
        }
        bump(&metrics.sent, &mut self.sent);
        bump(&metrics.blocked, &mut self.blocked);
        bump(&metrics.received, &mut self.received);
        bump(&metrics.invalid, &mut self.invalid);
        bump(&metrics.valid, &mut self.valid);
        bump(&metrics.retransmits, &mut self.retransmits);
        bump(&metrics.paced_nanos, &mut self.paced_nanos);
        if self.rtt_zero > 0 {
            metrics.rtt_ticks.record_n(0, self.rtt_zero);
            self.rtt_zero = 0;
        }
    }
}

/// A frozen copy of the raw scan counters, used to compute per-run deltas.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetricsBaseline {
    sent: u64,
    blocked: u64,
    received: u64,
    invalid: u64,
    valid: u64,
    retransmits: u64,
    rate_limited_suspected: u64,
    gave_up: u64,
    paced_nanos: u64,
}

impl MetricsBaseline {
    /// The baseline as a fixed-order array, for checkpoint serialization.
    /// Order: sent, blocked, received, invalid, valid, retransmits,
    /// rate_limited_suspected, gave_up, paced_nanos.
    pub fn to_raw(&self) -> [u64; 9] {
        [
            self.sent,
            self.blocked,
            self.received,
            self.invalid,
            self.valid,
            self.retransmits,
            self.rate_limited_suspected,
            self.gave_up,
            self.paced_nanos,
        ]
    }

    /// Rebuilds a baseline from the array produced by [`Self::to_raw`].
    pub fn from_raw(raw: [u64; 9]) -> Self {
        MetricsBaseline {
            sent: raw[0],
            blocked: raw[1],
            received: raw[2],
            invalid: raw[3],
            valid: raw[4],
            retransmits: raw[5],
            rate_limited_suspected: raw[6],
            gave_up: raw[7],
            paced_nanos: raw[8],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_delta_is_exact() {
        let reg = Registry::new();
        let m = ScanMetrics::bind(&reg);
        m.sent.add(100);
        m.paced_nanos.add(40_000 * 100);
        let base = m.baseline();
        m.sent.add(2500);
        m.valid.add(50);
        m.paced_nanos.add(40_000 * 2500);
        let stats = m.stats_since(&base);
        assert_eq!(stats.sent, 2500);
        assert_eq!(stats.valid, 50);
        assert!(
            (stats.paced_secs - 0.1).abs() < 1e-12,
            "{}",
            stats.paced_secs
        );
    }

    #[test]
    fn hot_tally_flush_matches_direct_counting() {
        let reg = Registry::new();
        let m = ScanMetrics::bind(&reg);
        let mut tally = HotTally {
            sent: 10,
            received: 7,
            valid: 6,
            invalid: 1,
            paced_nanos: 40_000,
            rtt_zero: 6,
            ..HotTally::default()
        };
        tally.flush(&m);
        assert_eq!(m.sent.get(), 10);
        assert_eq!(m.received.get(), 7);
        assert_eq!(m.rtt_ticks.count(), 6);
        assert_eq!(m.rtt_ticks.sum(), 0);
        // Flushing resets; a second flush adds nothing.
        tally.flush(&m);
        assert_eq!(m.sent.get(), 10);
        assert_eq!(tally.sent, 0);
    }

    #[test]
    fn hit_rate_gauge_tracks_totals() {
        let reg = Registry::new();
        let m = ScanMetrics::bind(&reg);
        m.sent.add(1000);
        m.valid.add(25);
        m.update_hit_rate();
        assert_eq!(m.hit_rate_ppm.get(), 25_000);
    }
}
