//! Modular arithmetic and primality — the in-tree replacement for GMP.
//!
//! XMap links GMP to run its address-permutation group arithmetic on
//! 128-bit values. Offline we implement the needed subset directly:
//! overflow-safe modular multiplication and exponentiation for moduli up to
//! 2¹²⁷, deterministic Miller–Rabin primality for 64-bit integers, Pollard
//! rho factorization, and primitive-root search — everything
//! [`crate::cyclic`] needs to build a multiplicative-group permutation over
//! an arbitrary scan space.

/// `a * b mod m` without overflow, for any `m < 2^127`.
///
/// Uses native 128-bit widening when everything fits, falling back to
/// double-and-add for large moduli.
///
/// # Panics
///
/// Panics if `m == 0`.
pub fn mulmod(a: u128, b: u128, m: u128) -> u128 {
    assert!(m != 0, "modulus must be nonzero");
    let (a, b) = (a % m, b % m);
    // Fast path: both operands fit in 64 bits, product fits in u128.
    if a <= u64::MAX as u128 && b <= u64::MAX as u128 {
        return (a * b) % m;
    }
    // Double-and-add: runs in O(bits(b)); valid while m < 2^127 so that
    // the running sum `acc + a` and the doubling `a + a` never overflow.
    debug_assert!(m < 1u128 << 127, "modulus must be < 2^127");
    let (mut a, mut b) = (a, b);
    let mut acc: u128 = 0;
    while b > 0 {
        if b & 1 == 1 {
            acc = addmod(acc, a, m);
        }
        a = addmod(a, a, m);
        b >>= 1;
    }
    acc
}

/// `a + b mod m` without overflow (requires `a, b < m < 2^127`).
fn addmod(a: u128, b: u128, m: u128) -> u128 {
    let s = a + b;
    if s >= m {
        s - m
    } else {
        s
    }
}

/// `base ^ exp mod m`.
///
/// # Panics
///
/// Panics if `m == 0`.
pub fn powmod(base: u128, mut exp: u128, m: u128) -> u128 {
    assert!(m != 0, "modulus must be nonzero");
    if m == 1 {
        return 0;
    }
    let mut base = base % m;
    let mut acc: u128 = 1;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mulmod(acc, base, m);
        }
        base = mulmod(base, base, m);
        exp >>= 1;
    }
    acc
}

/// Deterministic Miller–Rabin primality test, exact for all `n < 2^64`
/// (using the standard 12-base witness set) and strong probabilistic
/// evidence above that.
pub fn is_prime(n: u128) -> bool {
    if n < 2 {
        return false;
    }
    for p in [2u128, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if n == p {
            return true;
        }
        if n.is_multiple_of(p) {
            return false;
        }
    }
    let mut d = n - 1;
    let mut r = 0u32;
    while d & 1 == 0 {
        d >>= 1;
        r += 1;
    }
    'witness: for a in [2u128, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        let mut x = powmod(a, d, n);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 0..r - 1 {
            x = mulmod(x, x, n);
            if x == n - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// The smallest prime strictly greater than `n`.
///
/// # Panics
///
/// Panics if the search would exceed 2¹²⁶ (never for scan-space sizes).
pub fn next_prime(n: u128) -> u128 {
    let mut candidate = n + 1 + (n & 1); // first odd > n (or 2 -> 3)
    if n < 2 {
        return 2;
    }
    if candidate <= n {
        candidate = n + 1;
    }
    if candidate.is_multiple_of(2) {
        candidate += 1;
    }
    loop {
        assert!(candidate < 1u128 << 126, "prime search out of range");
        if is_prime(candidate) {
            return candidate;
        }
        candidate += 2;
    }
}

/// Pollard's rho: one nontrivial factor of a composite `n` (n > 3, odd or
/// even handled). Deterministic given the built-in parameter schedule.
fn pollard_rho(n: u128) -> u128 {
    if n.is_multiple_of(2) {
        return 2;
    }
    let mut c: u128 = 1;
    loop {
        let mut x: u128 = 2;
        let mut y: u128 = 2;
        let mut d: u128 = 1;
        while d == 1 {
            x = addmod(mulmod(x, x, n), c, n);
            y = addmod(mulmod(y, y, n), c, n);
            y = addmod(mulmod(y, y, n), c, n);
            d = gcd(x.abs_diff(y), n);
        }
        if d != n {
            return d;
        }
        c += 1; // cycle found the trivial factor; retry with new constant
    }
}

/// Greatest common divisor.
pub fn gcd(mut a: u128, mut b: u128) -> u128 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

/// The distinct prime factors of `n`, ascending.
pub fn prime_factors(mut n: u128) -> Vec<u128> {
    let mut out = Vec::new();
    // Strip small primes by trial division first.
    for p in [2u128, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47] {
        if n.is_multiple_of(p) {
            out.push(p);
            while n.is_multiple_of(p) {
                n /= p;
            }
        }
    }
    let mut stack = vec![n];
    while let Some(m) = stack.pop() {
        if m <= 1 {
            continue;
        }
        if is_prime(m) {
            if !out.contains(&m) {
                out.push(m);
            }
            continue;
        }
        let d = pollard_rho(m);
        stack.push(d);
        stack.push(m / d);
    }
    out.sort_unstable();
    out
}

/// A primitive root (generator of the multiplicative group) modulo prime `p`.
///
/// # Panics
///
/// Panics if `p` is not prime or `p < 3`.
pub fn primitive_root(p: u128) -> u128 {
    assert!(
        p >= 3 && is_prime(p),
        "primitive_root requires an odd prime"
    );
    let phi = p - 1;
    let factors = prime_factors(phi);
    'candidate: for g in 2..p {
        for q in &factors {
            if powmod(g, phi / q, p) == 1 {
                continue 'candidate;
            }
        }
        return g;
    }
    unreachable!("every prime has a primitive root")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mulmod_small_and_large() {
        assert_eq!(mulmod(7, 9, 13), 63 % 13);
        // Large operands that would overflow a naive u128 multiply.
        let m = (1u128 << 100) + 3;
        let a = (1u128 << 99) + 7;
        let b = (1u128 << 98) + 11;
        let r = mulmod(a, b, m);
        assert!(r < m);
        // Cross-check with double-and-add identity: (a*b) mod m == sum.
        assert_eq!(mulmod(a, 2, m), addmod(a, a, m));
        // Commutativity.
        assert_eq!(mulmod(a, b, m), mulmod(b, a, m));
    }

    #[test]
    fn powmod_matches_naive() {
        for (b, e, m) in [(3u128, 13u128, 97u128), (10, 0, 7), (2, 64, 1_000_003)] {
            let mut naive: u128 = 1;
            for _ in 0..e {
                naive = (naive * b) % m;
            }
            assert_eq!(powmod(b, e, m), naive, "{b}^{e} mod {m}");
        }
        assert_eq!(powmod(5, 100, 1), 0);
    }

    #[test]
    fn primality_known_values() {
        for p in [2u128, 3, 5, 7, 61, 97, 65_537, 4_294_967_311, (1 << 61) - 1] {
            assert!(is_prime(p), "{p} is prime");
        }
        for c in [1u128, 4, 9, 561, 65_535, 4_294_967_297, (1 << 61) + 1] {
            assert!(!is_prime(c), "{c} is composite");
        }
    }

    #[test]
    fn next_prime_values() {
        assert_eq!(next_prime(0), 2);
        assert_eq!(next_prime(2), 3);
        assert_eq!(next_prime(100), 101);
        // ZMap's famous constant: the smallest prime > 2^32.
        assert_eq!(next_prime(1 << 32), 4_294_967_311);
        assert_eq!(next_prime(1 << 16), 65_537);
    }

    #[test]
    fn factoring_composites() {
        assert_eq!(prime_factors(12), vec![2, 3]);
        // 2^32 - 2 = 2 x 2147483647 (a Mersenne prime).
        assert_eq!(prime_factors(4_294_967_294), vec![2, 2_147_483_647]);
        assert_eq!(prime_factors(4_294_967_310), vec![2, 3, 5, 131, 364_289]);
        assert_eq!(prime_factors(97), vec![97]);
        assert_eq!(prime_factors(1), Vec::<u128>::new());
    }

    #[test]
    fn primitive_roots_generate() {
        for p in [5u128, 7, 97, 65_537, 4_294_967_311] {
            let g = primitive_root(p);
            // g^(p-1) == 1 but no smaller prime-quotient power is 1.
            assert_eq!(powmod(g, p - 1, p), 1);
            for q in prime_factors(p - 1) {
                assert_ne!(powmod(g, (p - 1) / q, p), 1, "g={g} p={p} q={q}");
            }
        }
    }

    #[test]
    fn gcd_basics() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(17, 5), 1);
        assert_eq!(gcd(0, 7), 7);
    }
}
