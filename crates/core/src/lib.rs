//! XMap — a fast IPv6/IPv4 network scanner, reimplemented in Rust.
//!
//! This crate reproduces the scanner contribution of *Fast IPv6 Network
//! Periphery Discovery and Security Implications* (DSN 2021): a
//! ZMap-lineage stateless scanner whose address-generation module can
//! randomly permute **any bit range** of the address space (e.g.
//! `2001:db8::/32-64`), with modular probe modules, prefix blocklists,
//! keyed stateless response validation, sharding and rate limiting.
//!
//! Instead of raw sockets it drives any [`xmap_netsim::Network`] — in this
//! workspace, a deterministic simulated Internet — which makes every scan
//! reproducible and testable.
//!
//! # Quick start
//!
//! ```
//! use xmap::{Blocklist, IcmpEchoProbe, ProbeResult, ScanConfig, Scanner};
//! use xmap_netsim::World;
//!
//! # fn main() -> Result<(), xmap_addr::ParseAddrError> {
//! // Scan a slice of Reliance Jio's sample block for peripheries.
//! let mut scanner = Scanner::new(
//!     World::new(7),
//!     ScanConfig { max_targets: Some(5_000), ..Default::default() },
//! );
//! let results = scanner.run(
//!     &"2405:200::/32-64".parse()?,
//!     &IcmpEchoProbe,
//!     &Blocklist::with_standard_reserved(),
//! );
//! for record in &results.records {
//!     if let ProbeResult::Unreachable { .. } = record.result {
//!         // `record.responder` is a periphery's exposed WAN address.
//!     }
//! }
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blocklist;
pub mod checkpoint;
pub mod cyclic;
pub mod feasibility;
pub mod feistel;
pub mod math;
pub mod output;
pub mod parallel;
pub mod probe;
pub mod rate;
pub mod scanner;
pub mod target;
pub mod telemetry;
pub mod validate;
pub mod walk;

pub use blocklist::{Blocklist, Verdict};
pub use checkpoint::{
    build_manifest, run_session, RangeMode, RunResume, RunSink, ScanSession, SessionOutcome,
    SessionSpec, WorkerResume,
};
pub use cyclic::Cycle;
pub use feistel::FeistelPermutation;
pub use parallel::{
    insert_exec_counters, merge_worker_snapshots, worker_cap, ParallelScanner, StealQueue,
    Supervision,
};
pub use probe::{IcmpEchoProbe, ProbeModule, ProbeResult, TcpSynProbe, UdpProbe};
pub use rate::AdaptiveRateController;
pub use scanner::{
    run_pipelined, Confidence, Permutation, ScanConfig, ScanEngine, ScanRecord, ScanResults,
    ScanStats, Scanner,
};
pub use target::{fill_host_bits, TargetSpec};
pub use telemetry::ScanMetrics;
pub use validate::Validator;
pub use walk::IndexWalk;
