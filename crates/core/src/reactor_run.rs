//! The reactor-backed scan engine ([`ScanEngine::Reactor`]).
//!
//! Same pipeline as the lock-step loop in [`super`], restructured around
//! the `xmap-reactor` primitives: probes leave through
//! [`Transport::send_batch`], replies come back through a bounded,
//! tick-stamped receive queue ([`Transport::poll_recv`]), and
//! retransmissions park in a deadline [`TimerHeap`] instead of the
//! scanner-private retry heap.
//!
//! ## Byte-identity with the lock-step engine
//!
//! Every artifact — CSV records, metrics snapshots, monitor lines, trace
//! events, checkpoints — must match the lock-step engine byte for byte
//! (pinned by `tests/reactor_determinism.rs`). The load-bearing moves:
//!
//! * **Two polls per slot.** The lock-step loop absorbs immediate
//!   replies right after `handle_into` (pre-tick, stamped at the send
//!   slot) and delayed replies right after `tick_into` (post-tick). The
//!   reactor polls the receive queue at the same two points, and every
//!   [`RecvEntry`] carries its arrival tick, so RTTs and trace stamps
//!   are computed from arrival time, not poll time.
//! * **Shared sequence space.** The timer heap's sequence counter plays
//!   the role of `retry_seq`: both engines assign the same `(due_tick,
//!   seq)` keys, so retransmission order — and checkpointed retry
//!   queues — are identical, including across cross-engine resumes.
//! * **Checkpoint cuts at `in_flight() == 0`.** The transport's
//!   in-flight count includes its receive queue, so a cut can never
//!   strand a queued-but-unabsorbed reply.

use xmap_addr::{Ip6, Prefix, ScanRange};
use xmap_netsim::packet::{Ipv6Packet, Network};
use xmap_reactor::{RecvEntry, SimTransport, TimerHeap, Transport};
use xmap_state::{AbortSignal, AdaptiveState, RunState};
use xmap_telemetry::{Monitor, Telemetry};

use super::{
    probe_dst_of, Confidence, Outstanding, RecoveryState, ScanConfig, ScanRecord, ScanResults,
    Scanner, TargetGen,
};
use crate::blocklist::Blocklist;
use crate::checkpoint::{RunResume, RunSink};
use crate::probe::{ProbeModule, ProbeResult};
use crate::rate::{AdaptiveRateController, RateLimiter};
use crate::target::fill_host_bits;
use crate::telemetry::{names, HotTally, MetricsBaseline, ScanMetrics};
use crate::validate::Validator;

/// A retransmission parked in the reactor's timer heap. The payload the
/// lock-step engine keeps in its `RetryEntry` minus the `(due_tick,
/// seq)` key, which the heap owns.
#[derive(Debug, Clone, Copy)]
struct RetryTimer {
    target: Prefix,
    attempt: u32,
    prev_dst: Ip6,
    /// Walk position carried from the original fresh probe (split-merge
    /// key; zero on checkpoint restore, like the lock-step engine).
    position: u64,
}

/// The scanner's non-network halves, borrowed apart so the network can
/// be lent to a [`SimTransport`] for the duration of one run.
struct EngineCtx<'a> {
    config: &'a ScanConfig,
    validator: &'a Validator,
    telemetry: &'a Telemetry,
    metrics: &'a ScanMetrics,
    monitor: &'a mut Option<Monitor>,
    total_ticks: &'a mut u64,
    sink: &'a mut Option<RunSink>,
    durability_flagged: &'a mut bool,
    abort: &'a Option<AbortSignal>,
    track_positions: bool,
    walk_skip: u64,
    yield_flag: &'a Option<std::sync::Arc<std::sync::atomic::AtomicBool>>,
    yield_min_remaining: u64,
    force_yield_at: Option<u64>,
}

impl<N: Network> Scanner<N> {
    /// Runs one range on the reactor engine. Called from
    /// [`Scanner::run_inner`] when [`ScanConfig::engine`] selects
    /// [`ScanEngine::Reactor`](super::ScanEngine::Reactor).
    pub(super) fn run_reactor(
        &mut self,
        range: &ScanRange,
        module: &dyn ProbeModule,
        blocklist: &Blocklist,
        resume: Option<RunResume>,
    ) -> ScanResults {
        let Scanner {
            network,
            config,
            validator,
            telemetry,
            metrics,
            monitor,
            total_ticks,
            sink,
            durability_flagged,
            abort,
            track_positions,
            walk_skip,
            yield_flag,
            yield_min_remaining,
            force_yield_at,
        } = self;
        let mut ctx = EngineCtx {
            config,
            validator,
            telemetry,
            metrics,
            monitor,
            total_ticks,
            sink,
            durability_flagged,
            abort,
            track_positions: *track_positions,
            walk_skip: *walk_skip,
            yield_flag,
            yield_min_remaining: *yield_min_remaining,
            force_yield_at: *force_yield_at,
        };
        // Lend the network out through the blanket `Network for &mut N`
        // impl; the scanner gets it back when the transport drops.
        let mut transport = SimTransport::new(&mut *network);
        drive(&mut ctx, &mut transport, range, module, blocklist, resume)
    }
}

/// The reactor event loop, generic over the transport backend. Mirrors
/// [`Scanner::run_inner`] slot for slot; see the module docs for where
/// the two engines are allowed to differ (nowhere observable).
fn drive<T: Transport>(
    ctx: &mut EngineCtx<'_>,
    transport: &mut T,
    range: &ScanRange,
    module: &dyn ProbeModule,
    blocklist: &Blocklist,
    resume: Option<RunResume>,
) -> ScanResults {
    let mut results = ScanResults::default();
    let mut limiter = ctx.config.rate_pps.map(|pps| RateLimiter::new(pps, 64));
    let mut adaptive = if ctx.config.adaptive_rate {
        ctx.config.rate_pps.map(AdaptiveRateController::standard)
    } else {
        None
    };
    let attempts = ctx.config.probes_per_target.max(1);
    let (base, run_start_tick, mut gen, mut state, mut timers, mut now) = match resume {
        None => (
            ctx.metrics.baseline(),
            *ctx.total_ticks,
            TargetGen::with_skip(ctx.config, range, ctx.walk_skip),
            RecoveryState::default(),
            TimerHeap::new(),
            0u64,
        ),
        Some(r) => {
            results.records = r.records;
            let rs = &r.state;
            if let (Some(ctrl), Some(a)) = (adaptive.as_mut(), rs.adaptive.as_ref()) {
                ctrl.restore_state(
                    a.current_pps,
                    a.sent,
                    a.valid,
                    a.baseline_bits.map(f64::from_bits),
                );
            }
            // Checkpointed retries restore under their original sequence
            // numbers so the heap pops in the captured order; the counter
            // resumes where the killed run (either engine) left it.
            let mut timers = TimerHeap::with_next_seq(rs.retry_seq);
            for e in &rs.retries {
                timers.insert_restored(
                    e.due_tick,
                    e.seq,
                    RetryTimer {
                        target: e.target,
                        attempt: e.attempt,
                        prev_dst: e.prev_dst.into(),
                        position: 0,
                    },
                );
            }
            let mut state = RecoveryState {
                retry_seq: rs.retry_seq,
                probed: rs.probed.clone(),
                ..RecoveryState::default()
            };
            for o in &rs.outstanding {
                state.outstanding.insert(
                    o.dst.into(),
                    Outstanding {
                        target: o.target,
                        attempt: o.attempt,
                        answered: o.answered,
                        sent_tick: o.sent_tick,
                        position: 0,
                    },
                );
            }
            state.answered = rs.answered.iter().copied().collect();
            (
                MetricsBaseline::from_raw(rs.baseline),
                rs.run_start_tick,
                TargetGen::restore(ctx.config, range, rs),
                state,
                timers,
                rs.now,
            )
        }
    };
    transport.set_clock(now);
    let mut journaled = results.records.len();
    let mut tally = HotTally::default();
    let mut recv_buf: Vec<RecvEntry> = Vec::new();
    let mut send_buf: Vec<Ipv6Packet> = Vec::new();
    let mut yielding = false;

    loop {
        if ctx.abort.as_ref().is_some_and(AbortSignal::is_set) {
            checkpoint_now(
                ctx,
                transport,
                &gen,
                &state,
                &timers,
                &adaptive,
                &base,
                now,
                run_start_tick,
                &mut tally,
            );
            results.interrupted = true;
            break;
        }
        if ctx.sink.as_ref().is_some_and(|s| s.due()) {
            checkpoint_now(
                ctx,
                transport,
                &gen,
                &state,
                &timers,
                &adaptive,
                &base,
                now,
                run_start_tick,
                &mut tally,
            );
        }
        // Cooperative split point, mirroring the lock-step engine slot
        // for slot: once the gate fires, stop drawing fresh targets.
        if !yielding && yield_due(ctx, &gen) {
            yielding = true;
        }
        // One send slot: a due retransmission wins over a fresh target.
        // Due timers whose previous attempt was answered are suppressed
        // (popped and discarded), exactly like the lock-step `due_retry`.
        let job = loop {
            match timers.pop_due(now) {
                Some((_due, _seq, t)) => {
                    let unanswered = state
                        .outstanding
                        .get(&t.prev_dst)
                        .is_some_and(|o| !o.answered);
                    if unanswered {
                        break Some((t.target, t.attempt, t.position));
                    }
                }
                None => break None,
            }
        };
        let job = match job {
            Some(j) => Some(j),
            None => {
                if let Some(target) = (!yielding).then(|| gen.next_target(range)).flatten() {
                    let position = gen.consumed - 1;
                    state.probed.push(target);
                    if ctx.track_positions {
                        state.probed_positions.push(position);
                    }
                    Some((target, 0, position))
                } else if !timers.is_empty() || transport.in_flight() > 0 {
                    // Fresh walk done: drain timers and in-flight
                    // responses without sending.
                    None
                } else {
                    break;
                }
            }
        };

        if let Some((target, attempt, position)) = job {
            let dst = fill_host_bits(target, ctx.config.seed.wrapping_add(attempt as u64));
            if !blocklist.is_allowed(dst) {
                tally.blocked += 1;
                continue;
            }
            if let Some(ctrl) = adaptive.as_mut() {
                tally.paced_nanos += 1_000_000_000 / ctrl.current_pps().max(1);
                ctrl.on_probe();
            } else if let Some(limiter) = limiter.as_mut() {
                tally.paced_nanos += 1_000_000_000 / limiter.rate_pps().max(1);
            }
            let probe = module.build(ctx.config.source, dst, ctx.config.hop_limit, ctx.validator);
            tally.sent += 1;
            if attempt > 0 {
                tally.retransmits += 1;
            }
            if ctx.telemetry.tracer.is_enabled() {
                ctx.telemetry.tracer.event(
                    *ctx.total_ticks,
                    "scan.send",
                    vec![
                        ("attempt", (attempt as u64).into()),
                        ("dst", dst.to_string().into()),
                    ],
                );
            }
            state.outstanding.insert(
                dst,
                Outstanding {
                    target,
                    attempt,
                    answered: false,
                    sent_tick: now,
                    position,
                },
            );
            if attempt + 1 < attempts && timers.len() < ctx.config.max_retry_backlog {
                let backoff = ctx.config.rto_ticks << attempt;
                ctx.metrics.backoff_ticks.record(backoff);
                let deadline = now + backoff;
                timers.arm(
                    deadline,
                    RetryTimer {
                        target,
                        attempt: attempt + 1,
                        prev_dst: dst,
                        position,
                    },
                );
                transport.register_deadline(deadline);
            }
            send_buf.push(probe);
            transport.send_batch(&mut send_buf);
            // First poll of the slot: immediate replies, stamped with
            // the send tick.
            recv_buf.clear();
            transport.poll_recv(&mut recv_buf);
            absorb(
                ctx,
                &recv_buf,
                module,
                &mut state,
                &mut adaptive,
                &mut results,
                &mut tally,
                now,
            );
        }

        transport.advance(1);
        now += 1;
        *ctx.total_ticks += 1;
        if *ctx.total_ticks & 0x3ff == 0 {
            tally.flush(ctx.metrics);
        }
        if let Some(sink) = ctx.sink.as_mut() {
            sink.tick();
        }
        if let Some(monitor) = ctx.monitor.as_mut() {
            if monitor.is_due(*ctx.total_ticks) {
                tally.flush(ctx.metrics);
                monitor.poll(*ctx.total_ticks);
            }
        }
        // Second poll of the slot: replies that came due in the advance,
        // stamped with the post-advance tick.
        recv_buf.clear();
        transport.poll_recv(&mut recv_buf);
        absorb(
            ctx,
            &recv_buf,
            module,
            &mut state,
            &mut adaptive,
            &mut results,
            &mut tally,
            now,
        );
        if let Some(sink) = ctx.sink.as_mut() {
            for r in &results.records[journaled..] {
                sink.journal(r);
            }
            journaled = results.records.len();
        }
        mirror_durability(ctx);
    }

    tally.flush(ctx.metrics);
    transport.flush_telemetry();
    results.consumed = gen.consumed;
    results.yielded = yielding && !results.interrupted && gen.unconsumed() > 0;

    if results.interrupted {
        results.stats = ctx.metrics.stats_since(&base);
        return results;
    }

    let mut gave_up = 0u64;
    for (i, target) in state.probed.iter().enumerate() {
        if state.answered.contains(target) {
            continue;
        }
        if attempts > 1 {
            gave_up += 1;
        }
        if ctx.config.record_silent {
            results.silent_targets.push(*target);
            if ctx.track_positions {
                results.silent_positions.push(state.probed_positions[i]);
            }
        }
    }
    if gave_up > 0 {
        ctx.metrics.gave_up.add(gave_up);
    }
    results.stats = ctx.metrics.stats_since(&base);
    ctx.metrics.update_hit_rate();
    ctx.telemetry.tracer.span_event(
        run_start_tick,
        *ctx.total_ticks,
        "scan.run",
        vec![
            ("sent", results.stats.sent.into()),
            ("valid", results.stats.valid.into()),
        ],
    );
    if ctx.sink.is_some() {
        let snap = ctx.telemetry.registry.snapshot();
        if let Some(sink) = ctx.sink.as_mut() {
            sink.write_checkpoint(*ctx.total_ticks, snap, None);
        }
        mirror_durability(ctx);
    }
    results
}

/// The reactor twin of `Scanner::yield_due`: whether the cooperative
/// yield gate fires at this slot boundary (strict progress — never
/// before the first consumed index, never on an exhausted walk).
fn yield_due(ctx: &EngineCtx<'_>, gen: &TargetGen) -> bool {
    if gen.consumed == 0 {
        return false;
    }
    let remaining = gen.unconsumed();
    if remaining == 0 {
        return false;
    }
    if ctx.force_yield_at.is_some_and(|at| gen.consumed >= at) {
        return true;
    }
    remaining >= ctx.yield_min_remaining
        && ctx
            .yield_flag
            .as_ref()
            .is_some_and(|f| f.load(std::sync::atomic::Ordering::Relaxed))
}

/// Classifies a poll batch. The reactor twin of [`Scanner::absorb`],
/// except RTTs and trace stamps come from each entry's arrival tick —
/// which at both poll sites equals `now`, reproducing the lock-step
/// engine's values exactly.
#[allow(clippy::too_many_arguments)]
fn absorb(
    ctx: &mut EngineCtx<'_>,
    batch: &[RecvEntry],
    module: &dyn ProbeModule,
    state: &mut RecoveryState,
    adaptive: &mut Option<AdaptiveRateController>,
    results: &mut ScanResults,
    tally: &mut HotTally,
    now: u64,
) {
    // Trace events are stamped with the *lifetime* tick: translate each
    // entry's run-local arrival tick by the current offset.
    let run_offset = ctx.total_ticks.wrapping_sub(now);
    for entry in batch {
        let resp = &entry.packet;
        tally.received += 1;
        match module.classify(resp, ctx.validator) {
            ProbeResult::Invalid => tally.invalid += 1,
            result => {
                let probe_dst = probe_dst_of(resp);
                let Some(out) = state.outstanding.get_mut(&probe_dst) else {
                    tally.invalid += 1;
                    continue;
                };
                let confidence = match out.attempt {
                    0 => Confidence::FirstTry,
                    n => Confidence::Retry(n),
                };
                let first_answer = !out.answered;
                out.answered = true;
                if first_answer
                    && out.attempt > 0
                    && matches!(
                        result,
                        ProbeResult::Unreachable { .. } | ProbeResult::TimeExceeded
                    )
                {
                    ctx.metrics.rate_limited_suspected.inc();
                }
                tally.valid += 1;
                let rtt = entry.tick.saturating_sub(out.sent_tick);
                if rtt == 0 {
                    tally.rtt_zero += 1;
                } else {
                    ctx.metrics.rtt_ticks.record(rtt);
                }
                if ctx.telemetry.tracer.is_enabled() {
                    ctx.telemetry.tracer.event(
                        run_offset.wrapping_add(entry.tick),
                        "scan.recv",
                        vec![
                            ("rtt_ticks", rtt.into()),
                            ("attempt", (out.attempt as u64).into()),
                        ],
                    );
                }
                if let Some(ctrl) = adaptive.as_mut() {
                    ctrl.on_valid();
                }
                state.answered.insert(out.target);
                if ctx.track_positions {
                    results.record_positions.push(out.position);
                }
                results.records.push(ScanRecord {
                    target: out.target,
                    probe_dst,
                    responder: resp.src,
                    result,
                    confidence,
                });
            }
        }
    }
}

/// Mid-range checkpoint, reactor edition: retries are captured from the
/// timer heap (sorted to the same canonical `(due_tick, seq)` order the
/// lock-step engine writes) and the in-flight gate includes the
/// transport's receive queue.
#[allow(clippy::too_many_arguments)]
fn checkpoint_now<T: Transport>(
    ctx: &mut EngineCtx<'_>,
    transport: &mut T,
    gen: &TargetGen,
    state: &RecoveryState,
    timers: &TimerHeap<RetryTimer>,
    adaptive: &Option<AdaptiveRateController>,
    base: &MetricsBaseline,
    now: u64,
    run_start_tick: u64,
    tally: &mut HotTally,
) {
    if ctx.sink.is_none() || transport.in_flight() > 0 {
        return;
    }
    tally.flush(ctx.metrics);
    transport.flush_telemetry();
    let snap = ctx.telemetry.registry.snapshot();
    let (cursor, remaining, pending_indices) = gen.capture();
    let (outstanding, _, answered) = state.capture();
    let mut retries: Vec<xmap_state::RetryEntryState> = timers
        .iter()
        .map(|(due_tick, seq, t)| xmap_state::RetryEntryState {
            due_tick,
            seq,
            target: t.target,
            attempt: t.attempt,
            prev_dst: t.prev_dst.bits(),
        })
        .collect();
    retries.sort_by_key(|r| (r.due_tick, r.seq));
    let sink = ctx.sink.as_mut().expect("sink presence checked above");
    let run = RunState {
        now,
        run_start_tick,
        run_wal_start: sink.run_wal_start(),
        cursor,
        remaining,
        pending_indices,
        outstanding,
        retries,
        retry_seq: timers.next_seq(),
        answered,
        probed: state.probed.clone(),
        adaptive: adaptive.as_ref().map(|c| {
            let (current_pps, sent, valid, baseline) = c.checkpoint_state();
            AdaptiveState {
                current_pps,
                sent,
                valid,
                baseline_bits: baseline.map(f64::to_bits),
            }
        }),
        baseline: base.to_raw(),
    };
    sink.write_checkpoint(*ctx.total_ticks, snap, Some(run));
}

/// Mirrors sink degradation into the `state.durability_degraded` gauge
/// on transitions (the twin of [`Scanner::mirror_durability`]).
fn mirror_durability(ctx: &mut EngineCtx<'_>) {
    let degraded = ctx.sink.as_ref().is_some_and(RunSink::is_degraded);
    if degraded != *ctx.durability_flagged {
        *ctx.durability_flagged = degraded;
        ctx.telemetry
            .registry
            .gauge(names::DURABILITY_DEGRADED)
            .set(degraded as u64);
    }
}
