//! Public chunked index-walk streaming.
//!
//! The scanner's hot loop fills fixed-size index chunks from its
//! internal cursor ([`ShardIter::fill`], [`FeistelPermutation::fill`])
//! instead of materializing per-target state. [`IndexWalk`] exposes the
//! same discipline to external drivers — the loopscan surveys' strided
//! walks and the adaptive engine's per-node permutation draws — so
//! every target loop in the workspace streams through one chunked,
//! zero-allocation path.

use crate::cyclic::ShardIter;
use crate::feistel::FeistelPermutation;

/// A resumable stream of scan-space indices, filled chunk by chunk.
///
/// # Examples
///
/// ```
/// use xmap::walk::IndexWalk;
///
/// // The strided walk 0, 3, 6, 9 — chunked through a 3-slot buffer.
/// let mut walk = IndexWalk::strided(0, 3, 4);
/// let mut buf = [0u64; 3];
/// assert_eq!(walk.fill(&mut buf), 3);
/// assert_eq!(buf, [0, 3, 6]);
/// assert_eq!(walk.fill(&mut buf), 1);
/// assert_eq!(buf[0], 9);
/// assert_eq!(walk.fill(&mut buf), 0);
/// ```
#[derive(Debug, Clone)]
pub enum IndexWalk {
    /// Arithmetic progression `start, start + stride, …` of `remaining`
    /// indices — the survey scanners' deterministic coarse walk.
    Strided {
        /// Next index to emit.
        next: u64,
        /// Step between indices.
        stride: u64,
        /// Indices left to emit.
        remaining: u64,
    },
    /// A Feistel permutation evaluated at positions `next_pos,
    /// next_pos + stride, …` up to the permutation length — the
    /// pseudorandom without-replacement walk of the scanner and the
    /// adaptive engine's per-node sampler.
    Feistel {
        /// The permutation over the index space.
        perm: FeistelPermutation,
        /// Next position to evaluate.
        next_pos: u64,
        /// Step between positions.
        stride: u64,
    },
    /// A cyclic-group shard walk (the classic ZMap multiplicative
    /// cycle).
    Cyclic(ShardIter),
}

impl IndexWalk {
    /// A strided walk emitting `count` indices from `start` in steps of
    /// `stride`.
    pub fn strided(start: u64, stride: u64, count: u64) -> Self {
        assert!(stride > 0, "stride must be positive");
        IndexWalk::Strided {
            next: start,
            stride,
            remaining: count,
        }
    }

    /// A permuted walk from position `first_pos`, striding by 1.
    pub fn permuted(perm: FeistelPermutation, first_pos: u64) -> Self {
        IndexWalk::Feistel {
            perm,
            next_pos: first_pos,
            stride: 1,
        }
    }

    /// Fills `out` with the next indices, returning how many were
    /// produced (less than `out.len()` only at the end of the walk).
    pub fn fill(&mut self, out: &mut [u64]) -> usize {
        match self {
            IndexWalk::Strided {
                next,
                stride,
                remaining,
            } => {
                let n = (*remaining).min(out.len() as u64) as usize;
                for slot in out.iter_mut().take(n) {
                    *slot = *next;
                    // The final advance may sit at the space boundary;
                    // saturate instead of wrapping.
                    *next = next.saturating_add(*stride);
                }
                *remaining -= n as u64;
                n
            }
            IndexWalk::Feistel {
                perm,
                next_pos,
                stride,
            } => {
                let n = perm.fill(*next_pos, *stride, out);
                *next_pos = next_pos.saturating_add(n as u64 * *stride);
                n
            }
            IndexWalk::Cyclic(iter) => iter.fill(out),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strided_walk_matches_naive_loop() {
        let space = 1u64 << 16;
        let step = space / 100;
        let mut expect = Vec::new();
        for k in 0..100u64 {
            expect.push((k * step) % space);
        }
        let mut walk = IndexWalk::strided(0, step, 100);
        let mut got = Vec::new();
        let mut buf = [0u64; 7];
        loop {
            let n = walk.fill(&mut buf);
            if n == 0 {
                break;
            }
            got.extend_from_slice(&buf[..n]);
        }
        assert_eq!(got, expect);
    }

    #[test]
    fn permuted_walk_matches_index_calls() {
        let perm = FeistelPermutation::new(1000, 42);
        let expect: Vec<u64> = (0..1000).map(|i| perm.index(i)).collect();
        let mut walk = IndexWalk::permuted(FeistelPermutation::new(1000, 42), 0);
        let mut got = Vec::new();
        let mut buf = [0u64; 64];
        loop {
            let n = walk.fill(&mut buf);
            if n == 0 {
                break;
            }
            got.extend_from_slice(&buf[..n]);
        }
        assert_eq!(got, expect);
    }

    #[test]
    fn permuted_walk_resumes_mid_stream() {
        let perm = FeistelPermutation::new(500, 9);
        let mut all = IndexWalk::permuted(perm, 0);
        let mut buf = [0u64; 100];
        assert_eq!(all.fill(&mut buf), 100);
        let head: Vec<u64> = buf.to_vec();
        // A fresh walk from position 50 reproduces the tail.
        let mut resumed = IndexWalk::permuted(perm, 50);
        let mut buf2 = [0u64; 50];
        assert_eq!(resumed.fill(&mut buf2), 50);
        assert_eq!(&head[50..], &buf2[..]);
    }
}
