//! Target specification: scan ranges + IID fill.
//!
//! A scan target is an address *sub-prefix* (e.g. one /64 of an ISP block);
//! the packet needs a full 128-bit destination. Per the methodology, the
//! scanner fills the remaining bits with a pseudorandom interface
//! identifier — hitting a real host is astronomically unlikely, so the
//! last-hop periphery answers instead. The fill is keyed and deterministic
//! per prefix, so re-probes and multi-module scans target the same address.

use xmap_addr::{Ip6, Prefix, ScanRange};

/// Deterministic pseudorandom fill for the host bits of a target prefix.
///
/// # Examples
///
/// ```
/// use xmap::target::fill_host_bits;
/// use xmap_addr::Prefix;
///
/// # fn main() -> Result<(), xmap_addr::ParseAddrError> {
/// let prefix: Prefix = "2001:db8:1:2::/64".parse()?;
/// let a = fill_host_bits(prefix, 42);
/// assert!(prefix.contains(a));
/// assert_eq!(a, fill_host_bits(prefix, 42)); // stable per (prefix, key)
/// assert_ne!(a, fill_host_bits(prefix, 43)); // key-sensitive
/// # Ok(())
/// # }
/// ```
pub fn fill_host_bits(prefix: Prefix, key: u64) -> Ip6 {
    if prefix.len() >= 128 {
        return prefix.addr();
    }
    let mut h = key ^ 0xc2b2_ae3d_27d4_eb4f;
    for part in [
        prefix.addr().bits() as u64,
        (prefix.addr().bits() >> 64) as u64,
        prefix.len() as u64,
    ] {
        h ^= part;
        h = h.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(29);
        h ^= h >> 32;
    }
    let host_bits = 128 - prefix.len() as u32;
    // Up to 64 pseudorandom bits in the lowest positions; prefixes shorter
    // than /64 still only randomize the IID half (bits 64..128 get `h`,
    // bits prefix..64 stay zero), matching the paper's "prefix + random
    // IID" construction.
    let fill = if host_bits >= 64 {
        h as u128
    } else {
        (h as u128) & ((1u128 << host_bits) - 1)
    };
    // Avoid the subnet-router anycast address (all-zero IID).
    let fill = if fill == 0 { 1 } else { fill };
    Ip6::new(prefix.addr().bits() | fill)
}

/// A set of scan ranges probed as one job.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TargetSpec {
    ranges: Vec<ScanRange>,
}

impl TargetSpec {
    /// Creates an empty spec.
    pub fn new() -> Self {
        TargetSpec::default()
    }

    /// Adds a range.
    pub fn push(&mut self, range: ScanRange) {
        self.ranges.push(range);
    }

    /// Parses a whitespace/comma-separated list of range expressions like
    /// `2001:db8::/32-64, 2405:200::/32`.
    ///
    /// # Errors
    ///
    /// Returns the first parse failure.
    pub fn parse(spec: &str) -> Result<Self, xmap_addr::ParseAddrError> {
        let mut out = TargetSpec::new();
        for token in spec.split([',', ' ', '\n', '\t']).filter(|t| !t.is_empty()) {
            out.push(token.parse()?);
        }
        Ok(out)
    }

    /// The ranges in insertion order.
    pub fn ranges(&self) -> &[ScanRange] {
        &self.ranges
    }

    /// Total number of target sub-prefixes across all ranges.
    pub fn total_targets(&self) -> u128 {
        self.ranges.iter().map(|r| r.space_size()).sum()
    }
}

impl FromIterator<ScanRange> for TargetSpec {
    fn from_iter<T: IntoIterator<Item = ScanRange>>(iter: T) -> Self {
        TargetSpec {
            ranges: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_stays_inside_prefix() {
        for s in [
            "2001:db8::/32",
            "2001:db8:1:2::/64",
            "2001:db8::/60",
            "2001:db8::1/128",
        ] {
            let p: Prefix = s.parse().unwrap();
            let a = fill_host_bits(p, 7);
            assert!(p.contains(a), "{s}");
        }
    }

    #[test]
    fn fill_is_never_anycast() {
        // Even adversarial keys never produce the all-zero host part.
        let p: Prefix = "2001:db8:1:2::/64".parse().unwrap();
        for key in 0..1000 {
            assert_ne!(fill_host_bits(p, key), p.addr());
        }
    }

    #[test]
    fn fill_for_128bit_prefix_is_identity() {
        let p: Prefix = "2001:db8::42/128".parse().unwrap();
        assert_eq!(fill_host_bits(p, 1), p.addr());
    }

    #[test]
    fn sub64_prefix_randomizes_iid_only() {
        let p: Prefix = "2001:db8:0:40::/60".parse().unwrap();
        let a = fill_host_bits(p, 9);
        // Bits 60..64 (the subnet nibble) stay zero: the probe targets the
        // first /64 of the /60 with a random IID.
        assert_eq!(a.bit_slice(60, 64), 0);
        assert_ne!(a.iid(), 0);
    }

    #[test]
    fn spec_parsing() {
        let spec = TargetSpec::parse("2001:db8::/32-64, 2405:200::/32\n2600::/24-56").unwrap();
        assert_eq!(spec.ranges().len(), 3);
        assert_eq!(spec.total_targets(), 3 * (1u128 << 32));
        assert!(TargetSpec::parse("nonsense").is_err());
        assert_eq!(TargetSpec::parse("").unwrap().ranges().len(), 0);
    }
}
