//! The parallel shard executor: XMap's multi-threaded send loop.
//!
//! The C scanner reaches wire rate by splitting the cyclic permutation
//! into disjoint shards and driving one send thread per shard. This
//! module is that executor for the reproduction: [`ParallelScanner`]
//! nests `n` worker shards *inside* the scanner's configured `(shard,
//! shards)` slot, runs one [`Scanner`] per worker under
//! [`std::thread::scope`], and merges results and telemetry
//! deterministically, so a seeded N-worker run is byte-identical to the
//! 1-worker run.
//!
//! # Shard → worker mapping
//!
//! A scanner instance owns the walk positions `shard, shard + shards,
//! shard + 2·shards, …` of the permutation. Worker `w` of `n` takes every
//! `n`-th of those, which is itself a shard: `(shard + w·shards)` of
//! `(shards·n)` total. The union over workers is exactly the instance's
//! target set, each target owned by exactly one worker. A `max_targets`
//! cap splits the same way — instance walk position `j` belongs to worker
//! `j mod n`, so worker `w` gets `ceil((cap − w) / n)` of the first `cap`
//! positions.
//!
//! # Why determinism survives
//!
//! * **Disjoint targets, pure responses** — each worker probes a disjoint
//!   target set, and the netsim world derives every response from
//!   `(probe, world seed)`, so per-worker world replicas answer exactly
//!   as one shared world would.
//! * **Per-worker everything** — each worker has its own retry queue,
//!   validator (same seed ⇒ same cookies), AIMD controller slice, and
//!   telemetry registry; nothing is shared, so scheduling cannot leak
//!   between workers.
//! * **Canonical merge order** — workers are joined in worker order;
//!   records are then stably sorted by target, which equals permutation-
//!   index order (`ScanRange::nth` is monotone), the same order
//!   `run(1 worker)` produces after its own sort. Counters merge by
//!   addition ([`ScanStats::merge`], [`Snapshot::merge`]); the one
//!   derived gauge (`scan.hit_rate_ppm`) is recomputed from merged
//!   totals.
//!
//! The byte-identity guarantee assumes clock-independent worlds (the
//! default: [`FaultPlan::none`]'s limiter and loss draws key on addresses,
//! not ticks). Time-keyed fault plans (jitter, flaky windows) and
//! `netsim.ticks` under `probes_per_target > 1` can shift per-worker
//! drain timing; `scan.*` results remain a set-equal merge even then.
//!
//! [`FaultPlan::none`]: xmap_netsim::FaultPlan::none

use std::collections::VecDeque;
use std::sync::Mutex;

use xmap_addr::ScanRange;
use xmap_netsim::packet::Network;
use xmap_telemetry::{Snapshot, Telemetry};

use crate::blocklist::Blocklist;
use crate::probe::ProbeModule;
use crate::scanner::{ScanConfig, ScanResults, Scanner};
use crate::telemetry::names;

/// A sharded, multi-threaded scan executor over per-worker [`Scanner`]s.
///
/// # Examples
///
/// ```
/// use xmap::{Blocklist, IcmpEchoProbe, ParallelScanner, ScanConfig};
/// use xmap_netsim::World;
///
/// # fn main() -> Result<(), xmap_addr::ParseAddrError> {
/// let config = ScanConfig { max_targets: Some(2000), ..Default::default() };
/// let mut scanner = ParallelScanner::new(4, config, |_, telemetry| {
///     let mut world = World::new(7);
///     world.set_telemetry(telemetry);
///     world
/// });
/// let results = scanner.run(&"2405:200::/32-64".parse()?, &IcmpEchoProbe, &Blocklist::allow_all());
/// assert_eq!(results.stats.sent, 2000); // same totals as a 1-worker run
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ParallelScanner<N> {
    workers: Vec<Scanner<N>>,
}

impl<N: Network + Send> ParallelScanner<N> {
    /// Builds an executor with `workers` worker scanners nested inside
    /// `base`'s shard slot. `make_network(w, telemetry)` constructs worker
    /// `w`'s network replica; implementations that mirror metrics (e.g.
    /// [`World::set_telemetry`]) should bind the passed per-worker bundle
    /// so [`snapshot`](Self::snapshot) sees their counters.
    ///
    /// Every worker must be built over the same world seed for the
    /// determinism guarantee to hold (disjoint shards make the replicas
    /// interchangeable with one shared world).
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`, if `base`'s shard config is invalid, or
    /// if `base.shards * workers` overflows.
    ///
    /// [`World::set_telemetry`]: xmap_netsim::World::set_telemetry
    pub fn new(
        workers: usize,
        base: ScanConfig,
        make_network: impl FnMut(usize, &Telemetry) -> N,
    ) -> Self {
        Self::build(workers, base, |_| Telemetry::new(), make_network)
    }

    /// Like [`new`](Self::new), but every worker's telemetry bundle has
    /// its event tracer enabled, so callers can export one NDJSON ring
    /// per worker after the run (via
    /// [`worker_telemetry`](Self::worker_telemetry)).
    pub fn new_traced(
        workers: usize,
        base: ScanConfig,
        make_network: impl FnMut(usize, &Telemetry) -> N,
    ) -> Self {
        Self::build(workers, base, |_| Telemetry::with_tracing(), make_network)
    }

    fn build(
        workers: usize,
        base: ScanConfig,
        mut make_telemetry: impl FnMut(usize) -> Telemetry,
        mut make_network: impl FnMut(usize, &Telemetry) -> N,
    ) -> Self {
        assert!(workers > 0, "need at least one worker");
        assert!(base.shards > 0, "shards must be nonzero");
        assert!(base.shard < base.shards, "shard index out of range");
        let shards_total = base
            .shards
            .checked_mul(workers as u64)
            .expect("shards * workers overflows");
        let workers = (0..workers)
            .map(|w| {
                let telemetry = make_telemetry(w);
                let network = make_network(w, &telemetry);
                let config = ScanConfig {
                    shard: base.shard + w as u64 * base.shards,
                    shards: shards_total,
                    max_targets: base
                        .max_targets
                        .map(|cap| worker_cap(cap, w as u64, workers as u64)),
                    ..base.clone()
                };
                Scanner::with_telemetry(network, config, telemetry)
            })
            .collect();
        ParallelScanner { workers }
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Worker `w`'s effective configuration (nested shard slot and cap).
    pub fn worker_config(&self, w: usize) -> &ScanConfig {
        self.workers[w].config()
    }

    /// Worker `w`'s telemetry bundle.
    pub fn worker_telemetry(&self, w: usize) -> &Telemetry {
        self.workers[w].telemetry()
    }

    /// Mutable access to worker `w`'s scanner (used by the checkpoint
    /// driver to attach sinks and restore per-worker state).
    pub fn worker_mut(&mut self, w: usize) -> &mut Scanner<N> {
        &mut self.workers[w]
    }

    /// Scans one range across all workers and merges deterministically:
    /// records sorted by target (= permutation-index order), counters
    /// summed. See the module docs for why the result is byte-identical
    /// to a 1-worker run of the same seed.
    pub fn run(
        &mut self,
        range: &ScanRange,
        module: &(dyn ProbeModule + Sync),
        blocklist: &Blocklist,
    ) -> ScanResults {
        let outs: Vec<ScanResults> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .workers
                .iter_mut()
                .map(|worker| scope.spawn(move || worker.run(range, module, blocklist)))
                .collect();
            // Joining in worker order keeps the fold deterministic.
            handles
                .into_iter()
                .map(|h| h.join().expect("scan worker panicked"))
                .collect()
        });
        let mut merged = ScanResults::default();
        for one in outs {
            merged.stats.merge(&one.stats);
            merged.records.extend(one.records);
            merged.silent_targets.extend(one.silent_targets);
        }
        // Stable sort: a target's own records (e.g. fault-plan duplicates)
        // keep their single worker's arrival order.
        merged.records.sort_by_key(|r| r.target);
        merged.silent_targets.sort_unstable();
        merged
    }

    /// Scans several ranges, merging results range by range (mirrors
    /// [`Scanner::run_all`]: per-range canonical order, concatenated).
    pub fn run_all(
        &mut self,
        ranges: &[ScanRange],
        module: &(dyn ProbeModule + Sync),
        blocklist: &Blocklist,
    ) -> ScanResults {
        let mut all = ScanResults::default();
        for r in ranges {
            let one = self.run(r, module, blocklist);
            all.stats.merge(&one.stats);
            all.records.extend(one.records);
            all.silent_targets.extend(one.silent_targets);
        }
        all
    }

    /// Scans several ranges with an explicit per-worker [`RangeMode`] for
    /// each range — the checkpoint/resume execution path. `modes[w][ri]`
    /// tells worker `w` what to do with range `ri`: scan it fresh, resume
    /// it mid-range, or contribute journal-replayed records without
    /// sending. A worker that reports an interrupted range stops before
    /// the following ranges (its checkpoint already covers everything it
    /// did).
    ///
    /// Merging reproduces [`run_all`](Self::run_all)'s canonical order
    /// exactly: per range, records across workers are sorted by target and
    /// silent targets sorted; ranges are then concatenated in order. The
    /// merged `interrupted` flag is the OR across workers.
    ///
    /// # Panics
    ///
    /// Panics if `modes` is not `workers × ranges.len()` in shape.
    pub fn run_with_modes(
        &mut self,
        ranges: &[ScanRange],
        module: &(dyn ProbeModule + Sync),
        blocklist: &Blocklist,
        modes: Vec<Vec<crate::checkpoint::RangeMode>>,
    ) -> ScanResults {
        assert_eq!(modes.len(), self.workers.len(), "one mode list per worker");
        for m in &modes {
            assert_eq!(m.len(), ranges.len(), "one mode per range");
        }
        // Each worker returns its per-range results (ending early if
        // interrupted); merging happens range by range below.
        let outs: Vec<Vec<ScanResults>> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .workers
                .iter_mut()
                .zip(modes)
                .map(|(worker, worker_modes)| {
                    scope.spawn(move || {
                        let mut per_range = Vec::with_capacity(worker_modes.len());
                        for (ri, (range, mode)) in ranges.iter().zip(worker_modes).enumerate() {
                            let one =
                                worker.run_checkpointed(ri as u32, range, module, blocklist, mode);
                            let interrupted = one.interrupted;
                            per_range.push(one);
                            if interrupted {
                                break;
                            }
                        }
                        per_range
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("scan worker panicked"))
                .collect()
        });
        let mut merged = ScanResults::default();
        for ri in 0..ranges.len() {
            let mut bucket = ScanResults::default();
            for worker_out in &outs {
                if let Some(one) = worker_out.get(ri) {
                    bucket.stats.merge(&one.stats);
                    bucket.records.extend(one.records.iter().cloned());
                    bucket
                        .silent_targets
                        .extend(one.silent_targets.iter().copied());
                    bucket.interrupted |= one.interrupted;
                }
            }
            bucket.records.sort_by_key(|r| r.target);
            bucket.silent_targets.sort_unstable();
            merged.stats.merge(&bucket.stats);
            merged.records.extend(bucket.records);
            merged.silent_targets.extend(bucket.silent_targets);
            merged.interrupted |= bucket.interrupted;
        }
        merged
    }

    /// The merged telemetry snapshot across all workers: counters and
    /// histograms sum; the derived `scan.hit_rate_ppm` gauge is recomputed
    /// from the merged totals (per-worker values are worker-local rates).
    pub fn snapshot(&self) -> Snapshot {
        merge_worker_snapshots(
            self.workers
                .iter()
                .map(|w| w.telemetry().registry.snapshot()),
        )
    }
}

/// Merges per-worker registry snapshots into one export: counters and
/// histograms sum ([`Snapshot::merge`]); the derived `scan.hit_rate_ppm`
/// gauge is recomputed from the merged totals, since per-worker values
/// are worker-local rates. Shared by [`ParallelScanner::snapshot`] and
/// the campaign-level executor in `xmap-periphery`.
pub fn merge_worker_snapshots(snaps: impl IntoIterator<Item = Snapshot>) -> Snapshot {
    let mut merged = Snapshot::default();
    for snap in snaps {
        merged.merge(&snap);
    }
    let sent = merged.counter(names::SENT);
    let valid = merged.counter(names::VALID);
    if let Some(ppm) = valid.saturating_mul(1_000_000).checked_div(sent) {
        merged.gauges.insert(names::HIT_RATE_PPM.to_owned(), ppm);
    }
    merged
}

/// A deque-based work-stealing scheduler over item indices.
///
/// Built for workloads whose items differ wildly in cost (campaign
/// blocks: some scan 2³² spaces under tight ICMPv6 token buckets, others
/// are small and fast) — static assignment would leave the fast workers
/// idle behind the slowest block. Each worker owns a deque seeded
/// round-robin; it pops its own queue from the *front* and, when empty,
/// steals from a victim's *back*, so steals take the work its owner
/// would reach last.
///
/// Scheduling order is nondeterministic under contention by design; the
/// callers that need determinism tag every item's result with its index
/// and merge in index order, which makes the schedule unobservable.
///
/// `std`-only: a `Mutex<VecDeque>` per worker. Item counts here are
/// tiny (15 campaign blocks), so lock contention is irrelevant next to
/// the seconds-long items themselves.
#[derive(Debug)]
pub struct StealQueue {
    deques: Vec<Mutex<VecDeque<usize>>>,
}

impl StealQueue {
    /// Distributes `items` indices (0-based) round-robin over `workers`
    /// deques: worker `w` is seeded with `w, w + workers, w + 2·workers,
    /// …`, mirroring the shard→worker mapping of [`ParallelScanner`].
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn new(items: usize, workers: usize) -> Self {
        assert!(workers > 0, "need at least one worker");
        let mut deques: Vec<VecDeque<usize>> = (0..workers).map(|_| VecDeque::new()).collect();
        for item in 0..items {
            deques[item % workers].push_back(item);
        }
        StealQueue {
            deques: deques.into_iter().map(Mutex::new).collect(),
        }
    }

    /// Takes the next item for `worker`: its own front, else a steal
    /// from the back of the first non-empty victim (scanning `worker +
    /// 1, worker + 2, …` cyclically). `None` once every deque is empty.
    pub fn pop(&self, worker: usize) -> Option<usize> {
        assert!(worker < self.deques.len(), "worker index out of range");
        if let Some(item) = self.deques[worker]
            .lock()
            .expect("steal queue poisoned")
            .pop_front()
        {
            return Some(item);
        }
        let n = self.deques.len();
        for offset in 1..n {
            let victim = (worker + offset) % n;
            if let Some(item) = self.deques[victim]
                .lock()
                .expect("steal queue poisoned")
                .pop_back()
            {
                return Some(item);
            }
        }
        None
    }

    /// Number of worker deques.
    pub fn workers(&self) -> usize {
        self.deques.len()
    }

    /// Items not yet popped, across all deques.
    pub fn remaining(&self) -> usize {
        self.deques
            .iter()
            .map(|d| d.lock().expect("steal queue poisoned").len())
            .sum()
    }
}

/// How many of the first `cap` instance walk positions worker `w` of `n`
/// owns (position `j` goes to worker `j mod n`).
fn worker_cap(cap: u64, w: u64, n: u64) -> u64 {
    if cap <= w {
        0
    } else {
        (cap - w).div_ceil(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::IcmpEchoProbe;
    use xmap_netsim::World;

    fn range() -> ScanRange {
        "2405:200::/32-64".parse().unwrap()
    }

    fn base_config(cap: u64) -> ScanConfig {
        ScanConfig {
            seed: 77,
            max_targets: Some(cap),
            ..Default::default()
        }
    }

    fn parallel(workers: usize, cap: u64) -> ParallelScanner<World> {
        ParallelScanner::new(workers, base_config(cap), |_, telemetry| {
            let mut world = World::new(5);
            world.set_telemetry(telemetry);
            world
        })
    }

    #[test]
    fn worker_caps_partition_exactly() {
        for cap in [0u64, 1, 5, 4096, 4097] {
            for n in [1u64, 2, 3, 4, 7] {
                let total: u64 = (0..n).map(|w| worker_cap(cap, w, n)).sum();
                assert_eq!(total, cap, "cap {cap} workers {n}");
            }
        }
    }

    #[test]
    fn worker_configs_nest_shards() {
        let base = ScanConfig {
            shard: 1,
            shards: 3,
            max_targets: Some(7),
            ..Default::default()
        };
        let ps = ParallelScanner::new(2, base, |_, _| World::new(5));
        assert_eq!(ps.workers(), 2);
        let w0 = ps.worker_config(0);
        let w1 = ps.worker_config(1);
        assert_eq!((w0.shard, w0.shards, w0.max_targets), (1, 6, Some(4)));
        assert_eq!((w1.shard, w1.shards, w1.max_targets), (4, 6, Some(3)));
    }

    #[test]
    fn sharded_runs_match_across_worker_counts() {
        let run = |workers: usize| {
            let mut ps = parallel(workers, 2048);
            let results = ps.run(&range(), &IcmpEchoProbe, &Blocklist::allow_all());
            (results, ps.snapshot())
        };
        let (r1, s1) = run(1);
        let (r2, s2) = run(2);
        let (r4, s4) = run(4);
        assert_eq!(r1.stats.sent, 2048);
        assert!(!r1.records.is_empty());
        assert_eq!(r1.records, r2.records);
        assert_eq!(r1.records, r4.records);
        assert_eq!(r1.stats, r2.stats);
        assert_eq!(r1.stats, r4.stats);
        assert_eq!(s1, s2);
        assert_eq!(s1, s4);
    }

    #[test]
    fn single_worker_matches_plain_scanner_totals() {
        let mut ps = parallel(1, 512);
        let merged = ps.run(&range(), &IcmpEchoProbe, &Blocklist::allow_all());
        let mut world = World::new(5);
        let telemetry = Telemetry::new();
        world.set_telemetry(&telemetry);
        let mut plain = Scanner::with_telemetry(world, base_config(512), telemetry);
        let serial = plain.run(&range(), &IcmpEchoProbe, &Blocklist::allow_all());
        assert_eq!(merged.stats, serial.stats);
        let mut serial_sorted = serial.records;
        serial_sorted.sort_by_key(|r| r.target);
        assert_eq!(merged.records, serial_sorted);
        assert_eq!(ps.snapshot(), plain.telemetry().registry.snapshot());
    }

    #[test]
    fn more_workers_than_targets() {
        let mut ps = parallel(4, 2);
        let results = ps.run(&range(), &IcmpEchoProbe, &Blocklist::allow_all());
        assert_eq!(results.stats.sent, 2);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let _ = ParallelScanner::new(0, ScanConfig::default(), |_, _| World::new(5));
    }

    #[test]
    fn traced_workers_record_events() {
        let mut ps = ParallelScanner::new_traced(2, base_config(64), |_, telemetry| {
            let mut world = World::new(5);
            world.set_telemetry(telemetry);
            world
        });
        let _ = ps.run(&range(), &IcmpEchoProbe, &Blocklist::allow_all());
        for w in 0..2 {
            assert!(ps.worker_telemetry(w).tracer.is_enabled());
            assert!(!ps.worker_telemetry(w).tracer.to_ndjson().is_empty());
        }
    }

    #[test]
    fn steal_queue_drains_every_item_exactly_once() {
        let q = StealQueue::new(15, 4);
        assert_eq!(q.workers(), 4);
        assert_eq!(q.remaining(), 15);
        let mut seen = std::collections::BTreeSet::new();
        // Worker 3 drains everything: its own deque, then steals.
        while let Some(item) = q.pop(3) {
            assert!(seen.insert(item), "item {item} scheduled twice");
        }
        assert_eq!(seen.len(), 15);
        assert_eq!(q.remaining(), 0);
        assert_eq!(q.pop(0), None);
    }

    #[test]
    fn steal_queue_owner_pops_front_thief_steals_back() {
        let q = StealQueue::new(8, 2);
        // Worker 0 owns 0,2,4,6; worker 1 owns 1,3,5,7.
        assert_eq!(q.pop(0), Some(0));
        // Exhaust worker 1's own deque, front first.
        assert_eq!(q.pop(1), Some(1));
        assert_eq!(q.pop(1), Some(3));
        assert_eq!(q.pop(1), Some(5));
        assert_eq!(q.pop(1), Some(7));
        // Now worker 1 steals from worker 0's *back*.
        assert_eq!(q.pop(1), Some(6));
        assert_eq!(q.pop(0), Some(2));
    }

    #[test]
    fn steal_queue_under_concurrency_partitions_items() {
        let q = StealQueue::new(100, 4);
        let counts: Vec<usize> = std::thread::scope(|scope| {
            (0..4)
                .map(|w| {
                    let q = &q;
                    scope.spawn(move || {
                        let mut taken = 0;
                        while q.pop(w).is_some() {
                            taken += 1;
                        }
                        taken
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        });
        assert_eq!(counts.iter().sum::<usize>(), 100);
    }
}
