//! The parallel shard executor: XMap's multi-threaded send loop.
//!
//! The C scanner reaches wire rate by splitting the cyclic permutation
//! into disjoint shards and driving one send thread per shard. This
//! module is that executor for the reproduction: [`ParallelScanner`]
//! nests `n` worker shards *inside* the scanner's configured `(shard,
//! shards)` slot, runs one [`Scanner`] per worker under
//! [`std::thread::scope`], and merges results and telemetry
//! deterministically, so a seeded N-worker run is byte-identical to the
//! 1-worker run.
//!
//! # Shard → worker mapping
//!
//! A scanner instance owns the walk positions `shard, shard + shards,
//! shard + 2·shards, …` of the permutation. Worker `w` of `n` takes every
//! `n`-th of those, which is itself a shard: `(shard + w·shards)` of
//! `(shards·n)` total. The union over workers is exactly the instance's
//! target set, each target owned by exactly one worker. A `max_targets`
//! cap splits the same way — instance walk position `j` belongs to worker
//! `j mod n`, so worker `w` gets `ceil((cap − w) / n)` of the first `cap`
//! positions.
//!
//! # Why determinism survives
//!
//! * **Disjoint targets, pure responses** — each worker probes a disjoint
//!   target set, and the netsim world derives every response from
//!   `(probe, world seed)`, so per-worker world replicas answer exactly
//!   as one shared world would.
//! * **Per-worker everything** — each worker has its own retry queue,
//!   validator (same seed ⇒ same cookies), AIMD controller slice, and
//!   telemetry registry; nothing is shared, so scheduling cannot leak
//!   between workers.
//! * **Canonical merge order** — workers are joined in worker order;
//!   records are then stably sorted by target, which equals permutation-
//!   index order (`ScanRange::nth` is monotone), the same order
//!   `run(1 worker)` produces after its own sort. Counters merge by
//!   addition ([`ScanStats::merge`], [`Snapshot::merge`]); the one
//!   derived gauge (`scan.hit_rate_ppm`) is recomputed from merged
//!   totals.
//!
//! The byte-identity guarantee assumes clock-independent worlds (the
//! default: [`FaultPlan::none`]'s limiter and loss draws key on addresses,
//! not ticks). Time-keyed fault plans (jitter, flaky windows) and
//! `netsim.ticks` under `probes_per_target > 1` can shift per-worker
//! drain timing; `scan.*` results remain a set-equal merge even then.
//!
//! [`FaultPlan::none`]: xmap_netsim::FaultPlan::none

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;

use xmap_addr::ScanRange;
use xmap_failpoint::exec::{ExecAction, ExecFaults};
use xmap_netsim::packet::Network;
use xmap_telemetry::{Snapshot, Telemetry};

use crate::blocklist::Blocklist;
use crate::probe::ProbeModule;
use crate::scanner::{ScanConfig, ScanResults, Scanner};
use crate::telemetry::names;

/// Supervision policy for a parallel executor: how many times a unit of
/// work (a shard here, a block in the campaign executor) may be
/// attempted before it is declared poisoned and skipped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Supervision {
    /// Total attempts per unit, counting the first one. `1` disables
    /// retry entirely; the default is `2` (one retry).
    pub max_attempts: u32,
}

impl Default for Supervision {
    fn default() -> Self {
        Supervision { max_attempts: 2 }
    }
}

/// Boxed per-worker network constructor: `(worker index, telemetry) ->
/// network replica`.
type NetworkFactory<N> = Box<dyn FnMut(usize, &Telemetry) -> N>;

/// A sharded, multi-threaded scan executor over per-worker [`Scanner`]s.
///
/// # Examples
///
/// ```
/// use xmap::{Blocklist, IcmpEchoProbe, ParallelScanner, ScanConfig};
/// use xmap_netsim::World;
///
/// # fn main() -> Result<(), xmap_addr::ParseAddrError> {
/// let config = ScanConfig { max_targets: Some(2000), ..Default::default() };
/// let mut scanner = ParallelScanner::new(4, config, |_, telemetry| {
///     let mut world = World::new(7);
///     world.set_telemetry(telemetry);
///     world
/// });
/// let results = scanner.run(&"2405:200::/32-64".parse()?, &IcmpEchoProbe, &Blocklist::allow_all());
/// assert_eq!(results.stats.sent, 2000); // same totals as a 1-worker run
/// # Ok(())
/// # }
/// ```
pub struct ParallelScanner<N> {
    workers: Vec<Scanner<N>>,
    base: ScanConfig,
    traced: bool,
    factory: NetworkFactory<N>,
    supervision: Supervision,
    exec_faults: Option<ExecFaults>,
    /// Per-worker count of units claimed so far (shard-run attempts),
    /// the index scripted [`ExecFaults`] rules match against.
    units: Vec<u64>,
    panics: u64,
    requeued: u64,
    poisoned: Vec<usize>,
}

impl<N> std::fmt::Debug for ParallelScanner<N> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ParallelScanner")
            .field("workers", &self.workers.len())
            .field("supervision", &self.supervision)
            .field("poisoned", &self.poisoned)
            .finish_non_exhaustive()
    }
}

impl<N: Network + Send> ParallelScanner<N> {
    /// Builds an executor with `workers` worker scanners nested inside
    /// `base`'s shard slot. `make_network(w, telemetry)` constructs worker
    /// `w`'s network replica; implementations that mirror metrics (e.g.
    /// [`World::set_telemetry`]) should bind the passed per-worker bundle
    /// so [`snapshot`](Self::snapshot) sees their counters.
    ///
    /// Every worker must be built over the same world seed for the
    /// determinism guarantee to hold (disjoint shards make the replicas
    /// interchangeable with one shared world).
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`, if `base`'s shard config is invalid, or
    /// if `base.shards * workers` overflows.
    ///
    /// [`World::set_telemetry`]: xmap_netsim::World::set_telemetry
    pub fn new(
        workers: usize,
        base: ScanConfig,
        make_network: impl FnMut(usize, &Telemetry) -> N + 'static,
    ) -> Self {
        Self::build(workers, base, false, Box::new(make_network))
    }

    /// Like [`new`](Self::new), but every worker's telemetry bundle has
    /// its event tracer enabled, so callers can export one NDJSON ring
    /// per worker after the run (via
    /// [`worker_telemetry`](Self::worker_telemetry)).
    pub fn new_traced(
        workers: usize,
        base: ScanConfig,
        make_network: impl FnMut(usize, &Telemetry) -> N + 'static,
    ) -> Self {
        Self::build(workers, base, true, Box::new(make_network))
    }

    fn build(
        workers: usize,
        base: ScanConfig,
        traced: bool,
        mut factory: NetworkFactory<N>,
    ) -> Self {
        assert!(workers > 0, "need at least one worker");
        assert!(base.shards > 0, "shards must be nonzero");
        assert!(base.shard < base.shards, "shard index out of range");
        base.shards
            .checked_mul(workers as u64)
            .expect("shards * workers overflows");
        let scanners = (0..workers)
            .map(|w| make_worker(&base, w, workers, traced, factory.as_mut()))
            .collect();
        ParallelScanner {
            workers: scanners,
            base,
            traced,
            factory,
            supervision: Supervision::default(),
            exec_faults: None,
            units: vec![0; workers],
            panics: 0,
            requeued: 0,
            poisoned: Vec::new(),
        }
    }

    /// Overrides the supervision policy (attempt budget per shard).
    pub fn set_supervision(&mut self, policy: Supervision) {
        self.supervision = policy;
    }

    /// Arms scripted executor faults: worker `w`'s `nth` claimed shard
    /// run panics or stalls per the plan. Test-harness plumbing; a
    /// production run never sets this.
    pub fn set_exec_faults(&mut self, faults: ExecFaults) {
        self.exec_faults = Some(faults);
    }

    /// Shards whose attempt budget ran out (empty on a healthy run).
    /// A poisoned shard contributes nothing to results or telemetry;
    /// its worker slot holds a fresh, never-run scanner.
    pub fn poisoned_shards(&self) -> &[usize] {
        &self.poisoned
    }

    /// Replaces worker `w` with a freshly built scanner (new telemetry
    /// bundle, new network replica, same nested shard slot) so a
    /// panicked worker's half-updated state never leaks into a retry or
    /// into [`snapshot`](Self::snapshot).
    fn rebuild_worker(&mut self, w: usize) {
        self.workers[w] = make_worker(
            &self.base,
            w,
            self.workers.len(),
            self.traced,
            self.factory.as_mut(),
        );
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Worker `w`'s effective configuration (nested shard slot and cap).
    pub fn worker_config(&self, w: usize) -> &ScanConfig {
        self.workers[w].config()
    }

    /// Worker `w`'s telemetry bundle.
    pub fn worker_telemetry(&self, w: usize) -> &Telemetry {
        self.workers[w].telemetry()
    }

    /// Mutable access to worker `w`'s scanner (used by the checkpoint
    /// driver to attach sinks and restore per-worker state).
    pub fn worker_mut(&mut self, w: usize) -> &mut Scanner<N> {
        &mut self.workers[w]
    }

    /// Scans one range across all workers and merges deterministically:
    /// records sorted by target (= permutation-index order), counters
    /// summed. See the module docs for why the result is byte-identical
    /// to a 1-worker run of the same seed.
    ///
    /// Workers run under `catch_unwind` supervision: a panicked shard is
    /// rebuilt from the factory (fresh replica, same slot — determinism
    /// makes the retry byte-identical to what the lost attempt would
    /// have produced) and respawned until its attempt budget
    /// ([`Supervision::max_attempts`]) runs out, after which the shard
    /// is poisoned: its targets are skipped, the merged result is marked
    /// `interrupted`, and [`poisoned_shards`](Self::poisoned_shards) /
    /// the `exec.*` counters in [`snapshot`](Self::snapshot) report it.
    pub fn run(
        &mut self,
        range: &ScanRange,
        module: &(dyn ProbeModule + Sync),
        blocklist: &Blocklist,
    ) -> ScanResults {
        let n = self.workers.len();
        let max_attempts = self.supervision.max_attempts.max(1);
        let mut results: Vec<Option<ScanResults>> = (0..n).map(|_| None).collect();
        let mut attempts = vec![0u32; n];
        loop {
            let pending: Vec<bool> = (0..n)
                .map(|w| results[w].is_none() && attempts[w] < max_attempts)
                .collect();
            if !pending.contains(&true) {
                break;
            }
            let mut unit_of = vec![0u64; n];
            for w in 0..n {
                if pending[w] {
                    attempts[w] += 1;
                    unit_of[w] = self.units[w];
                    self.units[w] += 1;
                }
            }
            let faults = self.exec_faults.as_ref();
            let outs: Vec<(usize, std::thread::Result<ScanResults>)> =
                std::thread::scope(|scope| {
                    let handles: Vec<_> = self
                        .workers
                        .iter_mut()
                        .enumerate()
                        .filter(|(w, _)| pending[*w])
                        .map(|(w, worker)| {
                            let unit = unit_of[w];
                            let handle = scope.spawn(move || {
                                catch_unwind(AssertUnwindSafe(|| {
                                    consult_exec_faults(faults, w, unit);
                                    worker.run(range, module, blocklist)
                                }))
                            });
                            (w, handle)
                        })
                        .collect();
                    // Joining in worker order keeps the fold deterministic.
                    handles
                        .into_iter()
                        .map(|(w, h)| match h.join() {
                            Ok(caught) => (w, caught),
                            Err(payload) => (w, Err(payload)),
                        })
                        .collect()
                });
            for (w, out) in outs {
                match out {
                    Ok(res) => results[w] = Some(res),
                    Err(_) => {
                        self.panics += 1;
                        // Fresh scanner either way: a retry must not see
                        // half-updated state, and a poisoned slot must
                        // not leak partial telemetry into snapshot().
                        self.rebuild_worker(w);
                        if attempts[w] < max_attempts {
                            self.requeued += 1;
                        } else if !self.poisoned.contains(&w) {
                            self.poisoned.push(w);
                        }
                    }
                }
            }
        }
        let mut merged = ScanResults::default();
        for one in results.into_iter().flatten() {
            merged.stats.merge(&one.stats);
            merged.records.extend(one.records);
            merged.silent_targets.extend(one.silent_targets);
        }
        // Stable sort: a target's own records (e.g. fault-plan duplicates)
        // keep their single worker's arrival order.
        merged.records.sort_by_key(|r| r.target);
        merged.silent_targets.sort_unstable();
        // Poisoned shards left targets unscanned — surface that the same
        // way an aborted checkpointed run does.
        merged.interrupted |= !self.poisoned.is_empty();
        merged
    }

    /// Scans several ranges, merging results range by range (mirrors
    /// [`Scanner::run_all`]: per-range canonical order, concatenated).
    pub fn run_all(
        &mut self,
        ranges: &[ScanRange],
        module: &(dyn ProbeModule + Sync),
        blocklist: &Blocklist,
    ) -> ScanResults {
        let mut all = ScanResults::default();
        for r in ranges {
            let one = self.run(r, module, blocklist);
            all.stats.merge(&one.stats);
            all.records.extend(one.records);
            all.silent_targets.extend(one.silent_targets);
        }
        all
    }

    /// Scans several ranges with an explicit per-worker [`RangeMode`] for
    /// each range — the checkpoint/resume execution path. `modes[w][ri]`
    /// tells worker `w` what to do with range `ri`: scan it fresh, resume
    /// it mid-range, or contribute journal-replayed records without
    /// sending. A worker that reports an interrupted range stops before
    /// the following ranges (its checkpoint already covers everything it
    /// did).
    ///
    /// Merging reproduces [`run_all`](Self::run_all)'s canonical order
    /// exactly: per range, records across workers are sorted by target and
    /// silent targets sorted; ranges are then concatenated in order. The
    /// merged `interrupted` flag is the OR across workers.
    ///
    /// # Panics
    ///
    /// Panics if `modes` is not `workers × ranges.len()` in shape.
    pub fn run_with_modes(
        &mut self,
        ranges: &[ScanRange],
        module: &(dyn ProbeModule + Sync),
        blocklist: &Blocklist,
        modes: Vec<Vec<crate::checkpoint::RangeMode>>,
    ) -> ScanResults {
        assert_eq!(modes.len(), self.workers.len(), "one mode list per worker");
        for m in &modes {
            assert_eq!(m.len(), ranges.len(), "one mode per range");
        }
        // Each worker returns its per-range results (ending early if
        // interrupted); merging happens range by range below. A panicked
        // worker is NOT retried in-process: its sink and restored resume
        // state were consumed by the lost attempt, so the only sound
        // recovery is the normal session-resume path. The shard is
        // poisoned and the merged result marked interrupted — the
        // worker's own checkpoint already covers everything it durably
        // did, so a resume recovers exactly.
        let faults = self.exec_faults.as_ref();
        let outs: Vec<std::thread::Result<Vec<ScanResults>>> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .workers
                .iter_mut()
                .zip(modes)
                .enumerate()
                .map(|(w, (worker, worker_modes))| {
                    scope.spawn(move || {
                        catch_unwind(AssertUnwindSafe(|| {
                            let mut per_range = Vec::with_capacity(worker_modes.len());
                            for (ri, (range, mode)) in ranges.iter().zip(worker_modes).enumerate() {
                                // Unit index = range index in this path,
                                // so scripts can target "worker w, range
                                // ri" directly.
                                consult_exec_faults(faults, w, ri as u64);
                                let one = worker
                                    .run_checkpointed(ri as u32, range, module, blocklist, mode);
                                let interrupted = one.interrupted;
                                per_range.push(one);
                                if interrupted {
                                    break;
                                }
                            }
                            per_range
                        }))
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(caught) => caught,
                    Err(payload) => Err(payload),
                })
                .collect()
        });
        let outs: Vec<Vec<ScanResults>> = outs
            .into_iter()
            .enumerate()
            .map(|(w, out)| match out {
                Ok(per_range) => per_range,
                Err(_) => {
                    self.panics += 1;
                    if !self.poisoned.contains(&w) {
                        self.poisoned.push(w);
                    }
                    Vec::new()
                }
            })
            .collect();
        let mut merged = ScanResults::default();
        merged.interrupted |= !self.poisoned.is_empty();
        for ri in 0..ranges.len() {
            let mut bucket = ScanResults::default();
            for worker_out in &outs {
                if let Some(one) = worker_out.get(ri) {
                    bucket.stats.merge(&one.stats);
                    bucket.records.extend(one.records.iter().cloned());
                    bucket
                        .silent_targets
                        .extend(one.silent_targets.iter().copied());
                    bucket.interrupted |= one.interrupted;
                }
            }
            bucket.records.sort_by_key(|r| r.target);
            bucket.silent_targets.sort_unstable();
            merged.stats.merge(&bucket.stats);
            merged.records.extend(bucket.records);
            merged.silent_targets.extend(bucket.silent_targets);
            merged.interrupted |= bucket.interrupted;
        }
        merged
    }

    /// The merged telemetry snapshot across all workers: counters and
    /// histograms sum; the derived `scan.hit_rate_ppm` gauge is recomputed
    /// from the merged totals (per-worker values are worker-local rates).
    ///
    /// Supervision counters (`exec.worker_panics`, `exec.requeued`,
    /// `exec.poisoned`) are inserted only when nonzero, so fault-free
    /// snapshots stay byte-identical to pre-supervision exports.
    pub fn snapshot(&self) -> Snapshot {
        let mut merged = merge_worker_snapshots(
            self.workers
                .iter()
                .map(|w| w.telemetry().registry.snapshot()),
        );
        insert_exec_counters(&mut merged, self.panics, self.requeued, self.poisoned.len());
        merged
    }
}

/// Inserts the executor supervision counters into a merged snapshot,
/// each only when nonzero (fault-free exports must not change shape).
/// Shared with the campaign-level executor in `xmap-periphery`.
pub fn insert_exec_counters(snap: &mut Snapshot, panics: u64, requeued: u64, poisoned: usize) {
    if panics > 0 {
        snap.counters
            .insert(names::EXEC_WORKER_PANICS.to_owned(), panics);
    }
    if requeued > 0 {
        snap.counters
            .insert(names::EXEC_REQUEUED.to_owned(), requeued);
    }
    if poisoned > 0 {
        snap.counters
            .insert(names::EXEC_POISONED.to_owned(), poisoned as u64);
    }
}

/// Applies a scripted executor fault for `worker` claiming `unit`.
/// `Panic` panics in place — the supervisor's `catch_unwind` turns it
/// into a requeue or a poisoned shard. The shard executor has no
/// watchdog (its workers are compute-bound over finite disjoint shards,
/// so a claim cannot be held forever), so `Stall` just parks the worker
/// briefly — exercising slow-worker merge order, not requeue. The
/// campaign executor gives `Stall` its full meaning.
fn consult_exec_faults(faults: Option<&ExecFaults>, worker: usize, unit: u64) {
    match faults.and_then(|f| f.on_unit(worker, unit)) {
        Some(ExecAction::Panic) => {
            panic!("injected executor fault: worker {worker} panics on unit {unit}")
        }
        Some(ExecAction::Stall) => std::thread::sleep(std::time::Duration::from_millis(25)),
        None => {}
    }
}

/// Merges per-worker registry snapshots into one export: counters and
/// histograms sum ([`Snapshot::merge`]); the derived `scan.hit_rate_ppm`
/// gauge is recomputed from the merged totals, since per-worker values
/// are worker-local rates. Shared by [`ParallelScanner::snapshot`] and
/// the campaign-level executor in `xmap-periphery`.
pub fn merge_worker_snapshots(snaps: impl IntoIterator<Item = Snapshot>) -> Snapshot {
    let mut merged = Snapshot::default();
    for snap in snaps {
        merged.merge(&snap);
    }
    let sent = merged.counter(names::SENT);
    let valid = merged.counter(names::VALID);
    if let Some(ppm) = valid.saturating_mul(1_000_000).checked_div(sent) {
        merged.gauges.insert(names::HIT_RATE_PPM.to_owned(), ppm);
    }
    merged
}

/// A deque-based work-stealing scheduler over item indices.
///
/// Built for workloads whose items differ wildly in cost (campaign
/// blocks: some scan 2³² spaces under tight ICMPv6 token buckets, others
/// are small and fast) — static assignment would leave the fast workers
/// idle behind the slowest block. Each worker owns a deque seeded
/// round-robin; it pops its own queue from the *front* and, when empty,
/// steals from a victim's *back*, so steals take the work its owner
/// would reach last.
///
/// Scheduling order is nondeterministic under contention by design; the
/// callers that need determinism tag every item's result with its index
/// and merge in index order, which makes the schedule unobservable.
///
/// `std`-only: a `Mutex<VecDeque>` per worker. Item counts here are
/// tiny (15 campaign blocks), so lock contention is irrelevant next to
/// the seconds-long items themselves.
#[derive(Debug)]
pub struct StealQueue {
    deques: Vec<Mutex<VecDeque<usize>>>,
}

impl StealQueue {
    /// Distributes `items` indices (0-based) round-robin over `workers`
    /// deques: worker `w` is seeded with `w, w + workers, w + 2·workers,
    /// …`, mirroring the shard→worker mapping of [`ParallelScanner`].
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn new(items: usize, workers: usize) -> Self {
        assert!(workers > 0, "need at least one worker");
        let mut deques: Vec<VecDeque<usize>> = (0..workers).map(|_| VecDeque::new()).collect();
        for item in 0..items {
            deques[item % workers].push_back(item);
        }
        StealQueue {
            deques: deques.into_iter().map(Mutex::new).collect(),
        }
    }

    /// Takes the next item for `worker`: its own front, else a steal
    /// from the back of the first non-empty victim (scanning `worker +
    /// 1, worker + 2, …` cyclically). `None` once every deque is empty.
    pub fn pop(&self, worker: usize) -> Option<usize> {
        assert!(worker < self.deques.len(), "worker index out of range");
        if let Some(item) = self.deques[worker]
            .lock()
            .expect("steal queue poisoned")
            .pop_front()
        {
            return Some(item);
        }
        let n = self.deques.len();
        for offset in 1..n {
            let victim = (worker + offset) % n;
            if let Some(item) = self.deques[victim]
                .lock()
                .expect("steal queue poisoned")
                .pop_back()
            {
                return Some(item);
            }
        }
        None
    }

    /// Requeues `item` at the back of `worker`'s own deque — the
    /// supervision path: a worker that caught a panic, or the watchdog
    /// reclaiming a stalled worker's unit, pushes the item back so a
    /// surviving worker's next [`pop`](Self::pop) (own front or steal)
    /// picks it up.
    pub fn push(&self, worker: usize, item: usize) {
        assert!(worker < self.deques.len(), "worker index out of range");
        self.deques[worker]
            .lock()
            .expect("steal queue poisoned")
            .push_back(item);
    }

    /// Number of worker deques.
    pub fn workers(&self) -> usize {
        self.deques.len()
    }

    /// Items not yet popped, across all deques.
    pub fn remaining(&self) -> usize {
        self.deques
            .iter()
            .map(|d| d.lock().expect("steal queue poisoned").len())
            .sum()
    }
}

/// Builds worker `w` of `n`: fresh telemetry, a network replica from the
/// factory, and the nested shard config. Used both at construction and
/// when the supervisor rebuilds a panicked worker for retry —
/// determinism guarantees the rebuilt worker reproduces exactly what the
/// panicked attempt would have produced.
fn make_worker<N: Network>(
    base: &ScanConfig,
    w: usize,
    n: usize,
    traced: bool,
    factory: &mut dyn FnMut(usize, &Telemetry) -> N,
) -> Scanner<N> {
    let telemetry = if traced {
        Telemetry::with_tracing()
    } else {
        Telemetry::new()
    };
    let network = factory(w, &telemetry);
    let config = ScanConfig {
        shard: base.shard + w as u64 * base.shards,
        shards: base.shards * n as u64,
        max_targets: base
            .max_targets
            .map(|cap| worker_cap(cap, w as u64, n as u64)),
        ..base.clone()
    };
    Scanner::with_telemetry(network, config, telemetry)
}

/// How many of the first `cap` instance walk positions worker `w` of `n`
/// owns (position `j` goes to worker `j mod n`). Public because the
/// campaign executor's intra-block splits partition a block's remaining
/// walk with exactly this math (`xmap_periphery::split`).
pub fn worker_cap(cap: u64, w: u64, n: u64) -> u64 {
    if cap <= w {
        0
    } else {
        (cap - w).div_ceil(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::IcmpEchoProbe;
    use xmap_netsim::World;

    fn range() -> ScanRange {
        "2405:200::/32-64".parse().unwrap()
    }

    fn base_config(cap: u64) -> ScanConfig {
        ScanConfig {
            seed: 77,
            max_targets: Some(cap),
            ..Default::default()
        }
    }

    fn parallel(workers: usize, cap: u64) -> ParallelScanner<World> {
        ParallelScanner::new(workers, base_config(cap), |_, telemetry| {
            let mut world = World::new(5);
            world.set_telemetry(telemetry);
            world
        })
    }

    #[test]
    fn worker_caps_partition_exactly() {
        for cap in [0u64, 1, 5, 4096, 4097] {
            for n in [1u64, 2, 3, 4, 7] {
                let total: u64 = (0..n).map(|w| worker_cap(cap, w, n)).sum();
                assert_eq!(total, cap, "cap {cap} workers {n}");
            }
        }
    }

    #[test]
    fn worker_configs_nest_shards() {
        let base = ScanConfig {
            shard: 1,
            shards: 3,
            max_targets: Some(7),
            ..Default::default()
        };
        let ps = ParallelScanner::new(2, base, |_, _| World::new(5));
        assert_eq!(ps.workers(), 2);
        let w0 = ps.worker_config(0);
        let w1 = ps.worker_config(1);
        assert_eq!((w0.shard, w0.shards, w0.max_targets), (1, 6, Some(4)));
        assert_eq!((w1.shard, w1.shards, w1.max_targets), (4, 6, Some(3)));
    }

    #[test]
    fn sharded_runs_match_across_worker_counts() {
        let run = |workers: usize| {
            let mut ps = parallel(workers, 2048);
            let results = ps.run(&range(), &IcmpEchoProbe, &Blocklist::allow_all());
            (results, ps.snapshot())
        };
        let (r1, s1) = run(1);
        let (r2, s2) = run(2);
        let (r4, s4) = run(4);
        assert_eq!(r1.stats.sent, 2048);
        assert!(!r1.records.is_empty());
        assert_eq!(r1.records, r2.records);
        assert_eq!(r1.records, r4.records);
        assert_eq!(r1.stats, r2.stats);
        assert_eq!(r1.stats, r4.stats);
        assert_eq!(s1, s2);
        assert_eq!(s1, s4);
    }

    #[test]
    fn single_worker_matches_plain_scanner_totals() {
        let mut ps = parallel(1, 512);
        let merged = ps.run(&range(), &IcmpEchoProbe, &Blocklist::allow_all());
        let mut world = World::new(5);
        let telemetry = Telemetry::new();
        world.set_telemetry(&telemetry);
        let mut plain = Scanner::with_telemetry(world, base_config(512), telemetry);
        let serial = plain.run(&range(), &IcmpEchoProbe, &Blocklist::allow_all());
        assert_eq!(merged.stats, serial.stats);
        let mut serial_sorted = serial.records;
        serial_sorted.sort_by_key(|r| r.target);
        assert_eq!(merged.records, serial_sorted);
        assert_eq!(ps.snapshot(), plain.telemetry().registry.snapshot());
    }

    #[test]
    fn more_workers_than_targets() {
        let mut ps = parallel(4, 2);
        let results = ps.run(&range(), &IcmpEchoProbe, &Blocklist::allow_all());
        assert_eq!(results.stats.sent, 2);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let _ = ParallelScanner::new(0, ScanConfig::default(), |_, _| World::new(5));
    }

    #[test]
    fn traced_workers_record_events() {
        let mut ps = ParallelScanner::new_traced(2, base_config(64), |_, telemetry| {
            let mut world = World::new(5);
            world.set_telemetry(telemetry);
            world
        });
        let _ = ps.run(&range(), &IcmpEchoProbe, &Blocklist::allow_all());
        for w in 0..2 {
            assert!(ps.worker_telemetry(w).tracer.is_enabled());
            assert!(!ps.worker_telemetry(w).tracer.to_ndjson().is_empty());
        }
    }

    #[test]
    fn injected_panic_is_retried_byte_identically() {
        use xmap_failpoint::exec::ExecPlan;
        let mut clean = parallel(4, 512);
        let baseline = clean.run(&range(), &IcmpEchoProbe, &Blocklist::allow_all());
        let baseline_snap = clean.snapshot();

        let mut ps = parallel(4, 512);
        ps.set_exec_faults(ExecPlan::panic_on(2, 0).armed());
        let results = ps.run(&range(), &IcmpEchoProbe, &Blocklist::allow_all());
        assert!(!results.interrupted);
        assert!(ps.poisoned_shards().is_empty());
        assert_eq!(results.records, baseline.records);
        assert_eq!(results.stats, baseline.stats);

        let snap = ps.snapshot();
        assert_eq!(snap.counter(names::EXEC_WORKER_PANICS), 1);
        assert_eq!(snap.counter(names::EXEC_REQUEUED), 1);
        // Stripped of the supervision counters, the snapshot matches the
        // fault-free run exactly — the retry reproduced the lost shard.
        let mut stripped = snap.clone();
        stripped.counters.remove(names::EXEC_WORKER_PANICS);
        stripped.counters.remove(names::EXEC_REQUEUED);
        assert_eq!(stripped, baseline_snap);
    }

    #[test]
    fn exhausted_attempts_poison_the_shard() {
        use xmap_failpoint::exec::ExecPlan;
        let mut ps = parallel(2, 64);
        ps.set_supervision(Supervision { max_attempts: 1 });
        ps.set_exec_faults(ExecPlan::panic_on(1, 0).armed());
        let results = ps.run(&range(), &IcmpEchoProbe, &Blocklist::allow_all());
        assert!(results.interrupted, "poisoned shard must flag the merge");
        assert_eq!(ps.poisoned_shards(), &[1]);
        // Worker 0's half of the 64-target cap still completed.
        assert_eq!(results.stats.sent, 32);
        let snap = ps.snapshot();
        assert_eq!(snap.counter(names::EXEC_WORKER_PANICS), 1);
        assert_eq!(snap.counter(names::EXEC_POISONED), 1);
        assert_eq!(snap.counter(names::EXEC_REQUEUED), 0);
    }

    #[test]
    fn repeated_panics_exhaust_budget_then_poison() {
        use xmap_failpoint::exec::{ExecPlan, ExecRule};
        let mut ps = parallel(2, 64);
        // Default budget is 2 attempts; both panic.
        let plan = ExecPlan {
            rules: vec![
                ExecRule {
                    worker: 0,
                    nth: 0,
                    action: ExecAction::Panic,
                },
                ExecRule {
                    worker: 0,
                    nth: 1,
                    action: ExecAction::Panic,
                },
            ],
        };
        ps.set_exec_faults(plan.armed());
        let results = ps.run(&range(), &IcmpEchoProbe, &Blocklist::allow_all());
        assert!(results.interrupted);
        assert_eq!(ps.poisoned_shards(), &[0]);
        let snap = ps.snapshot();
        assert_eq!(snap.counter(names::EXEC_WORKER_PANICS), 2);
        assert_eq!(snap.counter(names::EXEC_REQUEUED), 1);
        assert_eq!(snap.counter(names::EXEC_POISONED), 1);
    }

    #[test]
    fn fault_free_snapshot_has_no_exec_counters() {
        let mut ps = parallel(2, 64);
        let _ = ps.run(&range(), &IcmpEchoProbe, &Blocklist::allow_all());
        let snap = ps.snapshot();
        for name in [
            names::EXEC_WORKER_PANICS,
            names::EXEC_REQUEUED,
            names::EXEC_POISONED,
        ] {
            assert!(
                !snap.counters.contains_key(name),
                "{name} must only appear when nonzero"
            );
        }
    }

    #[test]
    fn steal_queue_push_requeues_for_owner() {
        let q = StealQueue::new(2, 2);
        assert_eq!(q.pop(0), Some(0));
        q.push(0, 0);
        assert_eq!(q.remaining(), 2);
        assert_eq!(q.pop(0), Some(0), "requeued item comes back");
        // Worker 1 drains its own, then steals the requeued one.
        q.push(0, 0);
        assert_eq!(q.pop(1), Some(1));
        assert_eq!(q.pop(1), Some(0));
    }

    #[test]
    fn steal_queue_drains_every_item_exactly_once() {
        let q = StealQueue::new(15, 4);
        assert_eq!(q.workers(), 4);
        assert_eq!(q.remaining(), 15);
        let mut seen = std::collections::BTreeSet::new();
        // Worker 3 drains everything: its own deque, then steals.
        while let Some(item) = q.pop(3) {
            assert!(seen.insert(item), "item {item} scheduled twice");
        }
        assert_eq!(seen.len(), 15);
        assert_eq!(q.remaining(), 0);
        assert_eq!(q.pop(0), None);
    }

    #[test]
    fn steal_queue_owner_pops_front_thief_steals_back() {
        let q = StealQueue::new(8, 2);
        // Worker 0 owns 0,2,4,6; worker 1 owns 1,3,5,7.
        assert_eq!(q.pop(0), Some(0));
        // Exhaust worker 1's own deque, front first.
        assert_eq!(q.pop(1), Some(1));
        assert_eq!(q.pop(1), Some(3));
        assert_eq!(q.pop(1), Some(5));
        assert_eq!(q.pop(1), Some(7));
        // Now worker 1 steals from worker 0's *back*.
        assert_eq!(q.pop(1), Some(6));
        assert_eq!(q.pop(0), Some(2));
    }

    #[test]
    fn steal_queue_under_concurrency_partitions_items() {
        let q = StealQueue::new(100, 4);
        let counts: Vec<usize> = std::thread::scope(|scope| {
            (0..4)
                .map(|w| {
                    let q = &q;
                    scope.spawn(move || {
                        let mut taken = 0;
                        while q.pop(w).is_some() {
                            taken += 1;
                        }
                        taken
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        });
        assert_eq!(counts.iter().sum::<usize>(), 100);
    }
}
