//! Probe modules — the pluggable packet builders/classifiers of XMap.
//!
//! A [`ProbeModule`] knows how to build the probe packet for a target
//! address and how to classify whatever comes back. XMap ships ICMPv6
//! echo, UDP and TCP-SYN modules; all three are here. Modules are stateless
//! — cookies come from the shared [`Validator`].

use xmap_addr::Ip6;
use xmap_netsim::packet::{AppData, Icmpv6, Ipv6Packet, Payload, TcpFlags, UnreachCode};
use xmap_netsim::services::AppRequest;

use crate::validate::Validator;

/// Classified outcome of a response packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeResult {
    /// The probed address itself answered (echo reply / SYN-ACK / data).
    Alive,
    /// An ICMPv6 destination-unreachable arrived from `responder` about our
    /// probe — the periphery-discovery signal.
    Unreachable {
        /// Unreachable code.
        code: UnreachCode,
    },
    /// An ICMPv6 time-exceeded arrived from `responder` about our probe —
    /// the routing-loop signal.
    TimeExceeded,
    /// Connection refused (TCP RST).
    Refused,
    /// The packet was not a valid response to our probe (cookie mismatch,
    /// unrelated traffic).
    Invalid,
}

/// A stateless probe builder + response classifier.
pub trait ProbeModule: Send + Sync {
    /// Human-readable module name (e.g. `icmp6_echoscan`).
    fn name(&self) -> &'static str;

    /// Builds the probe for `dst`, sourcing from `src` with `hop_limit`.
    fn build(&self, src: Ip6, dst: Ip6, hop_limit: u8, validator: &Validator) -> Ipv6Packet;

    /// Classifies a received packet. Implementations must validate the
    /// response against the validator before accepting it.
    fn classify(&self, response: &Ipv6Packet, validator: &Validator) -> ProbeResult;
}

/// ICMPv6 echo module — the periphery-discovery probe (`icmp6_echoscan`).
#[derive(Debug, Clone, Copy, Default)]
pub struct IcmpEchoProbe;

impl ProbeModule for IcmpEchoProbe {
    fn name(&self) -> &'static str {
        "icmp6_echoscan"
    }

    fn build(&self, src: Ip6, dst: Ip6, hop_limit: u8, validator: &Validator) -> Ipv6Packet {
        let (ident, seq) = validator.echo_fields(dst);
        Ipv6Packet::echo_request(src, dst, hop_limit, ident, seq)
    }

    fn classify(&self, response: &Ipv6Packet, validator: &Validator) -> ProbeResult {
        match &response.payload {
            Payload::Icmp(Icmpv6::EchoReply { ident, seq }) => {
                // The replying address is the probed destination.
                if validator.check_echo(response.src, *ident, *seq) {
                    ProbeResult::Alive
                } else {
                    ProbeResult::Invalid
                }
            }
            Payload::Icmp(Icmpv6::DestUnreachable { code, invoking }) => {
                if validator.check_quote(invoking) {
                    ProbeResult::Unreachable { code: *code }
                } else {
                    ProbeResult::Invalid
                }
            }
            Payload::Icmp(Icmpv6::TimeExceeded { invoking }) => {
                if validator.check_quote(invoking) {
                    ProbeResult::TimeExceeded
                } else {
                    ProbeResult::Invalid
                }
            }
            _ => ProbeResult::Invalid,
        }
    }
}

/// UDP module carrying an application request (`udp6_scan`).
#[derive(Debug, Clone, Copy)]
pub struct UdpProbe {
    /// Destination port.
    pub port: u16,
    /// Application request to carry.
    pub request: AppRequest,
}

impl ProbeModule for UdpProbe {
    fn name(&self) -> &'static str {
        "udp6_scan"
    }

    fn build(&self, src: Ip6, dst: Ip6, _hop_limit: u8, validator: &Validator) -> Ipv6Packet {
        Ipv6Packet::udp_request(
            src,
            dst,
            validator.source_port(dst),
            self.port,
            self.request,
        )
    }

    fn classify(&self, response: &Ipv6Packet, validator: &Validator) -> ProbeResult {
        match &response.payload {
            Payload::Udp {
                dst_port,
                data: AppData::Response(_),
                ..
            } => {
                // Response must come back to our cookie port from the probed
                // address.
                if *dst_port == validator.source_port(response.src) {
                    ProbeResult::Alive
                } else {
                    ProbeResult::Invalid
                }
            }
            Payload::Icmp(Icmpv6::DestUnreachable { code, invoking }) => {
                if validator.check_quote(invoking) {
                    ProbeResult::Unreachable { code: *code }
                } else {
                    ProbeResult::Invalid
                }
            }
            _ => ProbeResult::Invalid,
        }
    }
}

/// TCP SYN module (`tcp6_synscan`).
#[derive(Debug, Clone, Copy)]
pub struct TcpSynProbe {
    /// Destination port.
    pub port: u16,
}

impl ProbeModule for TcpSynProbe {
    fn name(&self) -> &'static str {
        "tcp6_synscan"
    }

    fn build(&self, src: Ip6, dst: Ip6, _hop_limit: u8, validator: &Validator) -> Ipv6Packet {
        Ipv6Packet::tcp_syn(src, dst, validator.source_port(dst), self.port)
    }

    fn classify(&self, response: &Ipv6Packet, validator: &Validator) -> ProbeResult {
        match &response.payload {
            Payload::Tcp {
                dst_port, flags, ..
            } => {
                if *dst_port != validator.source_port(response.src) {
                    return ProbeResult::Invalid;
                }
                match flags {
                    TcpFlags::SynAck => ProbeResult::Alive,
                    TcpFlags::Rst => ProbeResult::Refused,
                    _ => ProbeResult::Invalid,
                }
            }
            Payload::Icmp(Icmpv6::DestUnreachable { code, invoking }) => {
                if validator.check_quote(invoking) {
                    ProbeResult::Unreachable { code: *code }
                } else {
                    ProbeResult::Invalid
                }
            }
            _ => ProbeResult::Invalid,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmap_netsim::packet::Invoking;
    use xmap_netsim::packet::QuotedProto;

    fn a(s: &str) -> Ip6 {
        s.parse().unwrap()
    }

    #[test]
    fn echo_build_embeds_cookie() {
        let v = Validator::new(77);
        let p = IcmpEchoProbe.build(a("fd::1"), a("2001::2"), 64, &v);
        match p.payload {
            Payload::Icmp(Icmpv6::EchoRequest { ident, seq }) => {
                assert!(v.check_echo(a("2001::2"), ident, seq));
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(p.hop_limit, 64);
    }

    #[test]
    fn echo_classifies_reply_and_errors() {
        let v = Validator::new(77);
        let dst = a("2001::2");
        let (ident, seq) = v.echo_fields(dst);
        let reply = Ipv6Packet {
            src: dst,
            dst: a("fd::1"),
            hop_limit: 60,
            payload: Payload::Icmp(Icmpv6::EchoReply { ident, seq }),
        };
        assert_eq!(IcmpEchoProbe.classify(&reply, &v), ProbeResult::Alive);

        let invoking = Invoking {
            src: a("fd::1"),
            dst,
            proto: QuotedProto::Icmp { ident, seq },
        };
        let unreach = Ipv6Packet {
            src: a("2001::ffff"),
            dst: a("fd::1"),
            hop_limit: 60,
            payload: Payload::Icmp(Icmpv6::DestUnreachable {
                code: UnreachCode::AddressUnreachable,
                invoking,
            }),
        };
        assert_eq!(
            IcmpEchoProbe.classify(&unreach, &v),
            ProbeResult::Unreachable {
                code: UnreachCode::AddressUnreachable
            }
        );

        let te = Ipv6Packet {
            src: a("2001::fffe"),
            dst: a("fd::1"),
            hop_limit: 60,
            payload: Payload::Icmp(Icmpv6::TimeExceeded { invoking }),
        };
        assert_eq!(IcmpEchoProbe.classify(&te, &v), ProbeResult::TimeExceeded);
    }

    #[test]
    fn echo_rejects_forged_cookie() {
        let v = Validator::new(77);
        let dst = a("2001::2");
        let (ident, seq) = v.echo_fields(dst);
        let forged = Ipv6Packet {
            src: dst,
            dst: a("fd::1"),
            hop_limit: 60,
            payload: Payload::Icmp(Icmpv6::EchoReply {
                ident: ident ^ 1,
                seq,
            }),
        };
        assert_eq!(IcmpEchoProbe.classify(&forged, &v), ProbeResult::Invalid);
        // Quote about a destination we never probed with those fields.
        let invoking = Invoking {
            src: a("fd::1"),
            dst: a("2001::3"),
            proto: QuotedProto::Icmp { ident, seq },
        };
        let unreach = Ipv6Packet {
            src: a("2001::ffff"),
            dst: a("fd::1"),
            hop_limit: 60,
            payload: Payload::Icmp(Icmpv6::DestUnreachable {
                code: UnreachCode::NoRoute,
                invoking,
            }),
        };
        assert_eq!(IcmpEchoProbe.classify(&unreach, &v), ProbeResult::Invalid);
    }

    #[test]
    fn tcp_classifies_synack_and_rst() {
        let v = Validator::new(3);
        let dst = a("2601::5");
        let module = TcpSynProbe { port: 80 };
        let probe = module.build(a("fd::1"), dst, 64, &v);
        let Payload::Tcp { src_port, .. } = probe.payload else {
            panic!()
        };
        assert_eq!(src_port, v.source_port(dst));

        let synack = Ipv6Packet {
            src: dst,
            dst: a("fd::1"),
            hop_limit: 60,
            payload: Payload::Tcp {
                src_port: 80,
                dst_port: v.source_port(dst),
                flags: TcpFlags::SynAck,
                data: AppData::None,
            },
        };
        assert_eq!(module.classify(&synack, &v), ProbeResult::Alive);
        let rst = Ipv6Packet {
            payload: Payload::Tcp {
                src_port: 80,
                dst_port: v.source_port(dst),
                flags: TcpFlags::Rst,
                data: AppData::None,
            },
            ..synack.clone()
        };
        assert_eq!(module.classify(&rst, &v), ProbeResult::Refused);
        let wrong_port = Ipv6Packet {
            payload: Payload::Tcp {
                src_port: 80,
                dst_port: 1,
                flags: TcpFlags::SynAck,
                data: AppData::None,
            },
            ..synack
        };
        assert_eq!(module.classify(&wrong_port, &v), ProbeResult::Invalid);
    }

    #[test]
    fn udp_roundtrip_against_response() {
        let v = Validator::new(9);
        let dst = a("2601::6");
        let module = UdpProbe {
            port: 123,
            request: AppRequest::NtpVersionQuery,
        };
        let probe = module.build(a("fd::1"), dst, 64, &v);
        let Payload::Udp {
            src_port, dst_port, ..
        } = probe.payload
        else {
            panic!()
        };
        assert_eq!(dst_port, 123);
        let response = Ipv6Packet {
            src: dst,
            dst: a("fd::1"),
            hop_limit: 50,
            payload: Payload::Udp {
                src_port: 123,
                dst_port: src_port,
                data: AppData::Response(xmap_netsim::services::AppResponse::NtpVersionReply {
                    version: 4,
                }),
            },
        };
        assert_eq!(module.classify(&response, &v), ProbeResult::Alive);
    }

    #[test]
    fn module_names() {
        assert_eq!(IcmpEchoProbe.name(), "icmp6_echoscan");
        assert_eq!(TcpSynProbe { port: 80 }.name(), "tcp6_synscan");
        assert_eq!(
            UdpProbe {
                port: 53,
                request: AppRequest::DnsQuery
            }
            .name(),
            "udp6_scan"
        );
    }
}
