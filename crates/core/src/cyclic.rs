//! The multiplicative-group address permutation — XMap's key module.
//!
//! ZMap randomizes probe order by walking the multiplicative group of
//! integers modulo a prime slightly larger than the scan space: starting
//! from a random group element and repeatedly multiplying by a generator
//! visits every element exactly once in an order that looks random, with
//! O(1) state. XMap generalizes this from "the rear 32 bits of IPv4" to
//! *any* bit range of the 128-bit space; this module is that generalization
//! (backed by [`crate::math`] instead of GMP).
//!
//! Values `v ∈ [1, p)` map to scan indices `v − 1`; indices `≥ N` (the few
//! between the space size and the prime) are skipped during iteration, so
//! the walk emits each of the `N` indices exactly once per cycle.

use crate::math::{is_prime, mulmod, next_prime, powmod, primitive_root};

/// A full-cycle random permutation of `0..len` built on the multiplicative
/// group modulo a prime.
///
/// # Examples
///
/// ```
/// use xmap::cyclic::Cycle;
///
/// let cycle = Cycle::new(100, 0x5eed);
/// let mut seen: Vec<u64> = cycle.iter().collect();
/// assert_eq!(seen.len(), 100);      // visits every index once
/// seen.sort_unstable();
/// assert_eq!(seen, (0..100).collect::<Vec<_>>());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cycle {
    /// Number of permuted indices.
    len: u64,
    /// Prime modulus, smallest prime > len.
    prime: u128,
    /// Generator of the multiplicative group mod `prime`.
    generator: u128,
    /// First group element of the walk (derived from the seed).
    start: u128,
}

impl Cycle {
    /// Builds a permutation of `0..len` seeded by `seed`.
    ///
    /// The generator is derived from a primitive root `g` as `g^e` for a
    /// seed-dependent exponent `e` coprime to `p − 1`, so different seeds
    /// produce different full-cycle walks.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    pub fn new(len: u64, seed: u64) -> Self {
        assert!(len > 0, "cannot permute an empty space");
        let prime = next_prime(len as u128);
        if prime == 2 {
            // len == 1: the multiplicative group mod 2 is trivial.
            return Cycle {
                len,
                prime,
                generator: 1,
                start: 1,
            };
        }
        let root = primitive_root(prime);
        // Pick a seed-dependent exponent coprime to p-1 (odd exponents
        // coprime to the odd part suffice; retry linearly until coprime).
        let phi = prime - 1;
        let mut e = (seed as u128 % phi).max(1);
        while crate::math::gcd(e, phi) != 1 {
            e += 1;
            if e >= phi {
                e = 1;
            }
        }
        let generator = powmod(root, e, prime);
        // Start element in [1, p).
        let start = (seed as u128)
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(1)
            % (prime - 1)
            + 1;
        Cycle {
            len,
            prime,
            generator,
            start,
        }
    }

    /// Number of indices in the permutation.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the permutation is empty (never true — `new` rejects 0).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The prime modulus in use (exposed for tests and diagnostics).
    pub fn prime(&self) -> u128 {
        self.prime
    }

    /// Iterates over all indices of the permutation in walk order.
    pub fn iter(&self) -> Iter {
        Iter {
            cycle: self.clone(),
            current: self.start,
            remaining: self.len,
        }
    }

    /// Iterates over the shard `shard` of `shards`: the walk positions
    /// `shard, shard + shards, shard + 2·shards, …` — ZMap-style sharding
    /// where every shard covers a disjoint subset and the union is the whole
    /// space. Implemented by stepping with `g^shards` after an offset of
    /// `g^shard`.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0` or `shard >= shards`.
    pub fn iter_shard(&self, shard: u64, shards: u64) -> ShardIter {
        assert!(shards > 0, "shards must be nonzero");
        assert!(shard < shards, "shard index out of range");
        let stride = powmod(self.generator, shards as u128, self.prime);
        let offset = mulmod(
            self.start,
            powmod(self.generator, shard as u128, self.prime),
            self.prime,
        );
        // Walk length: positions shard, shard+shards, ... < cycle length
        // (p-1 group elements in the full walk).
        let group_len = self.prime - 1;
        let walk_len = (group_len - shard as u128).div_ceil(shards as u128);
        ShardIter {
            len: self.len,
            prime: self.prime,
            stride,
            current: offset,
            remaining_walk: walk_len,
        }
    }
}

/// Iterator over a [`Cycle`], produced by [`Cycle::iter`].
#[derive(Debug, Clone)]
pub struct Iter {
    cycle: Cycle,
    current: u128,
    remaining: u64,
}

impl Iterator for Iter {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        while self.remaining > 0 {
            let v = self.current;
            self.current = mulmod(self.current, self.cycle.generator, self.cycle.prime);
            let index = v - 1;
            if index < self.cycle.len as u128 {
                self.remaining -= 1;
                return Some(index as u64);
            }
            // Index in the prime/space gap: skip (at most p - 1 - len of
            // these exist per cycle).
        }
        None
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining as usize, Some(self.remaining as usize))
    }
}

/// Iterator over one shard of a [`Cycle`], produced by [`Cycle::iter_shard`].
#[derive(Debug, Clone)]
pub struct ShardIter {
    len: u64,
    prime: u128,
    stride: u128,
    current: u128,
    remaining_walk: u128,
}

impl ShardIter {
    /// Fills `out` with the next indices of the walk, returning how many
    /// were written (short only when the shard is exhausted).
    ///
    /// This is the batched form of `next()` for the scanner's chunked
    /// target generator: one call amortizes the iterator dispatch over a
    /// whole chunk and keeps the modular-multiply walk in registers,
    /// without materializing the full shard up front.
    pub fn fill(&mut self, out: &mut [u64]) -> usize {
        let mut n = 0;
        while n < out.len() && self.remaining_walk > 0 {
            let v = self.current;
            self.current = mulmod(self.current, self.stride, self.prime);
            self.remaining_walk -= 1;
            let index = v - 1;
            if index < self.len as u128 {
                out[n] = index as u64;
                n += 1;
            }
        }
        n
    }

    /// Like [`fill`](Self::fill) but emits **every** group step: fringe
    /// elements (`index >= len`, the `prime − 1 − len` group members with
    /// no corresponding target) surface as `u64::MAX`, a sentinel no
    /// scan range of enumerable size resolves. The scanner's target
    /// generator walks this raw stream and rejects fringe indices at the
    /// range lookup, so one walk position is exactly one group step — the
    /// invariant the nested sub-shard split math relies on: shard `s` of
    /// `M` then owns precisely the base walk's positions `≡ s (mod M)`,
    /// with no drift from fringe elements swallowed inside one shard.
    pub fn fill_raw(&mut self, out: &mut [u64]) -> usize {
        let mut n = 0;
        while n < out.len() && self.remaining_walk > 0 {
            let v = self.current;
            self.current = mulmod(self.current, self.stride, self.prime);
            self.remaining_walk -= 1;
            let index = v - 1;
            out[n] = if index < self.len as u128 {
                index as u64
            } else {
                u64::MAX
            };
            n += 1;
        }
        n
    }
}

impl ShardIter {
    /// The walk position as `(current, remaining_walk)` — the complete
    /// iteration state (the modulus and stride are derived from the
    /// configuration). Captured into checkpoints so a resumed scan
    /// continues the multiplicative walk exactly where it stopped.
    pub fn position(&self) -> (u128, u128) {
        (self.current, self.remaining_walk)
    }

    /// Restores a walk position captured by [`ShardIter::position`] on an
    /// iterator freshly built from the same `Cycle` and shard arguments.
    pub fn set_position(&mut self, current: u128, remaining_walk: u128) {
        self.current = current;
        self.remaining_walk = remaining_walk;
    }
}

impl Iterator for ShardIter {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        let mut one = [0u64; 1];
        if self.fill(&mut one) == 1 {
            Some(one[0])
        } else {
            None
        }
    }
}

/// Validates that `prime` is usable for a cycle over `len` indices — used
/// by property tests.
pub fn valid_prime_for(len: u64, prime: u128) -> bool {
    prime > len as u128 && is_prime(prime)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn full_permutation_small() {
        for len in [1u64, 2, 7, 100, 257, 1000] {
            let c = Cycle::new(len, 42);
            let visited: Vec<u64> = c.iter().collect();
            assert_eq!(visited.len() as u64, len, "len {len}");
            let set: HashSet<u64> = visited.iter().copied().collect();
            assert_eq!(set.len() as u64, len, "distinct, len {len}");
            assert!(visited.iter().all(|i| *i < len));
        }
    }

    #[test]
    fn different_seeds_different_orders() {
        let a: Vec<u64> = Cycle::new(1000, 1).iter().collect();
        let b: Vec<u64> = Cycle::new(1000, 2).iter().collect();
        assert_ne!(a, b);
        // But both are permutations of the same set.
        let sa: HashSet<_> = a.into_iter().collect();
        let sb: HashSet<_> = b.into_iter().collect();
        assert_eq!(sa, sb);
    }

    #[test]
    fn order_looks_scattered() {
        // The whole point of the permutation: consecutive outputs should not
        // be consecutive indices (spreads load across target networks).
        let out: Vec<u64> = Cycle::new(1 << 16, 7).iter().take(1000).collect();
        let adjacent = out.windows(2).filter(|w| w[0].abs_diff(w[1]) == 1).count();
        assert!(adjacent < 10, "{adjacent} adjacent pairs in 1000 outputs");
    }

    #[test]
    fn shards_partition_the_space() {
        let c = Cycle::new(10_000, 99);
        let mut all = HashSet::new();
        for shard in 0..4 {
            let part: Vec<u64> = c.iter_shard(shard, 4).collect();
            for idx in part {
                assert!(all.insert(idx), "index {idx} emitted by two shards");
            }
        }
        assert_eq!(all.len(), 10_000);
    }

    #[test]
    fn single_shard_equals_full_iteration() {
        let c = Cycle::new(5_000, 3);
        let full: Vec<u64> = c.iter().collect();
        let sharded: Vec<u64> = c.iter_shard(0, 1).collect();
        assert_eq!(full, sharded);
    }

    #[test]
    fn large_space_uses_valid_prime() {
        let c = Cycle::new(1 << 32, 5);
        assert_eq!(c.prime(), 4_294_967_311);
        assert!(valid_prime_for(1 << 32, c.prime()));
        // Spot-check the first outputs are in range and distinct.
        let head: Vec<u64> = c.iter().take(10_000).collect();
        let set: HashSet<_> = head.iter().collect();
        assert_eq!(set.len(), 10_000);
        assert!(head.iter().all(|i| *i < 1 << 32));
    }

    #[test]
    fn fill_matches_iteration_in_chunks() {
        let c = Cycle::new(10_000, 99);
        let expect: Vec<u64> = c.iter_shard(1, 3).collect();
        let mut it = c.iter_shard(1, 3);
        let mut got = Vec::new();
        let mut chunk = [0u64; 64];
        loop {
            let n = it.fill(&mut chunk);
            if n == 0 {
                break;
            }
            got.extend_from_slice(&chunk[..n]);
        }
        assert_eq!(got, expect);
    }

    #[test]
    fn position_roundtrip_resumes_walk() {
        let c = Cycle::new(10_000, 7);
        let mut it = c.iter_shard(1, 3);
        let mut head = [0u64; 100];
        assert_eq!(it.fill(&mut head), 100);
        let (current, remaining) = it.position();
        let tail_direct: Vec<u64> = it.collect();
        let mut resumed = c.iter_shard(1, 3);
        resumed.set_position(current, remaining);
        let tail_resumed: Vec<u64> = resumed.collect();
        assert_eq!(tail_resumed, tail_direct);
    }

    #[test]
    #[should_panic(expected = "empty space")]
    fn zero_length_rejected() {
        Cycle::new(0, 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn shard_bounds_checked() {
        Cycle::new(10, 0).iter_shard(3, 3);
    }
}
