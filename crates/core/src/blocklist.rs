//! Prefix blocklist/allowlist — a binary radix trie over IPv6 prefixes.
//!
//! ZMap-family scanners refuse to probe destinations on a blocklist
//! (reserved space, opted-out networks) and optionally restrict probing to
//! an allowlist. XMap rewrote ZMap's 32-bit constraint-tree for 128-bit
//! addresses; this module is that structure: a path-compressed-enough
//! binary trie where each leaf carries an allow/deny verdict and lookups
//! walk at most 128 bits.

use xmap_addr::{Ip6, Prefix};

/// Verdict attached to a prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Verdict {
    /// Destination may be probed.
    #[default]
    Allow,
    /// Destination must be skipped.
    Deny,
}

#[derive(Debug, Clone)]
struct TrieNode {
    /// Verdict set by the most specific terminating prefix at this node.
    verdict: Option<Verdict>,
    children: [Option<Box<TrieNode>>; 2],
}

impl TrieNode {
    fn new() -> Self {
        TrieNode {
            verdict: None,
            children: [None, None],
        }
    }
}

/// A longest-prefix-match allow/deny filter.
///
/// Later insertions of the *same* prefix overwrite earlier ones; a more
/// specific prefix always wins over a covering one, matching ZMap's
/// blocklist-file semantics.
///
/// # Examples
///
/// ```
/// use xmap::blocklist::{Blocklist, Verdict};
///
/// # fn main() -> Result<(), xmap_addr::ParseAddrError> {
/// let mut bl = Blocklist::new(Verdict::Allow);
/// bl.insert("2001:db8::/32".parse()?, Verdict::Deny);
/// bl.insert("2001:db8:feed::/48".parse()?, Verdict::Allow);
/// assert!(!bl.is_allowed("2001:db8::1".parse()?));
/// assert!(bl.is_allowed("2001:db8:feed::1".parse()?));
/// assert!(bl.is_allowed("2600::1".parse()?));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Blocklist {
    root: TrieNode,
    default: Verdict,
    entries: usize,
}

impl Blocklist {
    /// Creates a filter with a default verdict for unmatched destinations.
    pub fn new(default: Verdict) -> Self {
        Blocklist {
            root: TrieNode::new(),
            default,
            entries: 0,
        }
    }

    /// A filter that allows everything (no entries).
    pub fn allow_all() -> Self {
        Blocklist::new(Verdict::Allow)
    }

    /// Number of prefixes inserted.
    pub fn len(&self) -> usize {
        self.entries
    }

    /// Whether the filter has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Inserts a prefix with a verdict.
    pub fn insert(&mut self, prefix: Prefix, verdict: Verdict) {
        let bits = prefix.addr().bits();
        let mut node = &mut self.root;
        for depth in 0..prefix.len() {
            let bit = ((bits >> (127 - depth as u32)) & 1) as usize;
            node = node.children[bit].get_or_insert_with(|| Box::new(TrieNode::new()));
        }
        if node.verdict.replace(verdict).is_none() {
            self.entries += 1;
        }
    }

    /// The verdict for `addr` by longest-prefix match (default when no
    /// entry covers it).
    pub fn verdict(&self, addr: Ip6) -> Verdict {
        let bits = addr.bits();
        let mut node = &self.root;
        let mut best = self.default;
        if let Some(v) = node.verdict {
            best = v;
        }
        for depth in 0..128u32 {
            let bit = ((bits >> (127 - depth)) & 1) as usize;
            match &node.children[bit] {
                Some(child) => {
                    node = child;
                    if let Some(v) = node.verdict {
                        best = v;
                    }
                }
                None => break,
            }
        }
        best
    }

    /// Whether `addr` may be probed.
    pub fn is_allowed(&self, addr: Ip6) -> bool {
        self.verdict(addr) == Verdict::Allow
    }

    /// A deterministic fingerprint of the filter's complete semantics: the
    /// default verdict, entry count, and every (depth, path, verdict)
    /// triple reached by a depth-first walk of the trie. Two blocklists
    /// that classify every address identically — built from the same
    /// prefix/verdict set in any insertion order — fingerprint equal;
    /// checkpoint resume compares this against the stored value to refuse
    /// resuming under a different filter.
    pub fn fingerprint(&self) -> u64 {
        // FNV-1a 64, matching xmap-state's config fingerprinting.
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0100_0000_01b3;
        fn mix(h: &mut u64, bytes: &[u8]) {
            for &b in bytes {
                *h ^= b as u64;
                *h = h.wrapping_mul(PRIME);
            }
        }
        fn walk(node: &TrieNode, depth: u8, path: u128, h: &mut u64) {
            if let Some(v) = node.verdict {
                mix(h, &[depth, v as u8]);
                mix(h, &path.to_be_bytes());
            }
            for (bit, child) in node.children.iter().enumerate() {
                if let Some(child) = child {
                    walk(child, depth + 1, (path << 1) | bit as u128, h);
                }
            }
        }
        let mut h = OFFSET;
        mix(&mut h, &[self.default as u8]);
        mix(&mut h, &(self.entries as u64).to_be_bytes());
        walk(&self.root, 0, 0, &mut h);
        h
    }

    /// Loads the standard never-probe set: unspecified/loopback, multicast,
    /// link-local, unique-local and documentation space.
    pub fn with_standard_reserved() -> Self {
        let mut bl = Blocklist::allow_all();
        for p in [
            "::/128",
            "::1/128",
            "ff00::/8",
            "fe80::/10",
            "fc00::/7",
            "2001:db8::/32",
        ] {
            bl.insert(p.parse().expect("static reserved prefix"), Verdict::Deny);
        }
        bl
    }
}

/// Linear-scan reference implementation with identical semantics — kept for
/// differential testing and as the baseline in the `blocklist` ablation
/// bench.
#[derive(Debug, Clone, Default)]
pub struct LinearBlocklist {
    entries: Vec<(Prefix, Verdict)>,
    default: Verdict,
}

impl LinearBlocklist {
    /// Creates an empty linear filter.
    pub fn new(default: Verdict) -> Self {
        LinearBlocklist {
            entries: Vec::new(),
            default,
        }
    }

    /// Inserts a prefix (replacing an identical one).
    pub fn insert(&mut self, prefix: Prefix, verdict: Verdict) {
        if let Some(e) = self.entries.iter_mut().find(|(p, _)| *p == prefix) {
            e.1 = verdict;
        } else {
            self.entries.push((prefix, verdict));
        }
    }

    /// Longest-prefix-match verdict.
    pub fn verdict(&self, addr: Ip6) -> Verdict {
        self.entries
            .iter()
            .filter(|(p, _)| p.contains(addr))
            .max_by_key(|(p, _)| p.len())
            .map(|(_, v)| *v)
            .unwrap_or(self.default)
    }

    /// Whether `addr` may be probed.
    pub fn is_allowed(&self, addr: Ip6) -> bool {
        self.verdict(addr) == Verdict::Allow
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(s: &str) -> Ip6 {
        s.parse().unwrap()
    }

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn empty_uses_default() {
        assert!(Blocklist::new(Verdict::Allow).is_allowed(a("2001::1")));
        assert!(!Blocklist::new(Verdict::Deny).is_allowed(a("2001::1")));
    }

    #[test]
    fn longest_prefix_wins() {
        let mut bl = Blocklist::allow_all();
        bl.insert(p("2001::/16"), Verdict::Deny);
        bl.insert(p("2001:db8::/32"), Verdict::Allow);
        bl.insert(p("2001:db8:dead::/48"), Verdict::Deny);
        assert!(!bl.is_allowed(a("2001::1")));
        assert!(bl.is_allowed(a("2001:db8::1")));
        assert!(!bl.is_allowed(a("2001:db8:dead::1")));
    }

    #[test]
    fn reinsert_overwrites_without_double_count() {
        let mut bl = Blocklist::allow_all();
        bl.insert(p("2001::/16"), Verdict::Deny);
        bl.insert(p("2001::/16"), Verdict::Allow);
        assert_eq!(bl.len(), 1);
        assert!(bl.is_allowed(a("2001::1")));
    }

    #[test]
    fn default_route_entry() {
        let mut bl = Blocklist::allow_all();
        bl.insert(p("::/0"), Verdict::Deny);
        bl.insert(p("2600::/12"), Verdict::Allow);
        assert!(!bl.is_allowed(a("2001::1")));
        assert!(bl.is_allowed(a("2601::1")));
    }

    #[test]
    fn standard_reserved_set() {
        let bl = Blocklist::with_standard_reserved();
        for blocked in ["::1", "ff02::1", "fe80::1", "fd00::1", "2001:db8::1"] {
            assert!(!bl.is_allowed(a(blocked)), "{blocked}");
        }
        assert!(bl.is_allowed(a("2600::1")));
    }

    #[test]
    fn host_route_match() {
        let mut bl = Blocklist::allow_all();
        bl.insert(p("2001:db8::42/128"), Verdict::Deny);
        assert!(!bl.is_allowed(a("2001:db8::42")));
        assert!(bl.is_allowed(a("2001:db8::43")));
    }

    #[test]
    fn fingerprint_tracks_semantics_not_insertion_order() {
        let entries = [
            ("2400::/12", Verdict::Deny),
            ("2405:200::/32", Verdict::Allow),
            ("2600::/12", Verdict::Deny),
        ];
        let mut fwd = Blocklist::allow_all();
        for (s, v) in entries {
            fwd.insert(p(s), v);
        }
        let mut rev = Blocklist::allow_all();
        for (s, v) in entries.iter().rev() {
            rev.insert(p(s), *v);
        }
        assert_eq!(fwd.fingerprint(), rev.fingerprint());

        // Any semantic change moves the fingerprint.
        let mut extra = fwd.clone();
        extra.insert(p("2601::/24"), Verdict::Allow);
        assert_ne!(fwd.fingerprint(), extra.fingerprint());
        let mut flipped = fwd.clone();
        flipped.insert(p("2600::/12"), Verdict::Allow);
        assert_ne!(fwd.fingerprint(), flipped.fingerprint());
        assert_ne!(
            Blocklist::new(Verdict::Allow).fingerprint(),
            Blocklist::new(Verdict::Deny).fingerprint()
        );
    }

    #[test]
    fn trie_matches_linear_reference() {
        let prefixes = [
            ("2400::/12", Verdict::Deny),
            ("2405:200::/32", Verdict::Allow),
            ("2405:200:8::/48", Verdict::Deny),
            ("2600::/12", Verdict::Deny),
            ("2601::/24", Verdict::Allow),
            ("::/0", Verdict::Allow),
        ];
        let mut trie = Blocklist::allow_all();
        let mut lin = LinearBlocklist::new(Verdict::Allow);
        for (s, v) in prefixes {
            trie.insert(p(s), v);
            lin.insert(p(s), v);
        }
        for addr in [
            "2400::1",
            "2405:200::1",
            "2405:200:8::1",
            "2405:201::1",
            "2600:abcd::1",
            "2601::1",
            "9999::1",
        ] {
            assert_eq!(trie.verdict(a(addr)), lin.verdict(a(addr)), "{addr}");
        }
    }
}
