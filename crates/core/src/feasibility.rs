//! Scan-feasibility arithmetic (Section III-B / IV-E).
//!
//! The paper's headline feasibility claims:
//!
//! * a 1 Gbps scanner probes all 2⁴⁰ /64 sub-prefixes of a /24 block in
//!   ~8 days and all 2³⁶ /60 sub-prefixes in ~14 hours;
//! * the measurement setup (<15 Mbps, 25 kpps) covers one 32-bit sample
//!   space in ~48 hours.
//!
//! These are pure arithmetic over probe size and packet rate; this module
//! reproduces them and, combined with a measured in-memory probe-generation
//! rate (criterion bench `scanner_throughput`), grounds the claims in this
//! implementation.

use std::time::Duration;

/// Bytes on the wire per ICMPv6 probe: 14 (Ethernet) + 40 (IPv6) + 8
/// (ICMPv6 echo header) + 8 (payload) + 16 (preamble + IFG overhead).
pub const PROBE_WIRE_BYTES: u64 = 86;

/// Packets per second achievable at `bandwidth_bps` with `probe_bytes`
/// packets.
pub fn pps_at_bandwidth(bandwidth_bps: u64, probe_bytes: u64) -> f64 {
    bandwidth_bps as f64 / (probe_bytes as f64 * 8.0)
}

/// Wall-clock duration to probe a `space_bits`-bit space once at `pps`.
pub fn scan_duration(space_bits: u8, pps: f64) -> Duration {
    let probes = 2f64.powi(space_bits as i32);
    Duration::from_secs_f64(probes / pps)
}

/// A feasibility report row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Feasibility {
    /// Size of the scan space in bits.
    pub space_bits: u8,
    /// Packet rate used.
    pub pps: f64,
    /// Time to cover the space once.
    pub duration: Duration,
}

impl Feasibility {
    /// Builds the row for a space at a bandwidth.
    pub fn at_bandwidth(space_bits: u8, bandwidth_bps: u64) -> Self {
        let pps = pps_at_bandwidth(bandwidth_bps, PROBE_WIRE_BYTES);
        Feasibility {
            space_bits,
            pps,
            duration: scan_duration(space_bits, pps),
        }
    }

    /// Builds the row for a space at an explicit packet rate.
    pub fn at_pps(space_bits: u8, pps: f64) -> Self {
        Feasibility {
            space_bits,
            pps,
            duration: scan_duration(space_bits, pps),
        }
    }

    /// Duration in days.
    pub fn days(&self) -> f64 {
        self.duration.as_secs_f64() / 86_400.0
    }

    /// Duration in hours.
    pub fn hours(&self) -> f64 {
        self.duration.as_secs_f64() / 3_600.0
    }
}

/// The three headline rows of the paper, in order: (/64s of a /24 at
/// 1 Gbps, /60s of a /24 at 1 Gbps, one 32-bit sample space at 25 kpps).
pub fn paper_rows() -> [Feasibility; 3] {
    [
        Feasibility::at_bandwidth(40, 1_000_000_000),
        Feasibility::at_bandwidth(36, 1_000_000_000),
        Feasibility::at_pps(32, 25_000.0),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gigabit_pps_is_about_1_45m() {
        let pps = pps_at_bandwidth(1_000_000_000, PROBE_WIRE_BYTES);
        assert!((1.4e6..1.5e6).contains(&pps), "{pps}");
    }

    #[test]
    fn slash64_space_takes_about_8_days_at_1gbps() {
        let row = Feasibility::at_bandwidth(40, 1_000_000_000);
        assert!((7.0..10.0).contains(&row.days()), "{} days", row.days());
    }

    #[test]
    fn slash60_space_takes_about_14_hours_at_1gbps() {
        let row = Feasibility::at_bandwidth(36, 1_000_000_000);
        assert!((11.0..15.0).contains(&row.hours()), "{} hours", row.hours());
    }

    #[test]
    fn sample_block_takes_about_48_hours_at_25kpps() {
        let row = Feasibility::at_pps(32, 25_000.0);
        assert!((46.0..50.0).contains(&row.hours()), "{} hours", row.hours());
    }

    #[test]
    fn rows_ordering() {
        let rows = paper_rows();
        assert_eq!(rows[0].space_bits, 40);
        assert!(rows[0].duration > rows[1].duration);
    }
}
