//! The scan engine: permutation → probe → validate → record.
//!
//! Mirrors XMap's architecture: a target generator walks a random
//! permutation of the scan space, a send loop builds probes under a token
//! bucket, responses are validated statelessly and recorded. Against the
//! simulator, send and receive are synchronous; [`run_pipelined`]
//! still exercises the real two-stage pipeline (generator thread feeding a
//! prober thread over bounded channels) the way the C implementation
//! separates its send and receive threads.

use std::collections::{BinaryHeap, HashMap, HashSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use xmap_addr::{Ip6, Prefix, ScanRange};
use xmap_netsim::packet::{Icmpv6, Ipv6Packet, Network, Payload};
use xmap_state::{AbortSignal, AdaptiveState, CursorState, RunState};
use xmap_telemetry::{Monitor, Snapshot, Telemetry, Tracer};

use crate::blocklist::Blocklist;
use crate::checkpoint::{RangeMode, RunResume, RunSink};
use crate::cyclic::Cycle;
use crate::feistel::FeistelPermutation;
use crate::probe::{ProbeModule, ProbeResult};
use crate::rate::{AdaptiveRateController, RateLimiter};
use crate::target::fill_host_bits;
use crate::telemetry::{names, HotTally, MetricsBaseline, ScanMetrics};
use crate::validate::Validator;

// The reactor-backed engine lives in a child module so it can share this
// module's private plumbing (target generator, recovery state, metric
// tallies) without widening any of it.
#[path = "reactor_run.rs"]
mod reactor_run;

/// Probe-order strategies (ablation: `permutation_vs_sequential`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Permutation {
    /// Multiplicative-group walk (ZMap/XMap default).
    #[default]
    Cyclic,
    /// Feistel bijection (index-addressable).
    Feistel,
    /// No permutation: ascending order (hammers one subnet at a time).
    Sequential,
}

/// Which engine drives the scan loop.
///
/// Both engines produce byte-identical CSV records, metrics snapshots
/// and checkpoints for the same seed and configuration (pinned by the
/// `reactor_determinism` test), so the knob is purely architectural:
/// the reactor is the path that admits non-simulator transports. The
/// engine is deliberately *not* part of the session manifest — a scan
/// checkpointed under one engine resumes under the other.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScanEngine {
    /// The synchronous lock-step loop: one send slot per virtual tick,
    /// replies absorbed in place. The historical default.
    #[default]
    LockStep,
    /// The `xmap-reactor` event loop: probes go out through a
    /// [`Transport`](xmap_reactor::Transport) (`SimTransport` over the
    /// bound network), replies come back through a bounded, stamped
    /// receive queue, and retransmissions park in a deadline
    /// [`TimerHeap`](xmap_reactor::TimerHeap).
    Reactor,
}

/// Scanner configuration.
#[derive(Debug, Clone)]
pub struct ScanConfig {
    /// Seed for permutation, cookies and IID fill.
    pub seed: u64,
    /// Source address probes are sent from.
    pub source: Ip6,
    /// Hop limit on outgoing probes.
    pub hop_limit: u8,
    /// Probe-order strategy.
    pub permutation: Permutation,
    /// This scanner's shard (0-based) of `shards` total.
    pub shard: u64,
    /// Total number of cooperating shards.
    pub shards: u64,
    /// Probe at most this many targets per range (scaled experiments);
    /// `None` scans the full space.
    pub max_targets: Option<u64>,
    /// Packets-per-second budget; `None` = unlimited. Against the simulator
    /// pacing is accounted, not slept (see [`ScanStats::paced_secs`]).
    pub rate_pps: Option<u64>,
    /// Probes per target sub-prefix (default 1, the paper's discipline).
    /// Additional probes use fresh host bits and are only sent when the
    /// previous attempt drew no response — the loss-recovery knob measured
    /// by the `probes` ablation.
    pub probes_per_target: u32,
    /// Base retransmission timeout in virtual ticks (one tick = one send
    /// slot). Attempt *n* is scheduled `rto_ticks << (n-1)` ticks after
    /// attempt *n-1* went out — classic exponential backoff.
    pub rto_ticks: u64,
    /// Bound on the retransmission queue. When the backlog is full further
    /// retries are abandoned; targets that consequently stay silent end up
    /// in [`ScanStats::gave_up`].
    pub max_retry_backlog: usize,
    /// Enables the AIMD [`AdaptiveRateController`] seeded from `rate_pps`
    /// (no effect when `rate_pps` is `None`): the accounted pacing then
    /// follows the controller's current rate instead of the fixed budget.
    pub adaptive_rate: bool,
    /// Collect targets that never produced a valid response into
    /// [`ScanResults::silent_targets`] (the mop-up pass input). Off by
    /// default: the list is proportional to the probed slice.
    pub record_silent: bool,
    /// Which engine drives [`Scanner::run`]. Not part of the session
    /// manifest: both engines emit identical artifacts, so a resumed
    /// session may switch engines freely.
    pub engine: ScanEngine,
}

impl Default for ScanConfig {
    fn default() -> Self {
        ScanConfig {
            seed: 1,
            source: Ip6::new(0xfd00 << 112 | 1),
            hop_limit: 64,
            permutation: Permutation::Cyclic,
            shard: 0,
            shards: 1,
            max_targets: None,
            rate_pps: None,
            probes_per_target: 1,
            rto_ticks: 8,
            max_retry_backlog: 4096,
            adaptive_rate: false,
            record_silent: false,
            engine: ScanEngine::LockStep,
        }
    }
}

/// How many attempts a recorded response took — the per-record confidence
/// tag of the loss-recovery pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Confidence {
    /// The first probe to the target was answered.
    #[default]
    FirstTry,
    /// Answered only on the `n`-th retransmission (`n >= 1`); the target
    /// sits behind a lossy or rate-limited path.
    Retry(u32),
}

/// One validated response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanRecord {
    /// The sub-prefix this probe targeted.
    pub target: Prefix,
    /// The full probe destination (target + filled host bits).
    pub probe_dst: Ip6,
    /// Source address of the validated response — for unreachables this is
    /// the periphery's exposed WAN/UE address.
    pub responder: Ip6,
    /// Classified outcome.
    pub result: ProbeResult,
    /// How many attempts this response took.
    pub confidence: Confidence,
}

/// Aggregate counters for one scan.
///
/// Since the telemetry migration this is a *view*: the scanner counts into
/// its [`ScanMetrics`] registry handles and each run reports the delta, so
/// the registry is the single source of truth (campaign mop-up passes and
/// the pipelined runner count through the same handles).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ScanStats {
    /// Probes sent.
    pub sent: u64,
    /// Targets skipped by the blocklist.
    pub blocked: u64,
    /// Response packets received.
    pub received: u64,
    /// Responses that failed stateless validation.
    pub invalid: u64,
    /// Valid, recorded responses.
    pub valid: u64,
    /// Probes that were retransmissions (attempt >= 1); included in `sent`.
    pub retransmits: u64,
    /// Targets whose first probe went unanswered but whose retransmission
    /// drew an ICMPv6 error — the signature of an RFC 4443 §2.4 rate
    /// limiter refilling between attempts (echo replies are not typically
    /// rate limited, so those do not count).
    pub rate_limited_suspected: u64,
    /// Targets abandoned with every configured attempt unanswered. Only
    /// counted when recovery was in play (`probes_per_target > 1`); a
    /// single-probe scan records silence, it does not "give up".
    pub gave_up: u64,
    /// Seconds the configured rate limit would have stretched this scan to.
    pub paced_secs: f64,
}

impl ScanStats {
    /// Valid responses per probe sent.
    pub fn hit_rate(&self) -> f64 {
        if self.sent == 0 {
            0.0
        } else {
            self.valid as f64 / self.sent as f64
        }
    }

    /// Accumulates another run's counters into this one. Integer counters
    /// saturate instead of wrapping, so a pathological merge (e.g. folding
    /// many near-full campaign aggregates) degrades to a pinned maximum
    /// rather than a nonsense small number.
    pub fn merge(&mut self, other: &ScanStats) {
        self.sent = self.sent.saturating_add(other.sent);
        self.blocked = self.blocked.saturating_add(other.blocked);
        self.received = self.received.saturating_add(other.received);
        self.invalid = self.invalid.saturating_add(other.invalid);
        self.valid = self.valid.saturating_add(other.valid);
        self.retransmits = self.retransmits.saturating_add(other.retransmits);
        self.rate_limited_suspected = self
            .rate_limited_suspected
            .saturating_add(other.rate_limited_suspected);
        self.gave_up = self.gave_up.saturating_add(other.gave_up);
        self.paced_secs += other.paced_secs;
    }
}

/// Results of one scan.
#[derive(Debug, Clone, Default)]
pub struct ScanResults {
    /// Validated responses in arrival order.
    pub records: Vec<ScanRecord>,
    /// Counters.
    pub stats: ScanStats,
    /// Targets that never produced a valid response, in probe order.
    /// Populated only under [`ScanConfig::record_silent`]; the mop-up
    /// pass re-probes these after ICMPv6 token buckets have refilled.
    pub silent_targets: Vec<Prefix>,
    /// The run stopped early on an [`AbortSignal`]. Records and counters
    /// are the partial progress; the last durable checkpoint (if a sink
    /// was attached) is what a later `--resume` continues from.
    pub interrupted: bool,
    /// Walk positions of `records` (parallel vector), counted in
    /// consumed permutation indices of this run's walk. Populated only
    /// under [`Scanner::set_track_positions`]; the intra-block split
    /// executor uses them as merge keys.
    pub record_positions: Vec<u64>,
    /// Walk positions of `silent_targets` (parallel vector); populated
    /// only under [`Scanner::set_track_positions`].
    pub silent_positions: Vec<u64>,
    /// Permutation indices consumed from this run's walk (every index
    /// drawn from the generator, whether or not the range produced a
    /// target for it — the unit the `max_targets` budget is counted in).
    pub consumed: u64,
    /// The run stopped at a cooperative yield request with walk budget
    /// left (see [`Scanner::set_yield_request`]): records, silence and
    /// stats cover the consumed prefix exactly as a standalone run over
    /// that prefix would; the remainder was never drawn.
    pub yielded: bool,
}

/// The scanner: a [`ProbeModule`] driven over a permuted target space
/// against any [`Network`].
///
/// # Examples
///
/// ```
/// use xmap::{IcmpEchoProbe, Blocklist, ScanConfig, Scanner};
/// use xmap_netsim::World;
///
/// # fn main() -> Result<(), xmap_addr::ParseAddrError> {
/// let world = World::new(7);
/// let mut scanner = Scanner::new(world, ScanConfig { max_targets: Some(2000), ..Default::default() });
/// let results = scanner.run(&"2405:200::/32-64".parse()?, &IcmpEchoProbe, &Blocklist::allow_all());
/// assert_eq!(results.stats.sent, 2000);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Scanner<N> {
    network: N,
    config: ScanConfig,
    validator: Validator,
    telemetry: Telemetry,
    metrics: ScanMetrics,
    monitor: Option<Monitor>,
    /// Virtual ticks issued to the network across all runs — the monotone
    /// clock the monitor and trace spans are stamped with.
    total_ticks: u64,
    /// Checkpoint sink: when attached, records are journalled to its WAL
    /// and worker checkpoints written at the configured cadence.
    sink: Option<RunSink>,
    /// Last sink-degradation state mirrored into the
    /// `state.durability_degraded` gauge (the gauge is only created on
    /// the first transition, so fault-free snapshots never carry it).
    durability_flagged: bool,
    /// Cooperative stop flag, checked once per send slot.
    abort: Option<AbortSignal>,
    /// When set, record/silent walk positions are captured into results
    /// (split-executor merge keys).
    track_positions: bool,
    /// Leading walk positions of the configured shard to discard before
    /// probing — the sub-shard form of intra-block splits (see
    /// [`Scanner::set_sub_shard`]).
    walk_skip: u64,
    /// Cooperative yield request: when the flag is set (by an idle
    /// executor worker), the scanner stops drawing fresh targets at the
    /// next slot boundary, drains in-flight state, and returns with
    /// [`ScanResults::yielded`] set.
    yield_flag: Option<Arc<AtomicBool>>,
    /// Yield requests are ignored unless at least this many walk
    /// positions remain (splitting a nearly-done run is pure overhead).
    yield_min_remaining: u64,
    /// Deterministic forced yield: behave as if the yield flag fired
    /// once `consumed` reaches this count (test/CI knob; fires at most
    /// once per run).
    force_yield_at: Option<u64>,
}

impl<N: Network> Scanner<N> {
    /// Creates a scanner over a network with private telemetry (live
    /// counters, tracing off).
    ///
    /// # Panics
    ///
    /// Panics if `config.shards == 0` or `config.shard >= config.shards`.
    pub fn new(network: N, config: ScanConfig) -> Self {
        Scanner::with_telemetry(network, config, Telemetry::new())
    }

    /// Creates a scanner counting into a shared [`Telemetry`] bundle, so
    /// monitors, snapshot exports and other components observe this
    /// scanner's metrics.
    ///
    /// # Panics
    ///
    /// Panics if `config.shards == 0` or `config.shard >= config.shards`.
    pub fn with_telemetry(network: N, config: ScanConfig, telemetry: Telemetry) -> Self {
        assert!(config.shards > 0, "shards must be nonzero");
        assert!(config.shard < config.shards, "shard index out of range");
        let validator = Validator::new(config.seed ^ 0x5ca1_ab1e);
        let metrics = ScanMetrics::bind(&telemetry.registry);
        Scanner {
            network,
            config,
            validator,
            telemetry,
            metrics,
            monitor: None,
            total_ticks: 0,
            sink: None,
            durability_flagged: false,
            abort: None,
            track_positions: false,
            walk_skip: 0,
            yield_flag: None,
            yield_min_remaining: 1,
            force_yield_at: None,
        }
    }

    /// The telemetry bundle this scanner counts into.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The pre-bound scan metric handles (shared cells with the registry).
    pub fn metrics(&self) -> &ScanMetrics {
        &self.metrics
    }

    /// The event tracer (disabled unless the telemetry bundle enables it).
    pub fn tracer(&self) -> &Tracer {
        &self.telemetry.tracer
    }

    /// Attaches a live monitor, polled once per virtual tick during runs.
    pub fn set_monitor(&mut self, monitor: Monitor) {
        self.monitor = Some(monitor);
    }

    /// Detaches the monitor, returning it.
    pub fn take_monitor(&mut self) -> Option<Monitor> {
        self.monitor.take()
    }

    /// Arms a cooperative abort: the scanner checks the signal at each
    /// slot boundary and stops early (results marked
    /// [`interrupted`](ScanResults::interrupted)) once it fires.
    pub fn set_abort(&mut self, abort: AbortSignal) {
        self.abort = Some(abort);
    }

    /// Whether an armed abort signal has fired.
    pub fn is_aborted(&self) -> bool {
        self.abort.as_ref().is_some_and(AbortSignal::is_set)
    }

    /// Attaches a checkpoint sink. Subsequent runs journal every record
    /// to its WAL and write a worker checkpoint at the sink's cadence
    /// (and once more when a range completes).
    pub fn set_sink(&mut self, sink: RunSink) {
        self.sink = Some(sink);
    }

    /// Detaches the checkpoint sink, returning it (e.g. to inspect a
    /// deferred I/O error at session end).
    pub fn take_sink(&mut self) -> Option<RunSink> {
        self.sink.take()
    }

    /// Restores the scanner's lifetime tick count and the network's
    /// virtual clock from a checkpoint — the resume path's first step, to
    /// be called before any run.
    pub fn restore_clock(&mut self, tick: u64) {
        self.total_ticks = tick;
        self.network.restore_clock(tick);
    }

    /// Restores the telemetry registry from a checkpoint snapshot; the
    /// scanner's (and a bound network's) existing metric handles observe
    /// the restored values. A `state.durability_degraded` gauge captured
    /// while the killed run was degraded is stale for this process (its
    /// sink starts healthy) and is reset.
    pub fn restore_metrics(&mut self, snap: &Snapshot) {
        self.telemetry.registry.restore(snap);
        if snap.gauges.contains_key(names::DURABILITY_DEGRADED) {
            self.telemetry
                .registry
                .gauge(names::DURABILITY_DEGRADED)
                .set(0);
        }
    }

    /// Virtual ticks issued to the network so far (monotone across runs).
    pub fn ticks(&self) -> u64 {
        self.total_ticks
    }

    /// Advances the network's virtual clock by `ticks`, appending any
    /// delayed packets that came due to `out` (which callers clear and
    /// reuse across invocations — the mop-up loop calls this once per
    /// drain slot, and a returned `Vec` per call was a measurable
    /// allocation tax). Keeps the scanner's monotone tick count in sync —
    /// campaign drivers use this instead of ticking the network directly.
    pub fn advance(&mut self, ticks: u64, out: &mut Vec<Ipv6Packet>) {
        self.total_ticks += ticks;
        self.network.tick_into(ticks, out);
        self.network.flush_telemetry();
    }

    /// The configuration in effect.
    pub fn config(&self) -> &ScanConfig {
        &self.config
    }

    /// Adjusts the per-range target cap for subsequent runs (used by
    /// campaign drivers that scan many ranges at one scale).
    pub fn set_max_targets(&mut self, max_targets: Option<u64>) {
        self.config.max_targets = max_targets;
    }

    /// Toggles silent-target tracking for subsequent runs (used by the
    /// campaign mop-up pass).
    pub fn set_record_silent(&mut self, record_silent: bool) {
        self.config.record_silent = record_silent;
    }

    /// Toggles walk-position tracking for subsequent runs: when on,
    /// [`ScanResults::record_positions`] and
    /// [`ScanResults::silent_positions`] carry each record's / silent
    /// target's walk position. Tracking never changes any other output.
    pub fn set_track_positions(&mut self, track: bool) {
        self.track_positions = track;
    }

    /// Reconfigures the `(shard, shards)` pair plus a leading-position
    /// skip for subsequent runs. This is the sub-shard form intra-block
    /// splits run in: a split unit covering base walk positions
    /// `{offset + j·stride : j < cap}` executes as shard
    /// `offset % stride` of `stride` with the first `offset / stride`
    /// positions of that shard walk discarded, so `offset ≥ stride`
    /// never violates the `shard < shards` invariant.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0` or `shard >= shards`.
    pub fn set_sub_shard(&mut self, shard: u64, shards: u64, walk_skip: u64) {
        assert!(shards > 0, "shards must be nonzero");
        assert!(shard < shards, "shard index out of range");
        self.config.shard = shard;
        self.config.shards = shards;
        self.walk_skip = walk_skip;
    }

    /// The `(shard, shards, walk_skip)` triple in effect (so drivers can
    /// save and restore it around sub-shard runs).
    pub fn sub_shard(&self) -> (u64, u64, u64) {
        (self.config.shard, self.config.shards, self.walk_skip)
    }

    /// Arms (or disarms, with `None`) a cooperative yield request for
    /// subsequent runs. When the shared flag is set mid-run, the scanner
    /// stops drawing fresh targets at the next slot boundary with
    /// in-flight == 0, finishes end-of-run accounting for the consumed
    /// prefix, and returns with [`ScanResults::yielded`] — the executor
    /// then splits the unconsumed remainder across idle workers. A run
    /// never yields before consuming at least one index, and ignores
    /// requests once fewer than `min_remaining` positions remain.
    pub fn set_yield_request(&mut self, flag: Option<Arc<AtomicBool>>, min_remaining: u64) {
        self.yield_flag = flag;
        self.yield_min_remaining = min_remaining.max(1);
    }

    /// Forces the yield gate open once `consumed` reaches `at` indices
    /// (deterministic split point for tests and CI smokes), regardless
    /// of the shared flag. `None` disables.
    pub fn set_force_yield_at(&mut self, at: Option<u64>) {
        self.force_yield_at = at;
    }

    /// The stateless validator (shared with helper probes).
    pub fn validator(&self) -> &Validator {
        &self.validator
    }

    /// Borrows the underlying network.
    pub fn network_mut(&mut self) -> &mut N {
        &mut self.network
    }

    /// Consumes the scanner, returning the network.
    pub fn into_network(self) -> N {
        self.network
    }

    /// Sends one probe to an explicit destination and classifies responses.
    /// Used by the application-layer and loop scanners for targeted probes.
    /// Counts into the same `scan.*` metrics as [`Scanner::run`], so
    /// targeted passes (mop-up, loop detection) share the accounting.
    pub fn probe_addr(
        &mut self,
        dst: Ip6,
        module: &dyn ProbeModule,
        hop_limit: u8,
    ) -> Vec<(Ip6, ProbeResult)> {
        let mut scratch = Vec::new();
        let mut out = Vec::new();
        self.probe_addr_into(dst, module, hop_limit, &mut scratch, &mut out);
        out
    }

    /// [`probe_addr`](Self::probe_addr) into caller-owned buffers: the
    /// raw responses land in `scratch` and the classified results in
    /// `out` (both cleared first). Targeted inner loops — loop
    /// detection, application grabs, adaptive sampling — reuse the
    /// buffers across probes so the steady state allocates nothing.
    pub fn probe_addr_into(
        &mut self,
        dst: Ip6,
        module: &dyn ProbeModule,
        hop_limit: u8,
        scratch: &mut Vec<Ipv6Packet>,
        out: &mut Vec<(Ip6, ProbeResult)>,
    ) {
        let probe = module.build(self.config.source, dst, hop_limit, &self.validator);
        self.metrics.sent.inc();
        scratch.clear();
        out.clear();
        self.network.handle_into(probe, scratch);
        for resp in scratch.iter() {
            let result = module.classify(resp, &self.validator);
            self.metrics.received.inc();
            if matches!(result, ProbeResult::Invalid) {
                self.metrics.invalid.inc();
            } else {
                self.metrics.valid.inc();
            }
            out.push((resp.src, result));
        }
        self.network.flush_telemetry();
    }

    /// Scans one range with a probe module, honouring the blocklist.
    ///
    /// Runs the full loss-recovery pipeline on a virtual clock (one tick
    /// per send slot, forwarded to the network via [`Network::tick`]):
    /// unanswered probes are retransmitted with fresh host bits under
    /// exponential backoff, a retransmission is suppressed when the answer
    /// arrives (possibly delayed/jittered) before its timer fires, and the
    /// scan drains in-flight responses before returning. With the default
    /// `probes_per_target = 1` no retry state is kept and behaviour
    /// matches the paper's single-probe discipline.
    pub fn run(
        &mut self,
        range: &ScanRange,
        module: &dyn ProbeModule,
        blocklist: &Blocklist,
    ) -> ScanResults {
        self.run_inner(range, module, blocklist, None)
    }

    /// Runs the `range_index`-th range of a checkpointed session under an
    /// explicit [`RangeMode`]: replay the records of an already-completed
    /// range, resume a mid-range checkpoint, or start fresh. Drivers
    /// iterate their range list through this method so the attached
    /// [`RunSink`] stamps every journalled record and checkpoint with the
    /// right range index.
    pub fn run_checkpointed(
        &mut self,
        range_index: u32,
        range: &ScanRange,
        module: &dyn ProbeModule,
        blocklist: &Blocklist,
        mode: RangeMode,
    ) -> ScanResults {
        match mode {
            RangeMode::Skip(records) => ScanResults {
                records,
                ..ScanResults::default()
            },
            RangeMode::Fresh => {
                if let Some(sink) = self.sink.as_mut() {
                    sink.begin_range(range_index, None);
                }
                self.run_inner(range, module, blocklist, None)
            }
            RangeMode::Resume(resume) => {
                if let Some(sink) = self.sink.as_mut() {
                    sink.begin_range(range_index, Some(resume.state.run_wal_start));
                }
                self.run_inner(range, module, blocklist, Some(*resume))
            }
        }
    }

    fn run_inner(
        &mut self,
        range: &ScanRange,
        module: &dyn ProbeModule,
        blocklist: &Blocklist,
        resume: Option<RunResume>,
    ) -> ScanResults {
        if self.config.engine == ScanEngine::Reactor {
            return self.run_reactor(range, module, blocklist, resume);
        }
        let mut results = ScanResults::default();
        let mut limiter = self.config.rate_pps.map(|pps| RateLimiter::new(pps, 64));
        let mut adaptive = if self.config.adaptive_rate {
            self.config.rate_pps.map(AdaptiveRateController::standard)
        } else {
            None
        };
        let attempts = self.config.probes_per_target.max(1);
        let (base, run_start_tick, mut gen, mut state, mut now) = match resume {
            None => (
                self.metrics.baseline(),
                self.total_ticks,
                TargetGen::with_skip(&self.config, range, self.walk_skip),
                RecoveryState::default(),
                0u64,
            ),
            Some(r) => {
                // Mid-range resume: the journal replayed the records
                // emitted before the checkpoint; every run local restarts
                // from the captured state, so the loop below re-executes
                // the tail of the range exactly as the killed run would
                // have continued it.
                results.records = r.records;
                let rs = &r.state;
                if let (Some(ctrl), Some(a)) = (adaptive.as_mut(), rs.adaptive.as_ref()) {
                    ctrl.restore_state(
                        a.current_pps,
                        a.sent,
                        a.valid,
                        a.baseline_bits.map(f64::from_bits),
                    );
                }
                (
                    MetricsBaseline::from_raw(rs.baseline),
                    rs.run_start_tick,
                    TargetGen::restore(&self.config, range, rs),
                    RecoveryState::restore(rs),
                    rs.now,
                )
            }
        };
        // Records already durable in the journal; everything past this
        // index still needs journalling.
        let mut journaled = results.records.len();
        // Per-slot metrics are tallied locally and flushed at observation
        // boundaries (monitor lines, every 1024 slots, run end) — see
        // [`HotTally`]. Received
        // packets land in one scratch buffer reused across every slot.
        let mut tally = HotTally::default();
        let mut recv_buf: Vec<Ipv6Packet> = Vec::new();
        let mut yielding = false;

        loop {
            if self.abort.as_ref().is_some_and(AbortSignal::is_set) {
                // Best-effort final checkpoint at this slot boundary (a
                // no-op without a sink or with responses still in
                // flight), then stop.
                self.checkpoint_now(
                    &gen,
                    &state,
                    &adaptive,
                    &base,
                    now,
                    run_start_tick,
                    &mut tally,
                );
                results.interrupted = true;
                break;
            }
            if self.sink.as_ref().is_some_and(|s| s.due()) {
                self.checkpoint_now(
                    &gen,
                    &state,
                    &adaptive,
                    &base,
                    now,
                    run_start_tick,
                    &mut tally,
                );
            }
            // Cooperative split point: once the gate fires, stop drawing
            // fresh targets and fall through to the drain branch, so the
            // consumed prefix completes exactly as a standalone run over
            // that prefix would.
            if !yielding && self.yield_due(&gen) {
                yielding = true;
            }
            // One send slot: a due retransmission wins over a fresh target.
            let job = if let Some(entry) = state.due_retry(now) {
                Some((entry.target, entry.attempt, entry.position))
            } else if let Some(target) = (!yielding).then(|| gen.next_target(range)).flatten() {
                let position = gen.consumed - 1;
                state.probed.push(target);
                if self.track_positions {
                    state.probed_positions.push(position);
                }
                Some((target, 0, position))
            } else if !state.retries.is_empty() || self.network.in_flight() > 0 {
                // Fresh walk done: drain timers and in-flight responses
                // without sending.
                None
            } else {
                break;
            };

            if let Some((target, attempt, position)) = job {
                // Fresh host bits per attempt: a lost exchange is retried
                // on a new (deterministically lossy) path.
                let dst = fill_host_bits(target, self.config.seed.wrapping_add(attempt as u64));
                if !blocklist.is_allowed(dst) {
                    tally.blocked += 1;
                    continue;
                }
                if let Some(ctrl) = adaptive.as_mut() {
                    // Pace at the controller's current rate; accounted, not
                    // slept, like the fixed budget below.
                    tally.paced_nanos += 1_000_000_000 / ctrl.current_pps().max(1);
                    ctrl.on_probe();
                } else if let Some(limiter) = limiter.as_mut() {
                    // Account the pacing this probe would cost; the simulator
                    // answers instantly, so we track instead of sleeping.
                    tally.paced_nanos += 1_000_000_000 / limiter.rate_pps().max(1);
                }
                let probe = module.build(
                    self.config.source,
                    dst,
                    self.config.hop_limit,
                    &self.validator,
                );
                tally.sent += 1;
                if attempt > 0 {
                    tally.retransmits += 1;
                }
                if self.telemetry.tracer.is_enabled() {
                    self.telemetry.tracer.event(
                        self.total_ticks,
                        "scan.send",
                        vec![
                            ("attempt", (attempt as u64).into()),
                            ("dst", dst.to_string().into()),
                        ],
                    );
                }
                state.outstanding.insert(
                    dst,
                    Outstanding {
                        target,
                        attempt,
                        answered: false,
                        sent_tick: now,
                        position,
                    },
                );
                // Bounded queue: an overflowing retry is abandoned (the
                // target is then counted in `gave_up` if it stays silent).
                if attempt + 1 < attempts && state.retries.len() < self.config.max_retry_backlog {
                    let backoff = self.config.rto_ticks << attempt;
                    self.metrics.backoff_ticks.record(backoff);
                    state.schedule(now + backoff, target, attempt + 1, dst, position);
                }
                recv_buf.clear();
                self.network.handle_into(probe, &mut recv_buf);
                self.absorb(
                    &recv_buf,
                    module,
                    &mut state,
                    &mut adaptive,
                    &mut results,
                    &mut tally,
                    now,
                );
            }

            recv_buf.clear();
            self.network.tick_into(1, &mut recv_buf);
            now += 1;
            self.total_ticks += 1;
            // Progress heartbeat: surface the batched tallies every 1024
            // slots so concurrent observers of the registry — the campaign
            // watchdog's probes-sent heartbeat above all — see a live run
            // advancing instead of a counter frozen until run end. Counters
            // are additive, so flush timing cannot change any final
            // snapshot; the cost is a handful of atomic adds per KiB of
            // slots.
            if self.total_ticks & 0x3ff == 0 {
                tally.flush(&self.metrics);
            }
            if let Some(sink) = self.sink.as_mut() {
                sink.tick();
            }
            if let Some(monitor) = self.monitor.as_mut() {
                if monitor.is_due(self.total_ticks) {
                    // Flush batched tallies so the status line is exact.
                    tally.flush(&self.metrics);
                    monitor.poll(self.total_ticks);
                }
            }
            self.absorb(
                &recv_buf,
                module,
                &mut state,
                &mut adaptive,
                &mut results,
                &mut tally,
                now,
            );
            if let Some(sink) = self.sink.as_mut() {
                // Journal this slot's records before the next checkpoint
                // can reference their sequence numbers.
                for r in &results.records[journaled..] {
                    sink.journal(r);
                }
                journaled = results.records.len();
            }
            self.mirror_durability();
        }

        tally.flush(&self.metrics);
        self.network.flush_telemetry();
        results.consumed = gen.consumed;
        results.yielded = yielding && !results.interrupted && gen.unconsumed() > 0;

        if results.interrupted {
            // Partial run: report the delta so far and leave the last
            // durable checkpoint as the resume point. Per-target
            // give-up/silence accounting only makes sense for a range
            // that actually finished.
            results.stats = self.metrics.stats_since(&base);
            return results;
        }

        // Per-target recovery accounting, in deterministic probe order.
        // Abandonments are tallied locally and flushed in one counter add.
        let mut gave_up = 0u64;
        for (i, target) in state.probed.iter().enumerate() {
            if state.answered.contains(target) {
                continue;
            }
            if attempts > 1 {
                gave_up += 1;
            }
            if self.config.record_silent {
                results.silent_targets.push(*target);
                if self.track_positions {
                    results.silent_positions.push(state.probed_positions[i]);
                }
            }
        }
        if gave_up > 0 {
            self.metrics.gave_up.add(gave_up);
        }
        results.stats = self.metrics.stats_since(&base);
        self.metrics.update_hit_rate();
        self.telemetry.tracer.span_event(
            run_start_tick,
            self.total_ticks,
            "scan.run",
            vec![
                ("sent", results.stats.sent.into()),
                ("valid", results.stats.valid.into()),
            ],
        );
        if self.sink.is_some() {
            // Durably mark the range complete (`run: None`): a resume
            // replays its records from the journal and moves on.
            let snap = self.telemetry.registry.snapshot();
            if let Some(sink) = self.sink.as_mut() {
                sink.write_checkpoint(self.total_ticks, snap, None);
            }
            self.mirror_durability();
        }
        results
    }

    /// Whether the cooperative yield gate fires at this slot boundary.
    /// Strict progress is guaranteed — a run never yields before
    /// consuming at least one index, so repeated splits always
    /// terminate — and a run whose walk is already exhausted completes
    /// normally instead of yielding.
    fn yield_due(&self, gen: &TargetGen) -> bool {
        if gen.consumed == 0 {
            return false;
        }
        let remaining = gen.unconsumed();
        if remaining == 0 {
            return false;
        }
        if self.force_yield_at.is_some_and(|at| gen.consumed >= at) {
            return true;
        }
        remaining >= self.yield_min_remaining
            && self
                .yield_flag
                .as_ref()
                .is_some_and(|f| f.load(Ordering::Relaxed))
    }

    /// Mirrors the sink's degraded/healthy state into the
    /// `state.durability_degraded` gauge on transitions. The gauge is
    /// only created on the first degradation, so fault-free runs export
    /// byte-identical snapshots with or without a sink attached.
    fn mirror_durability(&mut self) {
        let degraded = self.sink.as_ref().is_some_and(RunSink::is_degraded);
        if degraded != self.durability_flagged {
            self.durability_flagged = degraded;
            self.telemetry
                .registry
                .gauge(names::DURABILITY_DEGRADED)
                .set(degraded as u64);
        }
    }

    /// Captures and writes a mid-range checkpoint, provided a sink is
    /// attached and the network has nothing in flight (a snapshot taken
    /// with responses pending downstream could not be replayed
    /// deterministically — the attempt is simply retried next slot).
    #[allow(clippy::too_many_arguments)]
    fn checkpoint_now(
        &mut self,
        gen: &TargetGen,
        state: &RecoveryState,
        adaptive: &Option<AdaptiveRateController>,
        base: &MetricsBaseline,
        now: u64,
        run_start_tick: u64,
        tally: &mut HotTally,
    ) {
        if self.sink.is_none() || self.network.in_flight() > 0 {
            return;
        }
        // The snapshot must carry everything counted so far: flush the
        // local tallies and any batched network-side telemetry first.
        tally.flush(&self.metrics);
        self.network.flush_telemetry();
        let snap = self.telemetry.registry.snapshot();
        let (cursor, remaining, pending_indices) = gen.capture();
        let (outstanding, retries, answered) = state.capture();
        let sink = self.sink.as_mut().expect("sink presence checked above");
        let run = RunState {
            now,
            run_start_tick,
            run_wal_start: sink.run_wal_start(),
            cursor,
            remaining,
            pending_indices,
            outstanding,
            retries,
            retry_seq: state.retry_seq,
            answered,
            probed: state.probed.clone(),
            adaptive: adaptive.as_ref().map(|c| {
                let (current_pps, sent, valid, baseline) = c.checkpoint_state();
                AdaptiveState {
                    current_pps,
                    sent,
                    valid,
                    baseline_bits: baseline.map(f64::to_bits),
                }
            }),
            baseline: base.to_raw(),
        };
        sink.write_checkpoint(self.total_ticks, snap, Some(run));
    }

    /// Classifies a batch of received packets, attributing each back to its
    /// probe through the response itself (stateless, like the C scanner:
    /// echo replies carry the probed address as their source, ICMPv6 errors
    /// quote it in the invoking packet).
    #[allow(clippy::too_many_arguments)]
    fn absorb(
        &mut self,
        batch: &[Ipv6Packet],
        module: &dyn ProbeModule,
        state: &mut RecoveryState,
        adaptive: &mut Option<AdaptiveRateController>,
        results: &mut ScanResults,
        tally: &mut HotTally,
        now: u64,
    ) {
        for resp in batch {
            tally.received += 1;
            match module.classify(resp, &self.validator) {
                ProbeResult::Invalid => tally.invalid += 1,
                result => {
                    let probe_dst = probe_dst_of(resp);
                    let Some(out) = state.outstanding.get_mut(&probe_dst) else {
                        // Validated but unattributable (a duplicate of a
                        // probe sent outside this run); not ours to record.
                        tally.invalid += 1;
                        continue;
                    };
                    let confidence = match out.attempt {
                        0 => Confidence::FirstTry,
                        n => Confidence::Retry(n),
                    };
                    let first_answer = !out.answered;
                    out.answered = true;
                    if first_answer
                        && out.attempt > 0
                        && matches!(
                            result,
                            ProbeResult::Unreachable { .. } | ProbeResult::TimeExceeded
                        )
                    {
                        self.metrics.rate_limited_suspected.inc();
                    }
                    tally.valid += 1;
                    let rtt = now.saturating_sub(out.sent_tick);
                    if rtt == 0 {
                        // Same-slot answers dominate; batch them and flush
                        // through `Histogram::record_n`.
                        tally.rtt_zero += 1;
                    } else {
                        self.metrics.rtt_ticks.record(rtt);
                    }
                    if self.telemetry.tracer.is_enabled() {
                        self.telemetry.tracer.event(
                            self.total_ticks,
                            "scan.recv",
                            vec![
                                ("rtt_ticks", rtt.into()),
                                ("attempt", (out.attempt as u64).into()),
                            ],
                        );
                    }
                    if let Some(ctrl) = adaptive.as_mut() {
                        ctrl.on_valid();
                    }
                    state.answered.insert(out.target);
                    if self.track_positions {
                        results.record_positions.push(out.position);
                    }
                    results.records.push(ScanRecord {
                        target: out.target,
                        probe_dst,
                        responder: resp.src,
                        result,
                        confidence,
                    });
                }
            }
        }
    }

    /// Scans several ranges, merging results.
    pub fn run_all(
        &mut self,
        ranges: &[ScanRange],
        module: &dyn ProbeModule,
        blocklist: &Blocklist,
    ) -> ScanResults {
        let mut all = ScanResults::default();
        for r in ranges {
            let one = self.run(r, module, blocklist);
            all.stats.merge(&one.stats);
            all.records.extend(one.records);
        }
        all
    }
}

/// Indices per refill of the streaming target generator. Large enough to
/// amortize dispatch, small enough to stay in L1.
const TARGET_CHUNK: usize = 256;

/// Streaming probe-order generator: walks the configured permutation
/// shard in fixed-size chunks instead of materializing the whole order up
/// front (a 2³²-index shard used to cost a 32 GiB `Vec` in principle and a
/// cap-sized allocation in practice; the generator is O(1) in space and
/// emits exactly the order [`Scanner::run`] always used).
#[derive(Debug)]
struct TargetGen {
    stream: IndexStream,
    /// Remaining `max_targets` budget, counted in raw walk steps (for
    /// the cyclic permutation, group steps — fringe sentinels included),
    /// so the budget partitions exactly under nested sub-shard splits.
    remaining: u64,
    buf: [u64; TARGET_CHUNK],
    len: usize,
    pos: usize,
    /// Indices consumed so far (excluding any leading skip) — the walk
    /// position counter split units are keyed by.
    consumed: u64,
}

/// The per-permutation walk state behind [`TargetGen`].
#[derive(Debug)]
enum IndexStream {
    /// Multiplicative-group walk over this scanner's shard.
    Cyclic(crate::cyclic::ShardIter),
    /// Index-addressable bijection evaluated at strided positions.
    Feistel {
        perm: FeistelPermutation,
        next_pos: u64,
        stride: u64,
    },
    /// Ascending strided positions, no permutation.
    Sequential {
        next_pos: u64,
        stride: u64,
        len: u64,
    },
}

impl TargetGen {
    fn new(config: &ScanConfig, range: &ScanRange) -> Self {
        let len = u64::try_from(range.space_size().min(u64::MAX as u128)).unwrap_or(u64::MAX);
        let (shard, shards) = (config.shard, config.shards);
        let stream = match config.permutation {
            Permutation::Cyclic => {
                IndexStream::Cyclic(Cycle::new(len, config.seed).iter_shard(shard, shards))
            }
            Permutation::Feistel => IndexStream::Feistel {
                perm: FeistelPermutation::new(len, config.seed),
                next_pos: shard,
                stride: shards,
            },
            Permutation::Sequential => IndexStream::Sequential {
                next_pos: shard,
                stride: shards,
                len,
            },
        };
        TargetGen {
            stream,
            remaining: config.max_targets.unwrap_or(u64::MAX),
            buf: [0; TARGET_CHUNK],
            len: 0,
            pos: 0,
            consumed: 0,
        }
    }

    /// A generator that transparently discards the first `skip` walk
    /// positions of the configured shard: the `max_targets` budget then
    /// applies to the positions *after* the skip and `consumed` restarts
    /// at zero. This is how a split unit `(offset, stride, cap)` runs:
    /// shard `offset % stride` of `stride`, skipping `offset / stride`
    /// positions — O(skip) index draws, uniform across all three
    /// permutation streams.
    fn with_skip(config: &ScanConfig, range: &ScanRange, skip: u64) -> Self {
        let mut gen = TargetGen::new(config, range);
        if skip > 0 {
            gen.remaining = gen.remaining.saturating_add(skip);
            for _ in 0..skip {
                if gen.next_index().is_none() {
                    break;
                }
            }
            gen.consumed = 0;
        }
        gen
    }

    /// Walk positions not yet consumed under the `max_targets` budget
    /// (drawn-but-buffered indices count as unconsumed).
    fn unconsumed(&self) -> u64 {
        self.remaining + (self.len - self.pos) as u64
    }

    /// The next fresh target, skipping indices the range cannot produce
    /// (cyclic fringe sentinels included). A skipped index still consumed
    /// one walk position of the `max_targets` budget — walk positions are
    /// raw permutation steps, the unit the sub-shard split math divides.
    fn next_target(&mut self, range: &ScanRange) -> Option<Prefix> {
        while let Some(i) = self.next_index() {
            if i == u64::MAX {
                continue; // cyclic fringe sentinel: no target at this step
            }
            if let Some(target) = range.nth(i) {
                return Some(target);
            }
        }
        None
    }

    /// The next permuted index, or `None` once the shard walk or the
    /// target cap is exhausted.
    fn next_index(&mut self) -> Option<u64> {
        if self.pos == self.len {
            self.refill();
            if self.pos == self.len {
                return None;
            }
        }
        let i = self.buf[self.pos];
        self.pos += 1;
        self.consumed += 1;
        Some(i)
    }

    fn refill(&mut self) {
        self.pos = 0;
        self.len = 0;
        let want = (TARGET_CHUNK as u64).min(self.remaining) as usize;
        if want == 0 {
            return;
        }
        let out = &mut self.buf[..want];
        let n = match &mut self.stream {
            IndexStream::Cyclic(walk) => walk.fill_raw(out),
            IndexStream::Feistel {
                perm,
                next_pos,
                stride,
            } => {
                let n = perm.fill(*next_pos, *stride, out);
                *next_pos = (n as u64)
                    .checked_mul(*stride)
                    .and_then(|step| next_pos.checked_add(step))
                    .unwrap_or(u64::MAX);
                n
            }
            IndexStream::Sequential {
                next_pos,
                stride,
                len,
            } => {
                let mut n = 0;
                while n < out.len() && *next_pos < *len {
                    out[n] = *next_pos;
                    n += 1;
                    // On overflow the walk is past every valid position
                    // (positions are < len <= u64::MAX), so MAX terminates.
                    *next_pos = next_pos.checked_add(*stride).unwrap_or(u64::MAX);
                }
                n
            }
        };
        self.len = n;
        self.remaining -= n as u64;
    }

    /// The complete generator state for a checkpoint: permutation cursor,
    /// remaining target budget, and the chunk-buffer run-ahead (indices
    /// drawn from the stream but not yet consumed by the scan).
    fn capture(&self) -> (CursorState, u64, Vec<u64>) {
        let cursor = match &self.stream {
            IndexStream::Cyclic(walk) => {
                let (current, remaining_walk) = walk.position();
                CursorState::Cyclic {
                    current,
                    remaining_walk,
                }
            }
            IndexStream::Feistel { next_pos, .. } => CursorState::Feistel {
                next_pos: *next_pos,
            },
            IndexStream::Sequential { next_pos, .. } => CursorState::Sequential {
                next_pos: *next_pos,
            },
        };
        (
            cursor,
            self.remaining,
            self.buf[self.pos..self.len].to_vec(),
        )
    }

    /// Rebuilds a generator from checkpointed state (the configuration
    /// fingerprint guarantees `config`/`range` match what was captured).
    fn restore(config: &ScanConfig, range: &ScanRange, rs: &RunState) -> TargetGen {
        let mut gen = TargetGen::new(config, range);
        match (&mut gen.stream, &rs.cursor) {
            (
                IndexStream::Cyclic(walk),
                CursorState::Cyclic {
                    current,
                    remaining_walk,
                },
            ) => walk.set_position(*current, *remaining_walk),
            (IndexStream::Feistel { next_pos, .. }, CursorState::Feistel { next_pos: p }) => {
                *next_pos = *p;
            }
            (IndexStream::Sequential { next_pos, .. }, CursorState::Sequential { next_pos: p }) => {
                *next_pos = *p;
            }
            _ => panic!("checkpoint cursor does not match the configured permutation"),
        }
        let n = rs.pending_indices.len();
        assert!(
            n <= TARGET_CHUNK,
            "checkpoint carries {n} pending indices, generator chunk is {TARGET_CHUNK}"
        );
        gen.buf[..n].copy_from_slice(&rs.pending_indices);
        gen.pos = 0;
        gen.len = n;
        gen.remaining = rs.remaining;
        gen
    }
}

/// One sent probe awaiting (or having received) its answer.
#[derive(Debug, Clone, Copy)]
struct Outstanding {
    target: Prefix,
    attempt: u32,
    answered: bool,
    /// Run-local virtual tick the probe went out at (RTT measurement).
    sent_tick: u64,
    /// Walk position of the fresh probe this entry descends from. Not
    /// persisted in checkpoints (position-tracked runs never resume
    /// mid-unit); restores default it to zero.
    position: u64,
}

/// A scheduled retransmission. Ordering is reversed so a `BinaryHeap`
/// behaves as a min-heap on `(due_tick, seq)` — `seq` breaks ties
/// deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct RetryEntry {
    due_tick: u64,
    seq: u64,
    target: Prefix,
    attempt: u32,
    prev_dst: Ip6,
    /// Walk position carried from the original fresh probe (see
    /// [`Outstanding::position`]).
    position: u64,
}

impl Ord for RetryEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (other.due_tick, other.seq).cmp(&(self.due_tick, self.seq))
    }
}

impl PartialOrd for RetryEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Book-keeping for one [`Scanner::run`]: outstanding probes, the bounded
/// retransmission queue, and per-target recovery outcomes.
#[derive(Debug, Default)]
struct RecoveryState {
    outstanding: HashMap<Ip6, Outstanding>,
    retries: BinaryHeap<RetryEntry>,
    retry_seq: u64,
    answered: HashSet<Prefix>,
    probed: Vec<Prefix>,
    /// Walk position of each `probed` entry (parallel vector); filled
    /// only under position tracking.
    probed_positions: Vec<u64>,
}

impl RecoveryState {
    fn schedule(
        &mut self,
        due_tick: u64,
        target: Prefix,
        attempt: u32,
        prev_dst: Ip6,
        position: u64,
    ) {
        let seq = self.retry_seq;
        self.retry_seq += 1;
        self.retries.push(RetryEntry {
            due_tick,
            seq,
            target,
            attempt,
            prev_dst,
            position,
        });
    }

    /// Pops the next due retransmission whose previous attempt is still
    /// unanswered (answered ones are suppressed silently).
    fn due_retry(&mut self, now: u64) -> Option<RetryEntry> {
        while self.retries.peek().is_some_and(|r| r.due_tick <= now) {
            let entry = self.retries.pop().expect("peeked");
            let unanswered = self
                .outstanding
                .get(&entry.prev_dst)
                .is_some_and(|o| !o.answered);
            if unanswered {
                return Some(entry);
            }
        }
        None
    }

    /// Recovery state in canonical (sorted) order for a checkpoint. The
    /// hash map and heap have no stable iteration order of their own;
    /// sorting by destination / `(due_tick, seq)` makes checkpoint bytes
    /// deterministic, and on restore the heap rebuilds to an equivalent
    /// pop order because `(due_tick, seq)` keys are unique.
    fn capture(
        &self,
    ) -> (
        Vec<xmap_state::OutstandingEntry>,
        Vec<xmap_state::RetryEntryState>,
        Vec<Prefix>,
    ) {
        let mut outstanding: Vec<xmap_state::OutstandingEntry> = self
            .outstanding
            .iter()
            .map(|(dst, o)| xmap_state::OutstandingEntry {
                dst: dst.bits(),
                target: o.target,
                attempt: o.attempt,
                answered: o.answered,
                sent_tick: o.sent_tick,
            })
            .collect();
        outstanding.sort_by_key(|o| o.dst);
        let mut retries: Vec<xmap_state::RetryEntryState> = self
            .retries
            .iter()
            .map(|r| xmap_state::RetryEntryState {
                due_tick: r.due_tick,
                seq: r.seq,
                target: r.target,
                attempt: r.attempt,
                prev_dst: r.prev_dst.bits(),
            })
            .collect();
        retries.sort_by_key(|r| (r.due_tick, r.seq));
        let mut answered: Vec<Prefix> = self.answered.iter().copied().collect();
        answered.sort();
        (outstanding, retries, answered)
    }

    /// Rebuilds recovery state captured by [`RecoveryState::capture`].
    fn restore(rs: &RunState) -> RecoveryState {
        let mut s = RecoveryState {
            retry_seq: rs.retry_seq,
            probed: rs.probed.clone(),
            ..RecoveryState::default()
        };
        for o in &rs.outstanding {
            s.outstanding.insert(
                o.dst.into(),
                Outstanding {
                    target: o.target,
                    attempt: o.attempt,
                    answered: o.answered,
                    sent_tick: o.sent_tick,
                    position: 0,
                },
            );
        }
        for r in &rs.retries {
            s.retries.push(RetryEntry {
                due_tick: r.due_tick,
                seq: r.seq,
                target: r.target,
                attempt: r.attempt,
                prev_dst: r.prev_dst.into(),
                position: 0,
            });
        }
        s.answered = rs.answered.iter().copied().collect();
        s
    }
}

/// The probed destination a response packet speaks about.
fn probe_dst_of(resp: &Ipv6Packet) -> Ip6 {
    match &resp.payload {
        Payload::Icmp(Icmpv6::DestUnreachable { invoking, .. })
        | Payload::Icmp(Icmpv6::TimeExceeded { invoking }) => invoking.dst,
        // Echo replies and transport answers come from the probed address.
        _ => resp.src,
    }
}

/// A pipelined scan: a generator thread walks the permutation and builds
/// destinations; the calling thread probes and classifies. Results are
/// identical to [`Scanner::run`] (up to record order); the pipeline exists
/// to mirror the C scanner's threaded architecture and to overlap target
/// generation with probing.
pub fn run_pipelined<N: Network>(
    scanner: &mut Scanner<N>,
    range: &ScanRange,
    module: &dyn ProbeModule,
    blocklist: &Blocklist,
) -> ScanResults {
    let config = scanner.config.clone();
    let range = *range;
    let (tx, rx) = mpsc::sync_channel::<(Prefix, Ip6)>(1024);

    std::thread::scope(|scope| {
        let blocklist_ref = &blocklist;
        let gen_config = config.clone();
        scope.spawn(move || {
            let len = u64::try_from(range.space_size().min(u64::MAX as u128)).unwrap_or(u64::MAX);
            let cycle = Cycle::new(len, gen_config.seed);
            // The cap counts raw walk steps (fringe steps included), the
            // same budget unit `TargetGen` uses, so the pipeline probes
            // exactly the targets the lock-step engine would.
            let mut budget = gen_config.max_targets.unwrap_or(u64::MAX);
            let mut walk = cycle.iter_shard(gen_config.shard, gen_config.shards);
            let mut chunk = [0u64; 1];
            while budget > 0 && walk.fill_raw(&mut chunk) == 1 {
                budget -= 1;
                let index = chunk[0];
                if index == u64::MAX {
                    continue;
                }
                let Some(target) = range.nth(index) else {
                    continue;
                };
                let dst = fill_host_bits(target, gen_config.seed);
                if tx.send((target, dst)).is_err() {
                    break;
                }
            }
        });

        let base = scanner.metrics.baseline();
        let mut results = ScanResults::default();
        while let Ok((target, dst)) = rx.recv() {
            if !blocklist_ref.is_allowed(dst) {
                scanner.metrics.blocked.inc();
                continue;
            }
            let probe = module.build(config.source, dst, config.hop_limit, &scanner.validator);
            scanner.metrics.sent.inc();
            for resp in scanner.network.handle(probe) {
                scanner.metrics.received.inc();
                match module.classify(&resp, &scanner.validator) {
                    ProbeResult::Invalid => scanner.metrics.invalid.inc(),
                    result => {
                        scanner.metrics.valid.inc();
                        scanner.metrics.rtt_ticks.record(0);
                        results.records.push(ScanRecord {
                            target,
                            probe_dst: dst,
                            responder: resp.src,
                            result,
                            confidence: Confidence::FirstTry,
                        });
                    }
                }
            }
        }
        results.stats = scanner.metrics.stats_since(&base);
        scanner.metrics.update_hit_rate();
        results
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::IcmpEchoProbe;
    use xmap_netsim::packet::{Icmpv6, Ipv6Packet, Payload};

    #[test]
    fn stats_merge_sums_counters_and_recomputes_hit_rate() {
        let mut a = ScanStats {
            sent: 1000,
            blocked: 3,
            received: 120,
            invalid: 20,
            valid: 100,
            retransmits: 50,
            rate_limited_suspected: 4,
            gave_up: 7,
            paced_secs: 0.25,
        };
        let b = ScanStats {
            sent: 3000,
            blocked: 1,
            received: 350,
            invalid: 50,
            valid: 300,
            retransmits: 10,
            rate_limited_suspected: 2,
            gave_up: 1,
            paced_secs: 0.75,
        };
        a.merge(&b);
        assert_eq!(a.sent, 4000);
        assert_eq!(a.blocked, 4);
        assert_eq!(a.received, 470);
        assert_eq!(a.invalid, 70);
        assert_eq!(a.valid, 400);
        assert_eq!(a.retransmits, 60);
        assert_eq!(a.rate_limited_suspected, 6);
        assert_eq!(a.gave_up, 8);
        assert!((a.paced_secs - 1.0).abs() < 1e-12);
        assert!((a.hit_rate() - 0.1).abs() < 1e-12);

        // Skewed sides: merged hit rate is the ratio of merged totals
        // (≈ 0.0909), not the mean of the per-side rates (0.3).
        let mut skew = ScanStats {
            sent: 100,
            valid: 50,
            ..ScanStats::default()
        };
        skew.merge(&ScanStats {
            sent: 1000,
            valid: 50,
            ..ScanStats::default()
        });
        assert!((skew.hit_rate() - 100.0 / 1100.0).abs() < 1e-12);
    }

    #[test]
    fn stats_merge_saturates_instead_of_wrapping() {
        let near_full = ScanStats {
            sent: u64::MAX - 1,
            blocked: u64::MAX,
            received: u64::MAX - 5,
            invalid: u64::MAX,
            valid: u64::MAX - 2,
            retransmits: u64::MAX,
            rate_limited_suspected: u64::MAX,
            gave_up: u64::MAX,
            paced_secs: 1.0,
        };
        let mut merged = near_full;
        merged.merge(&near_full);
        assert_eq!(merged.sent, u64::MAX);
        assert_eq!(merged.blocked, u64::MAX);
        assert_eq!(merged.received, u64::MAX);
        assert_eq!(merged.invalid, u64::MAX);
        assert_eq!(merged.valid, u64::MAX);
        assert_eq!(merged.retransmits, u64::MAX);
        assert_eq!(merged.rate_limited_suspected, u64::MAX);
        assert_eq!(merged.gave_up, u64::MAX);
        assert!((merged.paced_secs - 2.0).abs() < 1e-12);
        // Saturated counters still yield a sane (≤ 1) hit rate.
        assert!(merged.hit_rate() <= 1.0);
    }

    /// A toy network: even /64 indices host a responder that answers
    /// unreachable from a derived address; odd ones are silent.
    struct ToyNet {
        handled: u64,
    }

    impl Network for ToyNet {
        fn handle(&mut self, p: Ipv6Packet) -> Vec<Ipv6Packet> {
            self.handled += 1;
            let idx = p.dst.bit_slice(32, 64);
            if !idx.is_multiple_of(2) {
                return Vec::new();
            }
            vec![Ipv6Packet {
                src: p.dst.network(64).with_iid(0xbeef),
                dst: p.src,
                hop_limit: 60,
                payload: Payload::Icmp(Icmpv6::DestUnreachable {
                    code: xmap_netsim::packet::UnreachCode::AddressUnreachable,
                    invoking: p.quote(),
                }),
            }]
        }
    }

    fn range() -> ScanRange {
        "2001:100::/32-64".parse().unwrap()
    }

    #[test]
    fn scan_records_valid_responses() {
        let mut s = Scanner::new(
            ToyNet { handled: 0 },
            ScanConfig {
                max_targets: Some(1000),
                ..Default::default()
            },
        );
        let res = s.run(&range(), &IcmpEchoProbe, &Blocklist::allow_all());
        assert_eq!(res.stats.sent, 1000);
        // Half the targets respond.
        assert!(
            (420..=580).contains(&res.stats.valid),
            "{}",
            res.stats.valid
        );
        assert_eq!(res.stats.valid as usize, res.records.len());
        assert_eq!(res.stats.invalid, 0);
        for r in &res.records {
            assert!(matches!(r.result, ProbeResult::Unreachable { .. }));
            assert_eq!(r.responder.iid(), 0xbeef);
            assert!(r.target.contains(r.probe_dst));
        }
    }

    #[test]
    fn blocklist_skips_targets() {
        let mut bl = Blocklist::allow_all();
        bl.insert(
            "2001:100::/33".parse().unwrap(),
            crate::blocklist::Verdict::Deny,
        );
        let mut s = Scanner::new(
            ToyNet { handled: 0 },
            ScanConfig {
                max_targets: Some(1000),
                ..Default::default()
            },
        );
        let res = s.run(&range(), &IcmpEchoProbe, &bl);
        assert!(res.stats.blocked > 300, "{}", res.stats.blocked);
        assert_eq!(res.stats.blocked + res.stats.sent, 1000);
    }

    #[test]
    fn shards_cover_disjoint_targets() {
        let mut seen = std::collections::HashSet::new();
        for shard in 0..4 {
            let mut s = Scanner::new(
                ToyNet { handled: 0 },
                ScanConfig {
                    shard,
                    shards: 4,
                    max_targets: Some(250),
                    ..Default::default()
                },
            );
            let res = s.run(&range(), &IcmpEchoProbe, &Blocklist::allow_all());
            for r in res.records {
                assert!(seen.insert(r.target), "target probed twice: {}", r.target);
            }
        }
    }

    #[test]
    fn sequential_and_cyclic_find_same_population() {
        // Over the whole (tiny) space, probe order must not change findings.
        let tiny: ScanRange = "2001:100::/32-40".parse().unwrap(); // 256 targets
        let mut a = Scanner::new(
            ToyNet { handled: 0 },
            ScanConfig {
                permutation: Permutation::Cyclic,
                ..Default::default()
            },
        );
        let mut b = Scanner::new(
            ToyNet { handled: 0 },
            ScanConfig {
                permutation: Permutation::Sequential,
                ..Default::default()
            },
        );
        let mut c = Scanner::new(
            ToyNet { handled: 0 },
            ScanConfig {
                permutation: Permutation::Feistel,
                ..Default::default()
            },
        );
        let mut ra: Vec<_> = a
            .run(&tiny, &IcmpEchoProbe, &Blocklist::allow_all())
            .records;
        let mut rb: Vec<_> = b
            .run(&tiny, &IcmpEchoProbe, &Blocklist::allow_all())
            .records;
        let mut rc: Vec<_> = c
            .run(&tiny, &IcmpEchoProbe, &Blocklist::allow_all())
            .records;
        for r in [&mut ra, &mut rb, &mut rc] {
            r.sort_by_key(|x| x.target);
        }
        assert_eq!(ra, rb);
        assert_eq!(ra, rc);
    }

    #[test]
    fn rate_budget_is_accounted() {
        let mut s = Scanner::new(
            ToyNet { handled: 0 },
            ScanConfig {
                max_targets: Some(2500),
                rate_pps: Some(25_000),
                ..Default::default()
            },
        );
        let res = s.run(&range(), &IcmpEchoProbe, &Blocklist::allow_all());
        // 2500 probes at 25 kpps = 0.1 s.
        assert!(
            (res.stats.paced_secs - 0.1).abs() < 1e-9,
            "{}",
            res.stats.paced_secs
        );
    }

    #[test]
    fn pipelined_matches_single_threaded() {
        let mut s1 = Scanner::new(
            ToyNet { handled: 0 },
            ScanConfig {
                max_targets: Some(500),
                ..Default::default()
            },
        );
        let mut s2 = Scanner::new(
            ToyNet { handled: 0 },
            ScanConfig {
                max_targets: Some(500),
                ..Default::default()
            },
        );
        let a = s1.run(&range(), &IcmpEchoProbe, &Blocklist::allow_all());
        let b = run_pipelined(&mut s2, &range(), &IcmpEchoProbe, &Blocklist::allow_all());
        assert_eq!(a.stats.sent, b.stats.sent);
        assert_eq!(a.records, b.records);
    }

    #[test]
    fn probe_addr_targets_exact_destination() {
        let mut s = Scanner::new(ToyNet { handled: 0 }, ScanConfig::default());
        let dst: Ip6 = "2001:100:0:2::1".parse().unwrap(); // even index -> responds
        let out = s.probe_addr(dst, &IcmpEchoProbe, 64);
        assert_eq!(out.len(), 1);
        assert!(matches!(out[0].1, ProbeResult::Unreachable { .. }));
    }

    #[test]
    fn retries_recover_lost_responses() {
        /// Drops the first attempt to any /64 (seed-0 fill), answers
        /// retries.
        struct Flaky;
        impl Network for Flaky {
            fn handle(&mut self, p: Ipv6Packet) -> Vec<Ipv6Packet> {
                let first_attempt = p.dst
                    == crate::target::fill_host_bits(
                        xmap_addr::Prefix::new(p.dst.network(64), 64),
                        1,
                    );
                if first_attempt {
                    return Vec::new();
                }
                vec![Ipv6Packet {
                    src: p.dst.network(64).with_iid(0xbeef),
                    dst: p.src,
                    hop_limit: 60,
                    payload: Payload::Icmp(Icmpv6::DestUnreachable {
                        code: xmap_netsim::packet::UnreachCode::AddressUnreachable,
                        invoking: p.quote(),
                    }),
                }]
            }
        }
        let run = |k: u32| {
            let mut s = Scanner::new(
                Flaky,
                ScanConfig {
                    seed: 1,
                    max_targets: Some(100),
                    probes_per_target: k,
                    ..Default::default()
                },
            );
            s.run(&range(), &IcmpEchoProbe, &Blocklist::allow_all())
        };
        let one = run(1);
        assert_eq!(one.stats.valid, 0, "every first attempt is dropped");
        let two = run(2);
        assert_eq!(two.stats.valid, 100, "retries recover everything");
        assert_eq!(two.stats.sent, 200);
    }

    #[test]
    fn confidence_and_recovery_counters() {
        /// Answers only retransmissions (seed-1, attempt >= 1 fills).
        struct DropFirst;
        impl Network for DropFirst {
            fn handle(&mut self, p: Ipv6Packet) -> Vec<Ipv6Packet> {
                let first_attempt = p.dst
                    == crate::target::fill_host_bits(
                        xmap_addr::Prefix::new(p.dst.network(64), 64),
                        1,
                    );
                if first_attempt {
                    return Vec::new();
                }
                vec![Ipv6Packet {
                    src: p.dst.network(64).with_iid(0xbeef),
                    dst: p.src,
                    hop_limit: 60,
                    payload: Payload::Icmp(Icmpv6::DestUnreachable {
                        code: xmap_netsim::packet::UnreachCode::AddressUnreachable,
                        invoking: p.quote(),
                    }),
                }]
            }
        }
        let mut s = Scanner::new(
            DropFirst,
            ScanConfig {
                seed: 1,
                max_targets: Some(50),
                probes_per_target: 3,
                ..Default::default()
            },
        );
        let res = s.run(&range(), &IcmpEchoProbe, &Blocklist::allow_all());
        assert_eq!(res.stats.valid, 50);
        assert_eq!(res.stats.retransmits, 50, "one retry each, then answered");
        assert_eq!(res.stats.gave_up, 0);
        // Every answer came on the first retransmission and was an ICMPv6
        // error — the rate-limited signature.
        assert_eq!(res.stats.rate_limited_suspected, 50);
        assert!(res
            .records
            .iter()
            .all(|r| r.confidence == Confidence::Retry(1)));
    }

    #[test]
    fn gave_up_and_silent_targets_tracked() {
        // ToyNet: odd indices never answer.
        let run = |k: u32, record_silent: bool| {
            let mut s = Scanner::new(
                ToyNet { handled: 0 },
                ScanConfig {
                    max_targets: Some(200),
                    probes_per_target: k,
                    record_silent,
                    ..Default::default()
                },
            );
            s.run(&range(), &IcmpEchoProbe, &Blocklist::allow_all())
        };
        let single = run(1, true);
        assert_eq!(single.stats.gave_up, 0, "no retransmission attempted");
        let silent = single.silent_targets.len() as u64;
        assert_eq!(silent + single.stats.valid, 200);
        assert!(silent > 0);

        let retried = run(3, true);
        assert_eq!(
            retried.stats.gave_up, silent,
            "every silent target exhausted retries"
        );
        assert_eq!(retried.silent_targets, single.silent_targets);
        assert_eq!(retried.stats.retransmits, 2 * silent);

        let untracked = run(1, false);
        assert!(untracked.silent_targets.is_empty());
    }

    #[test]
    fn delayed_response_suppresses_retransmission() {
        /// Answers every probe, but 3 ticks late, through [`Network::tick`].
        struct SlowNet {
            clock: u64,
            queue: Vec<(u64, Ipv6Packet)>,
        }
        impl Network for SlowNet {
            fn handle(&mut self, p: Ipv6Packet) -> Vec<Ipv6Packet> {
                let resp = Ipv6Packet {
                    src: p.dst.network(64).with_iid(0xbeef),
                    dst: p.src,
                    hop_limit: 60,
                    payload: Payload::Icmp(Icmpv6::DestUnreachable {
                        code: xmap_netsim::packet::UnreachCode::AddressUnreachable,
                        invoking: p.quote(),
                    }),
                };
                self.queue.push((self.clock + 3, resp));
                Vec::new()
            }
            fn tick(&mut self, ticks: u64) -> Vec<Ipv6Packet> {
                self.clock += ticks;
                let clock = self.clock;
                let (due, rest): (Vec<_>, Vec<_>) = std::mem::take(&mut self.queue)
                    .into_iter()
                    .partition(|(d, _)| *d <= clock);
                self.queue = rest;
                due.into_iter().map(|(_, p)| p).collect()
            }
            fn in_flight(&self) -> usize {
                self.queue.len()
            }
        }
        let mut s = Scanner::new(
            SlowNet {
                clock: 0,
                queue: Vec::new(),
            },
            ScanConfig {
                max_targets: Some(100),
                probes_per_target: 3,
                ..Default::default()
            },
        );
        let res = s.run(&range(), &IcmpEchoProbe, &Blocklist::allow_all());
        // Every answer lands before the 8-tick RTO: no retransmissions.
        assert_eq!(res.stats.sent, 100);
        assert_eq!(res.stats.retransmits, 0);
        assert_eq!(res.stats.valid, 100);
        assert!(res
            .records
            .iter()
            .all(|r| r.confidence == Confidence::FirstTry));
        for r in &res.records {
            assert!(
                r.target.contains(r.probe_dst),
                "late response attributed to its target"
            );
        }
    }

    #[test]
    fn retry_backlog_is_bounded() {
        let mut s = Scanner::new(
            ToyNet { handled: 0 },
            ScanConfig {
                max_targets: Some(100),
                probes_per_target: 2,
                max_retry_backlog: 0,
                ..Default::default()
            },
        );
        let res = s.run(&range(), &IcmpEchoProbe, &Blocklist::allow_all());
        // Backlog of zero: every would-be retry abandoned immediately, so
        // the silent half of the space is given up without retransmission.
        assert_eq!(res.stats.retransmits, 0);
        assert_eq!(res.stats.sent, 100);
        assert!(res.stats.gave_up > 30, "{}", res.stats.gave_up);
        assert_eq!(res.stats.gave_up, 100 - res.stats.valid);
    }

    #[test]
    fn adaptive_rate_paces_no_faster_than_fixed() {
        let fixed = {
            let mut s = Scanner::new(
                ToyNet { handled: 0 },
                ScanConfig {
                    max_targets: Some(2500),
                    rate_pps: Some(25_000),
                    ..Default::default()
                },
            );
            s.run(&range(), &IcmpEchoProbe, &Blocklist::allow_all())
        };
        let adaptive = {
            let mut s = Scanner::new(
                ToyNet { handled: 0 },
                ScanConfig {
                    max_targets: Some(2500),
                    rate_pps: Some(25_000),
                    adaptive_rate: true,
                    ..Default::default()
                },
            );
            s.run(&range(), &IcmpEchoProbe, &Blocklist::allow_all())
        };
        // The controller never exceeds the configured budget, so the
        // accounted duration can only stretch.
        assert!(adaptive.stats.paced_secs >= fixed.stats.paced_secs - 1e-9);
        assert_eq!(adaptive.stats.valid, fixed.stats.valid);
    }

    #[test]
    fn hit_rate_math() {
        let stats = ScanStats {
            sent: 200,
            valid: 50,
            ..Default::default()
        };
        assert!((stats.hit_rate() - 0.25).abs() < 1e-12);
        assert_eq!(ScanStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn telemetry_registry_is_source_of_truth() {
        let telemetry = Telemetry::with_tracing();
        let mut s = Scanner::with_telemetry(
            ToyNet { handled: 0 },
            ScanConfig {
                max_targets: Some(500),
                probes_per_target: 2,
                ..Default::default()
            },
            telemetry.clone(),
        );
        let res = s.run(&range(), &IcmpEchoProbe, &Blocklist::allow_all());
        let snap = telemetry.registry.snapshot();
        // The stats view and the registry agree exactly.
        assert_eq!(snap.counter("scan.sent"), res.stats.sent);
        assert_eq!(snap.counter("scan.valid"), res.stats.valid);
        assert_eq!(snap.counter("scan.retransmits"), res.stats.retransmits);
        assert_eq!(snap.counter("scan.gave_up"), res.stats.gave_up);
        assert_eq!(
            snap.gauges["scan.hit_rate_ppm"],
            res.stats.valid * 1_000_000 / res.stats.sent
        );
        // One RTT observation per valid response; backoffs recorded for
        // every scheduled retry.
        let rtt = &snap.histograms["scan.rtt_ticks"];
        assert_eq!(rtt.count, res.stats.valid);
        assert!(snap.histograms["scan.backoff_ticks"].count > 0);
        // The trace ring saw sends, receives and the run span.
        let spans: HashSet<&str> = telemetry.tracer.events().iter().map(|e| e.span).collect();
        for span in ["scan.send", "scan.recv", "scan.run"] {
            assert!(spans.contains(span), "missing {span}");
        }
    }

    #[test]
    fn monitor_emits_status_lines_on_virtual_clock() {
        let telemetry = Telemetry::new();
        let mut s = Scanner::with_telemetry(
            ToyNet { handled: 0 },
            ScanConfig {
                max_targets: Some(1000),
                ..Default::default()
            },
            telemetry.clone(),
        );
        let buf = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        s.set_monitor(
            xmap_telemetry::Monitor::new(&telemetry.registry, 100, 100)
                .with_sink(xmap_telemetry::MonitorSink::Buffer(buf.clone())),
        );
        s.run(&range(), &IcmpEchoProbe, &Blocklist::allow_all());
        let lines = buf.lock().unwrap().clone();
        // 1000 send slots at one tick each, one line per 100 ticks.
        assert_eq!(lines.len(), 10, "{lines:?}");
        assert!(lines[0].contains("send: 100 "), "{}", lines[0]);
        assert!(lines[9].contains("send: 1000 "), "{}", lines[9]);
    }

    #[test]
    #[should_panic(expected = "shard index out of range")]
    fn bad_shard_config_rejected() {
        Scanner::new(
            ToyNet { handled: 0 },
            ScanConfig {
                shard: 2,
                shards: 2,
                ..Default::default()
            },
        );
    }
}
