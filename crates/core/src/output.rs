//! Result serialization — XMap's CSV output format.
//!
//! One line per validated response: target prefix, probed address,
//! responder address, classified outcome. Round-trips losslessly so
//! downstream analyses (periphery/appscan/loopscan crates) can run from
//! saved scan output as well as live results.

use std::fmt::Write as _;

use xmap_netsim::packet::UnreachCode;

use crate::probe::ProbeResult;
use crate::scanner::{Confidence, ScanRecord};

/// CSV header line.
pub const CSV_HEADER: &str = "target,probe_dst,responder,outcome,confidence";

/// Serializes records to CSV (with header).
pub fn to_csv(records: &[ScanRecord]) -> String {
    let mut out = String::with_capacity(64 * (records.len() + 1));
    out.push_str(CSV_HEADER);
    out.push('\n');
    for r in records {
        let _ = writeln!(
            out,
            "{},{},{},{},{}",
            r.target,
            r.probe_dst,
            r.responder,
            outcome_str(&r.result),
            confidence_str(r.confidence),
        );
    }
    out
}

/// Parses CSV produced by [`to_csv`].
///
/// # Errors
///
/// Returns a description of the first malformed line.
pub fn from_csv(csv: &str) -> Result<Vec<ScanRecord>, String> {
    let mut out = Vec::new();
    for (lineno, line) in csv.lines().enumerate() {
        if lineno == 0 {
            if line != CSV_HEADER {
                return Err(format!("unexpected header: {line:?}"));
            }
            continue;
        }
        if line.is_empty() {
            continue;
        }
        let mut fields = line.split(',');
        let mut next = |what: &str| {
            fields
                .next()
                .ok_or_else(|| format!("line {}: missing {what}", lineno + 1))
        };
        let target = next("target")?
            .parse()
            .map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let probe_dst = next("probe_dst")?
            .parse()
            .map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let responder = next("responder")?
            .parse()
            .map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let result = parse_outcome(next("outcome")?)
            .ok_or_else(|| format!("line {}: bad outcome", lineno + 1))?;
        let confidence = parse_confidence(next("confidence")?)
            .ok_or_else(|| format!("line {}: bad confidence", lineno + 1))?;
        out.push(ScanRecord {
            target,
            probe_dst,
            responder,
            result,
            confidence,
        });
    }
    Ok(out)
}

fn confidence_str(c: Confidence) -> String {
    match c {
        Confidence::FirstTry => "first".to_owned(),
        Confidence::Retry(n) => format!("retry:{n}"),
    }
}

fn parse_confidence(s: &str) -> Option<Confidence> {
    Some(match s {
        "first" => Confidence::FirstTry,
        _ => Confidence::Retry(s.strip_prefix("retry:")?.parse().ok()?),
    })
}

fn outcome_str(r: &ProbeResult) -> String {
    match r {
        ProbeResult::Alive => "alive".to_owned(),
        ProbeResult::Unreachable { code } => format!("unreach:{}", code_str(*code)),
        ProbeResult::TimeExceeded => "timxceed".to_owned(),
        ProbeResult::Refused => "refused".to_owned(),
        ProbeResult::Invalid => "invalid".to_owned(),
    }
}

fn code_str(c: UnreachCode) -> &'static str {
    match c {
        UnreachCode::NoRoute => "noroute",
        UnreachCode::AdminProhibited => "admin",
        UnreachCode::AddressUnreachable => "addr",
        UnreachCode::PortUnreachable => "port",
        UnreachCode::SourcePolicy => "policy",
        UnreachCode::RejectRoute => "reject",
    }
}

fn parse_outcome(s: &str) -> Option<ProbeResult> {
    Some(match s {
        "alive" => ProbeResult::Alive,
        "timxceed" => ProbeResult::TimeExceeded,
        "refused" => ProbeResult::Refused,
        "invalid" => ProbeResult::Invalid,
        _ => {
            let code = s.strip_prefix("unreach:")?;
            let code = match code {
                "noroute" => UnreachCode::NoRoute,
                "admin" => UnreachCode::AdminProhibited,
                "addr" => UnreachCode::AddressUnreachable,
                "port" => UnreachCode::PortUnreachable,
                "policy" => UnreachCode::SourcePolicy,
                "reject" => UnreachCode::RejectRoute,
                _ => return None,
            };
            ProbeResult::Unreachable { code }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::scanner::Confidence;

    fn sample() -> Vec<ScanRecord> {
        vec![
            ScanRecord {
                target: "2405:200:1:2::/64".parse().unwrap(),
                probe_dst: "2405:200:1:2::9f3a".parse().unwrap(),
                responder: "2405:200:1:2::1".parse().unwrap(),
                result: ProbeResult::Unreachable {
                    code: UnreachCode::AddressUnreachable,
                },
                confidence: Confidence::FirstTry,
            },
            ScanRecord {
                target: "2601:0:0:10::/64".parse().unwrap(),
                probe_dst: "2601:0:0:10::1".parse().unwrap(),
                responder: "2601:100::42".parse().unwrap(),
                result: ProbeResult::TimeExceeded,
                confidence: Confidence::Retry(2),
            },
            ScanRecord {
                target: "2601::/64".parse().unwrap(),
                probe_dst: "2601::7".parse().unwrap(),
                responder: "2601::7".parse().unwrap(),
                result: ProbeResult::Alive,
                confidence: Confidence::Retry(1),
            },
        ]
    }

    #[test]
    fn roundtrip() {
        let records = sample();
        let csv = to_csv(&records);
        let parsed = from_csv(&csv).unwrap();
        assert_eq!(parsed, records);
    }

    #[test]
    fn header_only_when_empty() {
        let csv = to_csv(&[]);
        assert_eq!(csv.trim(), CSV_HEADER);
        assert!(from_csv(&csv).unwrap().is_empty());
    }

    #[test]
    fn rejects_bad_header_and_lines() {
        assert!(from_csv("nope\n").is_err());
        let bad = format!("{CSV_HEADER}\nnot-an-addr,::1,::2,alive\n");
        assert!(from_csv(&bad).is_err());
        let bad_outcome = format!("{CSV_HEADER}\n2601::/64,::1,::2,what\n");
        assert!(from_csv(&bad_outcome).is_err());
    }

    #[test]
    fn all_outcomes_roundtrip() {
        for result in [
            ProbeResult::Alive,
            ProbeResult::TimeExceeded,
            ProbeResult::Refused,
            ProbeResult::Invalid,
            ProbeResult::Unreachable {
                code: UnreachCode::NoRoute,
            },
            ProbeResult::Unreachable {
                code: UnreachCode::RejectRoute,
            },
            ProbeResult::Unreachable {
                code: UnreachCode::PortUnreachable,
            },
        ] {
            let s = outcome_str(&result);
            assert_eq!(parse_outcome(&s), Some(result), "{s}");
        }
    }
}
