//! Feistel-network permutation — the index-addressable alternative.
//!
//! The multiplicative-group walk ([`crate::cyclic`]) is faithful to
//! ZMap/XMap but can only be *iterated*. A balanced Feistel network over
//! `k` bits gives a bijection on `[0, 2^k)` where `permutation[i]` is O(1)
//! to evaluate at any position — handy for random access, resumable scans
//! and by-range sharding. The ablation bench compares the two.
//!
//! For non-power-of-two domains the classic cycle-walking trick applies:
//! re-encrypt until the value lands inside the domain (expected <2 rounds).

/// An O(1)-addressable random bijection on `0..len`.
///
/// # Examples
///
/// ```
/// use xmap::feistel::FeistelPermutation;
///
/// let p = FeistelPermutation::new(1000, 7);
/// let mut outs: Vec<u64> = (0..1000).map(|i| p.index(i)).collect();
/// outs.sort_unstable();
/// assert_eq!(outs, (0..1000).collect::<Vec<_>>());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FeistelPermutation {
    len: u64,
    /// Total bit width (always even; the domain is 2^bits ≥ len).
    bits: u32,
    keys: [u64; 4],
}

impl FeistelPermutation {
    /// Number of Feistel rounds. Four rounds of a strong round function
    /// give statistically random-looking permutations (Luby–Rackoff).
    const ROUNDS: usize = 4;

    /// Builds a permutation of `0..len` from a seed.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    pub fn new(len: u64, seed: u64) -> Self {
        assert!(len > 0, "cannot permute an empty space");
        // Smallest even bit width covering len.
        let mut bits = 64 - (len - 1).leading_zeros();
        if len == 1 {
            bits = 2;
        }
        if bits % 2 == 1 {
            bits += 1;
        }
        let bits = bits.max(2);
        let mut keys = [0u64; 4];
        let mut k = seed ^ 0xa076_1d64_78bd_642f;
        for slot in &mut keys {
            k = splitmix(k);
            *slot = k;
        }
        FeistelPermutation { len, bits, keys }
    }

    /// Number of indices permuted.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the permutation is empty (never true).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The value at position `i` of the permutation.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn index(&self, i: u64) -> u64 {
        assert!(i < self.len, "index {i} out of range (len {})", self.len);
        // Cycle-walk until inside the domain.
        let mut v = self.encrypt(i);
        while v >= self.len {
            v = self.encrypt(v);
        }
        v
    }

    /// The inverse permutation: position whose value is `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= len`.
    pub fn position_of(&self, v: u64) -> u64 {
        assert!(v < self.len, "value {v} out of range (len {})", self.len);
        let mut i = self.decrypt(v);
        while i >= self.len {
            i = self.decrypt(i);
        }
        i
    }

    /// Iterates the permutation in position order.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        (0..self.len).map(move |i| self.index(i))
    }

    /// Evaluates the permutation at positions `first, first + stride, …`
    /// (stopping at `len`), writing the values into `out` and returning
    /// how many were written — the batched form of [`index`](Self::index)
    /// used by the scanner's chunked target generator, which strides by
    /// its shard count.
    ///
    /// # Panics
    ///
    /// Panics if `stride == 0`.
    pub fn fill(&self, first: u64, stride: u64, out: &mut [u64]) -> usize {
        assert!(stride > 0, "stride must be nonzero");
        let mut n = 0;
        let mut pos = first;
        while n < out.len() && pos < self.len {
            out[n] = self.index(pos);
            n += 1;
            pos = match pos.checked_add(stride) {
                Some(p) => p,
                None => break,
            };
        }
        n
    }

    fn half_bits(&self) -> u32 {
        self.bits / 2
    }

    fn half_mask(&self) -> u64 {
        (1u64 << self.half_bits()) - 1
    }

    fn encrypt(&self, x: u64) -> u64 {
        let hb = self.half_bits();
        let mask = self.half_mask();
        let mut left = (x >> hb) & mask;
        let mut right = x & mask;
        for round in 0..Self::ROUNDS {
            let f = round_fn(right, self.keys[round]) & mask;
            (left, right) = (right, left ^ f);
        }
        (left << hb) | right
    }

    fn decrypt(&self, x: u64) -> u64 {
        let hb = self.half_bits();
        let mask = self.half_mask();
        let mut left = (x >> hb) & mask;
        let mut right = x & mask;
        for round in (0..Self::ROUNDS).rev() {
            let f = round_fn(left, self.keys[round]) & mask;
            (left, right) = (right ^ f, left);
        }
        (left << hb) | right
    }
}

fn round_fn(x: u64, key: u64) -> u64 {
    splitmix(x ^ key)
}

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn bijection_on_odd_sizes() {
        for len in [1u64, 2, 3, 100, 1000, 4097] {
            let p = FeistelPermutation::new(len, 9);
            let set: HashSet<u64> = (0..len).map(|i| p.index(i)).collect();
            assert_eq!(set.len() as u64, len, "len {len}");
            assert!(set.iter().all(|v| *v < len));
        }
    }

    #[test]
    fn inverse_roundtrip() {
        let p = FeistelPermutation::new(10_000, 3);
        for i in (0..10_000).step_by(37) {
            assert_eq!(p.position_of(p.index(i)), i);
        }
    }

    #[test]
    fn seeds_differ() {
        let a = FeistelPermutation::new(1 << 16, 1);
        let b = FeistelPermutation::new(1 << 16, 2);
        let same = (0..1000u64).filter(|i| a.index(*i) == b.index(*i)).count();
        assert!(same < 10, "{same} coincidences");
    }

    #[test]
    fn scattered_order() {
        let p = FeistelPermutation::new(1 << 20, 5);
        let out: Vec<u64> = (0..1000).map(|i| p.index(i)).collect();
        let adjacent = out.windows(2).filter(|w| w[0].abs_diff(w[1]) == 1).count();
        assert!(adjacent < 5, "{adjacent}");
    }

    #[test]
    fn full_64bit_domain_supported() {
        let p = FeistelPermutation::new(u64::MAX, 11);
        // Cannot enumerate; verify determinism + roundtrip on samples.
        for i in [0u64, 1, 12_345_678_901, u64::MAX - 2] {
            let v = p.index(i);
            assert_eq!(p.position_of(v), i);
        }
    }

    #[test]
    fn fill_matches_strided_index() {
        let p = FeistelPermutation::new(10_000, 3);
        let expect: Vec<u64> = (2..10_000).step_by(7).map(|i| p.index(i)).collect();
        let mut got = Vec::new();
        let mut chunk = [0u64; 64];
        let mut pos = 2u64;
        loop {
            let n = p.fill(pos, 7, &mut chunk);
            if n == 0 {
                break;
            }
            got.extend_from_slice(&chunk[..n]);
            pos += 7 * n as u64;
        }
        assert_eq!(got, expect);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn index_bounds_checked() {
        FeistelPermutation::new(10, 0).index(10);
    }
}
