//! Token-bucket rate limiting.
//!
//! The paper's scans run at <15 Mbps / 25 kpps to stay friendly to target
//! networks (Section IV-E); the scanner enforces such budgets with a token
//! bucket. Time is injected through the [`Clock`] trait so tests and the
//! simulator can run on a virtual clock instead of sleeping.

use std::time::{Duration, Instant};

/// A monotonic time source.
pub trait Clock {
    /// Nanoseconds elapsed since an arbitrary fixed origin.
    fn now_ns(&self) -> u64;
}

/// Wall-clock time.
#[derive(Debug, Clone)]
pub struct SystemClock {
    origin: Instant,
}

impl Default for SystemClock {
    fn default() -> Self {
        SystemClock { origin: Instant::now() }
    }
}

impl SystemClock {
    /// Creates a wall clock anchored at "now".
    pub fn new() -> Self {
        Self::default()
    }
}

impl Clock for SystemClock {
    fn now_ns(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }
}

/// A manually advanced clock for tests and simulations.
#[derive(Debug, Clone, Default)]
pub struct VirtualClock {
    now: std::cell::Cell<u64>,
}

impl VirtualClock {
    /// Creates a clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances the clock.
    pub fn advance(&self, d: Duration) {
        self.now.set(self.now.get() + d.as_nanos() as u64);
    }
}

impl Clock for VirtualClock {
    fn now_ns(&self) -> u64 {
        self.now.get()
    }
}

impl<C: Clock + ?Sized> Clock for &C {
    fn now_ns(&self) -> u64 {
        (**self).now_ns()
    }
}

/// A token bucket admitting `rate_pps` packets per second with a burst
/// capacity.
///
/// # Examples
///
/// ```
/// use std::time::Duration;
/// use xmap::rate::{RateLimiter, VirtualClock};
///
/// let clock = VirtualClock::new();
/// let mut rl = RateLimiter::new(1000, 10); // 1 kpps, burst 10
/// assert!(rl.try_acquire(&clock));          // burst tokens available
/// for _ in 0..9 { rl.try_acquire(&clock); }
/// assert!(!rl.try_acquire(&clock));          // bucket empty
/// clock.advance(Duration::from_millis(2));   // 2 new tokens accrue
/// assert!(rl.try_acquire(&clock));
/// ```
#[derive(Debug, Clone)]
pub struct RateLimiter {
    rate_pps: u64,
    capacity: u64,
    tokens: f64,
    last_refill_ns: u64,
}

impl RateLimiter {
    /// Creates a limiter with the given packets-per-second rate and burst
    /// capacity (tokens start full).
    ///
    /// # Panics
    ///
    /// Panics if `rate_pps` or `capacity` is zero.
    pub fn new(rate_pps: u64, capacity: u64) -> Self {
        assert!(rate_pps > 0, "rate must be nonzero");
        assert!(capacity > 0, "capacity must be nonzero");
        RateLimiter { rate_pps, capacity, tokens: capacity as f64, last_refill_ns: 0 }
    }

    /// The configured rate in packets per second.
    pub fn rate_pps(&self) -> u64 {
        self.rate_pps
    }

    /// Attempts to take one token; returns `false` when over budget.
    pub fn try_acquire(&mut self, clock: impl Clock) -> bool {
        self.refill(clock.now_ns());
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Nanoseconds until a token will be available (0 when one is ready).
    pub fn next_available_ns(&mut self, clock: impl Clock) -> u64 {
        self.refill(clock.now_ns());
        if self.tokens >= 1.0 {
            0
        } else {
            let deficit = 1.0 - self.tokens;
            (deficit * 1e9 / self.rate_pps as f64).ceil() as u64
        }
    }

    fn refill(&mut self, now_ns: u64) {
        let elapsed = now_ns.saturating_sub(self.last_refill_ns);
        self.last_refill_ns = now_ns;
        self.tokens = (self.tokens + elapsed as f64 * self.rate_pps as f64 / 1e9)
            .min(self.capacity as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_then_steady_rate() {
        let clock = VirtualClock::new();
        let mut rl = RateLimiter::new(1_000_000, 100);
        let mut sent = 0;
        for _ in 0..200 {
            if rl.try_acquire(&clock) {
                sent += 1;
            }
        }
        assert_eq!(sent, 100, "burst capacity");
        clock.advance(Duration::from_millis(1)); // 1000 tokens at 1 Mpps
        let mut sent2 = 0;
        for _ in 0..200 {
            if rl.try_acquire(&clock) {
                sent2 += 1;
            }
        }
        // Capacity caps accrual at 100.
        assert_eq!(sent2, 100);
    }

    #[test]
    fn long_run_rate_is_respected() {
        let clock = VirtualClock::new();
        let mut rl = RateLimiter::new(25_000, 32); // the paper's 25 kpps
        let mut sent = 0u64;
        for _ in 0..1000 {
            clock.advance(Duration::from_micros(100));
            while rl.try_acquire(&clock) {
                sent += 1;
            }
        }
        // 0.1 s at 25 kpps = 2500 packets (+burst).
        assert!((2400..=2600).contains(&sent), "{sent}");
    }

    #[test]
    fn next_available_estimates() {
        let clock = VirtualClock::new();
        let mut rl = RateLimiter::new(1000, 1);
        assert!(rl.try_acquire(&clock));
        let wait = rl.next_available_ns(&clock);
        // One token at 1 kpps = 1 ms.
        assert!((900_000..=1_100_000).contains(&wait), "{wait}");
        clock.advance(Duration::from_nanos(wait));
        assert!(rl.try_acquire(&clock));
    }

    #[test]
    fn virtual_clock_advances() {
        let c = VirtualClock::new();
        assert_eq!(c.now_ns(), 0);
        c.advance(Duration::from_secs(1));
        assert_eq!(c.now_ns(), 1_000_000_000);
    }

    #[test]
    fn system_clock_monotonic() {
        let c = SystemClock::new();
        let a = c.now_ns();
        let b = c.now_ns();
        assert!(b >= a);
    }

    #[test]
    #[should_panic(expected = "rate must be nonzero")]
    fn zero_rate_rejected() {
        RateLimiter::new(0, 1);
    }
}
