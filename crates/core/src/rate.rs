//! Token-bucket rate limiting.
//!
//! The paper's scans run at <15 Mbps / 25 kpps to stay friendly to target
//! networks (Section IV-E); the scanner enforces such budgets with a token
//! bucket. Time is injected through the [`Clock`] trait so tests and the
//! simulator can run on a virtual clock instead of sleeping.

use std::time::{Duration, Instant};

/// A monotonic time source.
pub trait Clock {
    /// Nanoseconds elapsed since an arbitrary fixed origin.
    fn now_ns(&self) -> u64;
}

/// Wall-clock time.
#[derive(Debug, Clone)]
pub struct SystemClock {
    origin: Instant,
}

impl Default for SystemClock {
    fn default() -> Self {
        SystemClock {
            origin: Instant::now(),
        }
    }
}

impl SystemClock {
    /// Creates a wall clock anchored at "now".
    pub fn new() -> Self {
        Self::default()
    }
}

impl Clock for SystemClock {
    fn now_ns(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }
}

/// A manually advanced clock for tests and simulations.
#[derive(Debug, Clone, Default)]
pub struct VirtualClock {
    now: std::cell::Cell<u64>,
}

impl VirtualClock {
    /// Creates a clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances the clock.
    pub fn advance(&self, d: Duration) {
        self.now.set(self.now.get() + d.as_nanos() as u64);
    }
}

impl Clock for VirtualClock {
    fn now_ns(&self) -> u64 {
        self.now.get()
    }
}

impl<C: Clock + ?Sized> Clock for &C {
    fn now_ns(&self) -> u64 {
        (**self).now_ns()
    }
}

/// A token bucket admitting `rate_pps` packets per second with a burst
/// capacity.
///
/// # Examples
///
/// ```
/// use std::time::Duration;
/// use xmap::rate::{RateLimiter, VirtualClock};
///
/// let clock = VirtualClock::new();
/// let mut rl = RateLimiter::new(1000, 10); // 1 kpps, burst 10
/// assert!(rl.try_acquire(&clock));          // burst tokens available
/// for _ in 0..9 { rl.try_acquire(&clock); }
/// assert!(!rl.try_acquire(&clock));          // bucket empty
/// clock.advance(Duration::from_millis(2));   // 2 new tokens accrue
/// assert!(rl.try_acquire(&clock));
/// ```
#[derive(Debug, Clone)]
pub struct RateLimiter {
    rate_pps: u64,
    capacity: u64,
    tokens: f64,
    last_refill_ns: u64,
}

impl RateLimiter {
    /// Creates a limiter with the given packets-per-second rate and burst
    /// capacity (tokens start full).
    ///
    /// # Panics
    ///
    /// Panics if `rate_pps` or `capacity` is zero.
    pub fn new(rate_pps: u64, capacity: u64) -> Self {
        assert!(rate_pps > 0, "rate must be nonzero");
        assert!(capacity > 0, "capacity must be nonzero");
        RateLimiter {
            rate_pps,
            capacity,
            tokens: capacity as f64,
            last_refill_ns: 0,
        }
    }

    /// The configured rate in packets per second.
    pub fn rate_pps(&self) -> u64 {
        self.rate_pps
    }

    /// Attempts to take one token; returns `false` when over budget.
    pub fn try_acquire(&mut self, clock: impl Clock) -> bool {
        self.refill(clock.now_ns());
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Nanoseconds until a token will be available (0 when one is ready).
    pub fn next_available_ns(&mut self, clock: impl Clock) -> u64 {
        self.refill(clock.now_ns());
        if self.tokens >= 1.0 {
            0
        } else {
            let deficit = 1.0 - self.tokens;
            (deficit * 1e9 / self.rate_pps as f64).ceil() as u64
        }
    }

    fn refill(&mut self, now_ns: u64) {
        let elapsed = now_ns.saturating_sub(self.last_refill_ns);
        self.last_refill_ns = now_ns;
        self.tokens =
            (self.tokens + elapsed as f64 * self.rate_pps as f64 / 1e9).min(self.capacity as f64);
    }
}

/// ZMap-style adaptive sender: additive-increase/multiplicative-decrease on
/// the valid-per-sent ratio.
///
/// The controller watches fixed-size probe windows. The first completed
/// window establishes a hit-rate baseline; afterwards, a window whose hit
/// rate collapses below half the baseline halves the sending rate (the
/// scan is outrunning some rate limiter or triggering loss), while a
/// healthy window restores rate additively toward the configured maximum.
/// Against the simulator rates are accounted rather than slept, exactly
/// like [`RateLimiter`].
///
/// # Examples
///
/// ```
/// use xmap::rate::AdaptiveRateController;
///
/// let mut c = AdaptiveRateController::new(25_000, 1_000, 25_000, 100);
/// // First window: half the probes answer — that becomes the baseline.
/// for _ in 0..100 { c.on_valid(); c.on_probe(); }
/// assert_eq!(c.current_pps(), 25_000);
/// // Second window: total collapse — rate halves.
/// for _ in 0..100 { c.on_probe(); }
/// assert_eq!(c.current_pps(), 12_500);
/// ```
#[derive(Debug, Clone)]
pub struct AdaptiveRateController {
    current_pps: u64,
    min_pps: u64,
    max_pps: u64,
    window: u64,
    sent: u64,
    valid: u64,
    baseline: Option<f64>,
}

impl AdaptiveRateController {
    /// Creates a controller starting (and capped) at `initial_pps`,
    /// never backing off below `min_pps`, evaluating every `window` probes.
    ///
    /// # Panics
    ///
    /// Panics if any rate is zero, `min_pps > max_pps`, or `window == 0`.
    pub fn new(initial_pps: u64, min_pps: u64, max_pps: u64, window: u64) -> Self {
        assert!(
            initial_pps > 0 && min_pps > 0 && max_pps > 0,
            "rates must be nonzero"
        );
        assert!(min_pps <= max_pps, "min rate above max");
        assert!(window > 0, "window must be nonzero");
        AdaptiveRateController {
            current_pps: initial_pps.clamp(min_pps, max_pps),
            min_pps,
            max_pps,
            window,
            sent: 0,
            valid: 0,
            baseline: None,
        }
    }

    /// The standard configuration: start at `rate_pps`, floor at one
    /// eighth of it, evaluate every 512 probes.
    pub fn standard(rate_pps: u64) -> Self {
        Self::new(rate_pps, (rate_pps / 8).max(1), rate_pps, 512)
    }

    /// The rate currently in effect, in packets per second.
    pub fn current_pps(&self) -> u64 {
        self.current_pps
    }

    /// Records one probe sent; evaluates the window when it fills.
    pub fn on_probe(&mut self) {
        self.sent += 1;
        if self.sent >= self.window {
            self.evaluate();
        }
    }

    /// Records one validated response.
    pub fn on_valid(&mut self) {
        self.valid += 1;
    }

    /// The mutable controller state as `(current_pps, sent, valid,
    /// baseline)` — everything a checkpoint needs beyond the constructor
    /// arguments (the baseline is exposed by value so its exact `f64` bit
    /// pattern survives the round trip).
    pub fn checkpoint_state(&self) -> (u64, u64, u64, Option<f64>) {
        (self.current_pps, self.sent, self.valid, self.baseline)
    }

    /// Restores state captured by [`Self::checkpoint_state`] onto a
    /// controller freshly built with the same constructor arguments.
    pub fn restore_state(
        &mut self,
        current_pps: u64,
        sent: u64,
        valid: u64,
        baseline: Option<f64>,
    ) {
        self.current_pps = current_pps.clamp(self.min_pps, self.max_pps);
        self.sent = sent;
        self.valid = valid;
        self.baseline = baseline;
    }

    fn evaluate(&mut self) {
        let hit = self.valid as f64 / self.sent as f64;
        match self.baseline {
            None => self.baseline = Some(hit),
            Some(base) => {
                if base > 0.0 && hit < base * 0.5 {
                    // Collapse: multiplicative decrease, baseline kept so
                    // recovery is judged against the healthy reference.
                    self.current_pps = (self.current_pps / 2).max(self.min_pps);
                } else {
                    // Healthy window: additive increase, slow baseline drift.
                    let step = (self.max_pps / 16).max(1);
                    self.current_pps = (self.current_pps + step).min(self.max_pps);
                    self.baseline = Some(base * 0.9 + hit * 0.1);
                }
            }
        }
        self.sent = 0;
        self.valid = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_then_steady_rate() {
        let clock = VirtualClock::new();
        let mut rl = RateLimiter::new(1_000_000, 100);
        let mut sent = 0;
        for _ in 0..200 {
            if rl.try_acquire(&clock) {
                sent += 1;
            }
        }
        assert_eq!(sent, 100, "burst capacity");
        clock.advance(Duration::from_millis(1)); // 1000 tokens at 1 Mpps
        let mut sent2 = 0;
        for _ in 0..200 {
            if rl.try_acquire(&clock) {
                sent2 += 1;
            }
        }
        // Capacity caps accrual at 100.
        assert_eq!(sent2, 100);
    }

    #[test]
    fn long_run_rate_is_respected() {
        let clock = VirtualClock::new();
        let mut rl = RateLimiter::new(25_000, 32); // the paper's 25 kpps
        let mut sent = 0u64;
        for _ in 0..1000 {
            clock.advance(Duration::from_micros(100));
            while rl.try_acquire(&clock) {
                sent += 1;
            }
        }
        // 0.1 s at 25 kpps = 2500 packets (+burst).
        assert!((2400..=2600).contains(&sent), "{sent}");
    }

    #[test]
    fn next_available_estimates() {
        let clock = VirtualClock::new();
        let mut rl = RateLimiter::new(1000, 1);
        assert!(rl.try_acquire(&clock));
        let wait = rl.next_available_ns(&clock);
        // One token at 1 kpps = 1 ms.
        assert!((900_000..=1_100_000).contains(&wait), "{wait}");
        clock.advance(Duration::from_nanos(wait));
        assert!(rl.try_acquire(&clock));
    }

    #[test]
    fn virtual_clock_advances() {
        let c = VirtualClock::new();
        assert_eq!(c.now_ns(), 0);
        c.advance(Duration::from_secs(1));
        assert_eq!(c.now_ns(), 1_000_000_000);
    }

    #[test]
    fn system_clock_monotonic() {
        let c = SystemClock::new();
        let a = c.now_ns();
        let b = c.now_ns();
        assert!(b >= a);
    }

    #[test]
    #[should_panic(expected = "rate must be nonzero")]
    fn zero_rate_rejected() {
        RateLimiter::new(0, 1);
    }

    fn feed_window(c: &mut AdaptiveRateController, window: u64, hits: u64) {
        for i in 0..window {
            if i < hits {
                c.on_valid();
            }
            c.on_probe();
        }
    }

    #[test]
    fn adaptive_backs_off_on_collapse_and_recovers() {
        let mut c = AdaptiveRateController::new(16_000, 1_000, 16_000, 100);
        feed_window(&mut c, 100, 40); // baseline: 40% hit rate
        assert_eq!(c.current_pps(), 16_000);
        feed_window(&mut c, 100, 5); // collapse below half the baseline
        assert_eq!(c.current_pps(), 8_000);
        feed_window(&mut c, 100, 2); // still collapsed
        assert_eq!(c.current_pps(), 4_000);
        // Healthy windows climb back to the cap additively.
        for _ in 0..20 {
            feed_window(&mut c, 100, 40);
        }
        assert_eq!(c.current_pps(), 16_000);
    }

    #[test]
    fn adaptive_respects_floor() {
        let mut c = AdaptiveRateController::new(8_000, 3_000, 8_000, 10);
        feed_window(&mut c, 10, 8); // baseline
        for _ in 0..10 {
            feed_window(&mut c, 10, 0);
        }
        assert_eq!(c.current_pps(), 3_000);
    }

    #[test]
    fn adaptive_all_silent_baseline_never_decreases() {
        // A zero baseline (fully silent space) must not trigger backoff.
        let mut c = AdaptiveRateController::new(10_000, 1_000, 10_000, 10);
        for _ in 0..5 {
            feed_window(&mut c, 10, 0);
        }
        assert_eq!(c.current_pps(), 10_000);
    }

    #[test]
    #[should_panic(expected = "min rate above max")]
    fn adaptive_bad_bounds_rejected() {
        AdaptiveRateController::new(5, 10, 5, 1);
    }

    #[test]
    fn adaptive_checkpoint_roundtrip_preserves_behavior() {
        let mut live = AdaptiveRateController::new(16_000, 1_000, 16_000, 100);
        feed_window(&mut live, 100, 40);
        feed_window(&mut live, 100, 5);
        feed_window(&mut live, 37, 12); // stop mid-window
        let (pps, sent, valid, baseline) = live.checkpoint_state();
        let mut resumed = AdaptiveRateController::new(16_000, 1_000, 16_000, 100);
        resumed.restore_state(pps, sent, valid, baseline);
        assert_eq!(resumed.current_pps(), live.current_pps());
        // Both controllers must evolve identically from here on.
        for (w, h) in [(63, 20), (100, 2), (100, 40)] {
            feed_window(&mut live, w, h);
            feed_window(&mut resumed, w, h);
            assert_eq!(resumed.current_pps(), live.current_pps());
            assert_eq!(resumed.checkpoint_state(), live.checkpoint_state());
        }
    }
}
