//! Checkpoint/resume orchestration: the glue between the scan engine and
//! the durable `xmap-checkpoint/v1` format in `xmap-state`.
//!
//! A checkpointed scan is a **session**: a directory holding one
//! [`Manifest`](xmap_state::Manifest) (the configuration identity), and
//! per worker a record journal (`worker-N.wal`) plus the latest worker
//! checkpoint (`worker-N.ckpt`). The pieces here are:
//!
//! - [`RunSink`] — attached to a [`Scanner`](crate::Scanner); journals
//!   every emitted record and writes checkpoints at a slot cadence.
//! - [`ScanSession`] — creates/validates the directory, loads per-worker
//!   resume state, and refuses configuration mismatches outright.
//! - [`RangeMode`] — what a worker does with each range on resume: replay
//!   it from the journal, continue it mid-range, or scan it fresh.
//! - [`run_session`] — the end-to-end driver shared by the `xmap` CLI and
//!   the integration tests: build manifest → create/resume session →
//!   restore workers → run → merge.
//!
//! ## Determinism envelope
//!
//! Resume is *byte-identical* to an uninterrupted run when network
//! behaviour is a pure function of `(packet, world seed, tick)` — the
//! default simulator worlds and the tick-keyed loss/duplication fault
//! plans. Checkpoints are only taken at send-slot boundaries with nothing
//! in flight, so the re-executed tail sees exactly the state the killed
//! run saw. Stateful network features (ICMPv6 token buckets, jitter
//! queues, app-layer session state) are outside the envelope: resume is
//! then still correct-and-complete, but individual records may differ.

use std::fs;
use std::path::{Path, PathBuf};

use xmap_addr::{Prefix, ScanRange};
use xmap_netsim::packet::{Network, UnreachCode};
use xmap_state::codec::{Decoder, Encoder};
use xmap_state::{AbortSignal, Manifest, RunState, StateError, Wal, WorkerCheckpoint};
use xmap_telemetry::{Snapshot, Telemetry};

use crate::blocklist::Blocklist;
use crate::parallel::ParallelScanner;
use crate::probe::{ProbeModule, ProbeResult};
use crate::scanner::{Confidence, Permutation, ScanConfig, ScanRecord, ScanResults, ScanStats};
use crate::telemetry::names;

/// Records a degraded sink buffers in memory before giving up on ever
/// restoring durability (~14 MB of encoded records at the default record
/// size). Beyond it the sink goes lossy: the scan still completes, the
/// last on-disk checkpoint stays valid, but this process can no longer
/// close the durability gap.
const MAX_PENDING_RECORDS: usize = 1 << 18;

/// Minimum retry backoff, in send slots, once a sink degrades.
const MIN_RETRY_BACKOFF: u64 = 64;

/// Backoff growth cap: retries never space out more than this.
const MAX_RETRY_BACKOFF: u64 = 1 << 16;

/// In-memory state of a sink whose storage failed: everything needed to
/// re-establish durability once the disk recovers.
#[derive(Debug)]
struct DegradedState {
    /// Encoded records not yet durable, in sequence order starting at
    /// [`DegradedState::pending_start_seq`]. Includes the records that
    /// were appended-but-unflushed when the failure hit, so a recovery
    /// can rebuild the journal without losing anything.
    pending: Vec<Vec<u8>>,
    /// Journal sequence number of `pending[0]`. Everything before it was
    /// flushed successfully and is intact on disk.
    pending_start_seq: u64,
    /// Cadence-counter value at which the next recovery attempt runs.
    retry_at: u64,
    /// Current backoff, in send slots. Doubles per failed attempt, capped.
    backoff: u64,
    /// The pending buffer overflowed: durability is unrecoverable in this
    /// process (the scan continues; resume re-executes from the last
    /// durable checkpoint).
    lossy: bool,
}

/// Per-worker checkpoint writer, attached to a scanner via
/// [`Scanner::set_sink`](crate::Scanner::set_sink).
///
/// Storage failures downgrade, never abort: on the first I/O error the
/// sink enters **degraded mode** — records buffer in memory (preserving
/// journal sequence contiguity), the on-disk checkpoint is left exactly
/// as it was, and recovery is retried with exponential backoff at later
/// checkpoint boundaries. A successful recovery truncates the journal's
/// torn tail, re-appends the buffered records, publishes a fresh
/// checkpoint atomically, and returns the sink to healthy. Drivers
/// observe the state via [`RunSink::is_degraded`] (the scanner mirrors
/// it into the `state.durability_degraded` gauge) and surface the
/// original error at session end via [`RunSink::take_error`], which
/// reports `None` when durability was fully restored.
#[derive(Debug)]
pub struct RunSink {
    /// The open journal; `None` while degraded (the writer is dropped on
    /// failure — its buffer state is unknowable — and reopened from disk
    /// on recovery).
    wal: Option<Wal>,
    wal_path: PathBuf,
    ckpt_path: PathBuf,
    worker: u32,
    config_fp: u64,
    every: u64,
    slots: u64,
    range_index: u32,
    run_wal_start: u64,
    /// Encoded records appended since the last successful flush. Kept so
    /// that a failed flush (whose partial frames are torn on disk) can
    /// enter degraded mode without losing anything.
    unflushed: Vec<Vec<u8>>,
    degraded: Option<DegradedState>,
    /// First storage error observed (kept for reporting even across a
    /// successful recovery; only surfaced while degraded).
    first_error: Option<StateError>,
    /// Successful degraded→healthy transitions.
    recoveries: u64,
}

impl RunSink {
    /// Builds a sink over an open journal. `every` is the checkpoint
    /// cadence in send slots (0 disables periodic checkpoints; range-end
    /// and abort checkpoints still happen).
    pub fn new(wal: Wal, ckpt_path: PathBuf, worker: u32, every: u64, config_fp: u64) -> Self {
        let wal_path = wal.path().to_path_buf();
        RunSink {
            wal: Some(wal),
            wal_path,
            ckpt_path,
            worker,
            config_fp,
            every,
            slots: 0,
            range_index: 0,
            run_wal_start: 0,
            unflushed: Vec::new(),
            degraded: None,
            first_error: None,
            recoveries: 0,
        }
    }

    /// Starts (or resumes, with `wal_start: Some`) a range: subsequent
    /// journalled records and checkpoints carry `range_index`.
    pub fn begin_range(&mut self, range_index: u32, wal_start: Option<u64>) {
        self.range_index = range_index;
        self.run_wal_start = wal_start.unwrap_or_else(|| self.seq_end());
        self.slots = 0;
        if let Some(d) = self.degraded.as_mut() {
            d.retry_at = d.backoff;
        }
    }

    /// Advances the cadence counter by one send slot.
    pub fn tick(&mut self) {
        self.slots += 1;
    }

    /// Whether the cadence calls for a checkpoint at the next boundary —
    /// either the periodic cadence (healthy) or a degraded-mode recovery
    /// retry whose backoff has elapsed.
    pub fn due(&self) -> bool {
        if self.every == 0 {
            return false;
        }
        match &self.degraded {
            None => self.slots >= self.every,
            Some(d) => !d.lossy && self.slots >= d.retry_at,
        }
    }

    /// Journal sequence number at which the current range's records start.
    pub fn run_wal_start(&self) -> u64 {
        self.run_wal_start
    }

    /// Whether the sink is currently operating in degraded (in-memory)
    /// mode after a storage failure.
    pub fn is_degraded(&self) -> bool {
        self.degraded.is_some()
    }

    /// Successful degraded→healthy recoveries so far.
    pub fn recoveries(&self) -> u64 {
        self.recoveries
    }

    /// The sequence number the next journalled record will take, whether
    /// it goes to the journal or the in-memory pending buffer.
    fn seq_end(&self) -> u64 {
        match (&self.wal, &self.degraded) {
            (Some(wal), _) => wal.next_seq(),
            (None, Some(d)) => d.pending_start_seq + d.pending.len() as u64,
            (None, None) => 0,
        }
    }

    /// Appends one record: to the journal when healthy, to the pending
    /// buffer when degraded.
    pub fn journal(&mut self, record: &ScanRecord) {
        let payload = encode_record(self.range_index, record);
        if let Some(d) = self.degraded.as_mut() {
            if d.lossy {
                return;
            }
            if d.pending.len() >= MAX_PENDING_RECORDS {
                d.lossy = true;
                d.pending = Vec::new();
                return;
            }
            d.pending.push(payload);
            return;
        }
        let wal = self.wal.as_mut().expect("healthy sink holds its journal");
        match wal.append(&payload) {
            Ok(_) => self.unflushed.push(payload),
            Err(e) => self.enter_degraded(e, Some(payload)),
        }
    }

    /// Flushes the journal and atomically publishes a worker checkpoint
    /// (`run: None` marks the current range complete). Resets the cadence
    /// counter on success. While degraded this is a recovery attempt
    /// instead; failures back off, successes return the sink to healthy.
    pub fn write_checkpoint(&mut self, tick: u64, metrics: Snapshot, run: Option<RunState>) {
        if self.degraded.is_some() {
            self.attempt_recovery(tick, metrics, run);
            return;
        }
        let wal = self.wal.as_mut().expect("healthy sink holds its journal");
        if let Err(e) = wal.flush() {
            self.enter_degraded(e, None);
            return;
        }
        self.unflushed.clear();
        let ckpt = WorkerCheckpoint {
            worker: self.worker,
            range_index: self.range_index,
            tick,
            wal_seq: self.seq_end(),
            config_fp: self.config_fp,
            metrics,
            run,
        };
        match ckpt.write_to(&self.ckpt_path) {
            Ok(()) => self.slots = 0,
            Err(e) => self.enter_degraded(e, None),
        }
    }

    /// Switches to degraded mode after a storage failure. `extra` is a
    /// record whose append itself failed (it joins the pending buffer).
    /// The journal writer is dropped — its buffer may be partially torn
    /// on disk — and recovery reopens the file from its intact prefix.
    fn enter_degraded(&mut self, error: StateError, extra: Option<Vec<u8>>) {
        let seq_end = self.wal.as_ref().map_or(0, Wal::next_seq);
        let mut pending = std::mem::take(&mut self.unflushed);
        let pending_start_seq = seq_end - pending.len() as u64;
        if let Some(p) = extra {
            pending.push(p);
        }
        self.wal = None;
        if self.first_error.is_none() {
            self.first_error = Some(error);
        }
        let backoff = self.every.max(MIN_RETRY_BACKOFF);
        self.degraded = Some(DegradedState {
            pending,
            pending_start_seq,
            retry_at: self.slots.saturating_add(backoff),
            backoff,
            lossy: false,
        });
    }

    /// One recovery attempt: reopen the journal truncated to its known
    /// intact prefix, re-append every pending record, flush, and publish
    /// a checkpoint atomically. All of it goes through the same
    /// write-to-temp + rename path, so a failure anywhere leaves the
    /// previous on-disk checkpoint untouched.
    fn attempt_recovery(&mut self, tick: u64, metrics: Snapshot, run: Option<RunState>) {
        let d = self.degraded.as_mut().expect("called while degraded");
        if d.lossy {
            return;
        }
        let outcome = (|| -> Result<Wal, StateError> {
            let (mut wal, _kept) = Wal::open_truncated(&self.wal_path, d.pending_start_seq)?;
            for payload in &d.pending {
                wal.append(payload)?;
            }
            wal.flush()?;
            let ckpt = WorkerCheckpoint {
                worker: self.worker,
                range_index: self.range_index,
                tick,
                wal_seq: wal.next_seq(),
                config_fp: self.config_fp,
                metrics,
                run,
            };
            ckpt.write_to(&self.ckpt_path)?;
            Ok(wal)
        })();
        match outcome {
            Ok(wal) => {
                self.wal = Some(wal);
                self.degraded = None;
                self.unflushed.clear();
                self.slots = 0;
                self.recoveries += 1;
            }
            Err(_) => {
                let d = self.degraded.as_mut().expect("still degraded");
                d.backoff = (d.backoff * 2).min(MAX_RETRY_BACKOFF);
                d.retry_at = self.slots.saturating_add(d.backoff);
            }
        }
    }

    /// The first storage error, if durability is still degraded (clears
    /// it). A sink that recovered reports `None`: every record reached
    /// the disk and the checkpoint is current.
    pub fn take_error(&mut self) -> Option<StateError> {
        if self.degraded.is_some() {
            self.first_error.take()
        } else {
            None
        }
    }
}

/// What a worker does with one range of a (possibly resumed) session.
#[derive(Debug)]
pub enum RangeMode {
    /// Scan the range from the beginning.
    Fresh,
    /// Continue the range from a mid-range checkpoint (boxed: the
    /// captured state dwarfs the other variants).
    Resume(Box<RunResume>),
    /// The range already completed before the kill: contribute its
    /// journal-replayed records without sending a single probe.
    Skip(Vec<ScanRecord>),
}

/// A mid-range resume point: the captured scanner state plus the records
/// the journal already holds for this range.
#[derive(Debug)]
pub struct RunResume {
    /// Captured mid-range scanner state.
    pub state: RunState,
    /// Records emitted (and journalled) before the checkpoint, in their
    /// original arrival order.
    pub records: Vec<ScanRecord>,
}

/// Everything needed to put one worker back where its checkpoint left it.
#[derive(Debug)]
pub struct WorkerResume {
    /// Per-range modes, in range order.
    pub modes: Vec<RangeMode>,
    /// Scanner lifetime tick to restore the virtual clock to.
    pub tick: u64,
    /// Telemetry snapshot to restore the worker registry from (absent for
    /// fresh workers).
    pub metrics: Option<Snapshot>,
    /// The sink to attach, positioned to append after the kept journal.
    pub sink: RunSink,
}

/// A checkpoint directory with a validated manifest.
#[derive(Debug)]
pub struct ScanSession {
    dir: PathBuf,
    manifest: Manifest,
}

impl ScanSession {
    /// Starts a fresh session: creates the directory (with a clear error
    /// naming the path on failure), clears any leftover worker files so a
    /// later `--resume` can never mix two runs, and writes the manifest.
    pub fn create(dir: &Path, manifest: Manifest) -> Result<ScanSession, StateError> {
        fs::create_dir_all(dir).map_err(|e| {
            StateError::io(format!("create checkpoint directory {}", dir.display()), e)
        })?;
        let listing = fs::read_dir(dir).map_err(|e| {
            StateError::io(format!("list checkpoint directory {}", dir.display()), e)
        })?;
        for entry in listing {
            let entry = entry.map_err(|e| {
                StateError::io(format!("list checkpoint directory {}", dir.display()), e)
            })?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            let stale = name.starts_with("worker-")
                && (name.ends_with(".ckpt") || name.ends_with(".wal") || name.ends_with(".tmp"));
            if stale {
                fs::remove_file(entry.path()).map_err(|e| {
                    StateError::io(format!("remove stale {}", entry.path().display()), e)
                })?;
            }
        }
        let manifest_path = dir.join("manifest.json");
        fs::write(&manifest_path, manifest.to_json()).map_err(|e| {
            StateError::io(
                format!("write session manifest {}", manifest_path.display()),
                e,
            )
        })?;
        Ok(ScanSession {
            dir: dir.to_path_buf(),
            manifest,
        })
    }

    /// Opens an existing session for resumption. The stored manifest must
    /// match `expected` on every identity field — any difference is a hard
    /// [`StateError::Mismatch`] naming the offending fields, never a
    /// silent continuation against the wrong targets.
    pub fn resume(dir: &Path, expected: Manifest) -> Result<ScanSession, StateError> {
        let manifest_path = dir.join("manifest.json");
        let text = fs::read_to_string(&manifest_path).map_err(|e| {
            StateError::io(
                format!(
                    "read session manifest {} (is this a checkpoint directory?)",
                    manifest_path.display()
                ),
                e,
            )
        })?;
        let stored = Manifest::from_json(&text)?;
        let diffs = expected.diff(&stored);
        if !diffs.is_empty() {
            return Err(StateError::Mismatch(diffs.join("; ")));
        }
        Ok(ScanSession {
            dir: dir.to_path_buf(),
            manifest: expected,
        })
    }

    /// The session's validated manifest.
    pub fn manifest(&self) -> &Manifest {
        &self.manifest
    }

    /// The session directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn worker_ckpt(&self, worker: u32) -> PathBuf {
        self.dir.join(format!("worker-{worker}.ckpt"))
    }

    fn worker_wal(&self, worker: u32) -> PathBuf {
        self.dir.join(format!("worker-{worker}.wal"))
    }

    /// A brand-new worker: empty journal, every range fresh.
    pub fn fresh_worker(&self, worker: u32, num_ranges: usize) -> Result<WorkerResume, StateError> {
        let wal = Wal::create(&self.worker_wal(worker))?;
        let sink = RunSink::new(
            wal,
            self.worker_ckpt(worker),
            worker,
            self.manifest.every,
            self.manifest.fingerprint(),
        );
        Ok(WorkerResume {
            modes: (0..num_ranges).map(|_| RangeMode::Fresh).collect(),
            tick: 0,
            metrics: None,
            sink,
        })
    }

    /// Loads a worker's resume state: reads its checkpoint, truncates the
    /// journal's torn tail back to the checkpointed sequence number, and
    /// classifies every range as skip / resume / fresh. A worker killed
    /// before its first checkpoint simply starts over.
    pub fn load_worker(&self, worker: u32, num_ranges: usize) -> Result<WorkerResume, StateError> {
        let ckpt_path = self.worker_ckpt(worker);
        if !ckpt_path.exists() {
            return self.fresh_worker(worker, num_ranges);
        }
        let ckpt = WorkerCheckpoint::read_from(&ckpt_path)?;
        let fp = self.manifest.fingerprint();
        if ckpt.config_fp != fp {
            return Err(StateError::Mismatch(format!(
                "worker {worker} checkpoint was written under configuration {:#018x}, \
                 this session's manifest fingerprints as {fp:#018x}",
                ckpt.config_fp
            )));
        }
        if ckpt.worker != worker {
            return Err(StateError::Corrupt(format!(
                "checkpoint {} belongs to worker {}, expected worker {worker}",
                ckpt_path.display(),
                ckpt.worker
            )));
        }
        let ckpt_range = ckpt.range_index as usize;
        if ckpt_range >= num_ranges {
            return Err(StateError::Corrupt(format!(
                "checkpoint references range {ckpt_range}, session has {num_ranges} ranges"
            )));
        }
        let (wal, payloads) = Wal::open_truncated(&self.worker_wal(worker), ckpt.wal_seq)?;
        let mut per_range: Vec<Vec<ScanRecord>> = (0..num_ranges).map(|_| Vec::new()).collect();
        for payload in &payloads {
            let (range_index, record) = decode_record(payload)?;
            let slot = per_range.get_mut(range_index as usize).ok_or_else(|| {
                StateError::Corrupt(format!(
                    "journalled record references range {range_index}, session has {num_ranges}"
                ))
            })?;
            slot.push(record);
        }
        let mid_range = ckpt.run.is_some();
        let mut run = ckpt.run;
        let modes = per_range
            .into_iter()
            .enumerate()
            .map(|(ri, records)| {
                if mid_range && ri == ckpt_range {
                    RangeMode::Resume(Box::new(RunResume {
                        state: run.take().expect("run consumed once"),
                        records,
                    }))
                } else if ri < ckpt_range || (!mid_range && ri == ckpt_range) {
                    RangeMode::Skip(records)
                } else {
                    RangeMode::Fresh
                }
            })
            .collect();
        let sink = RunSink::new(wal, ckpt_path, worker, self.manifest.every, fp);
        Ok(WorkerResume {
            modes,
            tick: ckpt.tick,
            metrics: Some(ckpt.metrics),
            sink,
        })
    }
}

/// Builds the session manifest for one scan invocation (the identity the
/// resume path checks against).
pub fn build_manifest(
    workers: usize,
    config: &ScanConfig,
    module: &dyn ProbeModule,
    ranges: &[ScanRange],
    blocklist: &Blocklist,
    world_seed: u64,
    every: u64,
) -> Manifest {
    Manifest {
        workers: workers as u64,
        seed: config.seed,
        world_seed,
        shard: config.shard,
        shards: config.shards,
        permutation: match config.permutation {
            Permutation::Cyclic => "cyclic",
            Permutation::Feistel => "feistel",
            Permutation::Sequential => "sequential",
        }
        .into(),
        module: module.name().into(),
        max_targets: config.max_targets,
        rate_pps: config.rate_pps,
        probes_per_target: config.probes_per_target as u64,
        rto_ticks: config.rto_ticks,
        max_retry_backlog: config.max_retry_backlog as u64,
        adaptive: config.adaptive_rate,
        record_silent: config.record_silent,
        ranges: ranges.iter().map(|r| r.to_string()).collect(),
        blocklist_fp: blocklist.fingerprint(),
        every,
    }
}

/// Derives whole-session [`ScanStats`] from a merged telemetry snapshot.
/// In a session the registries start at zero (or are restored from the
/// checkpoint, which itself started at zero), so the lifetime counters
/// *are* the session totals — including ranges replayed from the journal,
/// whose per-range deltas are otherwise unknown to a resumed process.
pub fn stats_from_snapshot(snap: &Snapshot) -> ScanStats {
    ScanStats {
        sent: snap.counter(names::SENT),
        blocked: snap.counter(names::BLOCKED),
        received: snap.counter(names::RECEIVED),
        invalid: snap.counter(names::INVALID),
        valid: snap.counter(names::VALID),
        retransmits: snap.counter(names::RETRANSMITS),
        rate_limited_suspected: snap.counter(names::RATE_LIMITED),
        gave_up: snap.counter(names::GAVE_UP),
        paced_secs: snap.counter(names::PACED_NANOS) as f64 / 1e9,
    }
}

/// One checkpointed scan invocation (everything but the network factory).
#[derive(Debug)]
pub struct SessionSpec<'a> {
    /// Parallel worker count.
    pub workers: usize,
    /// Base scanner configuration (workers nest inside its shard slot).
    pub config: ScanConfig,
    /// Target ranges, in scan order.
    pub ranges: &'a [ScanRange],
    /// Checkpoint directory.
    pub dir: &'a Path,
    /// Checkpoint cadence in send slots (0 = range boundaries only).
    pub every: u64,
    /// Resume from `dir` instead of starting a fresh session.
    pub resume: bool,
    /// Simulated-world seed recorded in the manifest (0 for live scans).
    pub world_seed: u64,
}

/// What [`run_session`] hands back.
#[derive(Debug)]
pub struct SessionOutcome {
    /// Merged results across workers and ranges. `interrupted` is set if
    /// any worker stopped on the abort signal; the session directory then
    /// holds the state a `resume: true` invocation continues from.
    pub results: ScanResults,
    /// Merged telemetry snapshot across workers.
    pub snapshot: Snapshot,
    /// First deferred checkpoint-I/O error from any worker's sink.
    pub sink_error: Option<StateError>,
}

/// Runs one complete checkpointed scan session: manifest → session
/// directory → per-worker restore → sharded execution → deterministic
/// merge. Shared by the `xmap` CLI and the kill/resume integration tests
/// so both exercise the identical orchestration.
pub fn run_session<N: Network + Send>(
    spec: &SessionSpec<'_>,
    module: &(dyn ProbeModule + Sync),
    blocklist: &Blocklist,
    abort: Option<&AbortSignal>,
    make_network: impl FnMut(usize, &Telemetry) -> N + 'static,
) -> Result<SessionOutcome, StateError> {
    let manifest = build_manifest(
        spec.workers,
        &spec.config,
        module,
        spec.ranges,
        blocklist,
        spec.world_seed,
        spec.every,
    );
    let session = if spec.resume {
        ScanSession::resume(spec.dir, manifest)?
    } else {
        ScanSession::create(spec.dir, manifest)?
    };

    let mut scanner = ParallelScanner::new(spec.workers, spec.config.clone(), make_network);
    let mut modes: Vec<Vec<RangeMode>> = Vec::with_capacity(spec.workers);
    for w in 0..spec.workers {
        let mut wr = if spec.resume {
            session.load_worker(w as u32, spec.ranges.len())?
        } else {
            session.fresh_worker(w as u32, spec.ranges.len())?
        };
        let worker = scanner.worker_mut(w);
        if let Some(snap) = wr.metrics.take() {
            worker.restore_metrics(&snap);
            worker.restore_clock(wr.tick);
        }
        if let Some(signal) = abort {
            worker.set_abort(signal.clone());
        }
        worker.set_sink(wr.sink);
        modes.push(wr.modes);
    }

    let mut results = scanner.run_with_modes(spec.ranges, module, blocklist, modes);
    let mut sink_error = None;
    for w in 0..spec.workers {
        if let Some(mut sink) = scanner.worker_mut(w).take_sink() {
            if sink_error.is_none() {
                sink_error = sink.take_error();
            }
        }
    }
    let snapshot = scanner.snapshot();
    results.stats = stats_from_snapshot(&snapshot);
    Ok(SessionOutcome {
        results,
        snapshot,
        sink_error,
    })
}

/// Binary-encodes one journalled record: the range index it belongs to,
/// then the record fields (little-endian, same codec as the checkpoint
/// sections).
fn encode_record(range_index: u32, r: &ScanRecord) -> Vec<u8> {
    let mut e = Encoder::new();
    e.u32(range_index);
    e.u128(r.target.addr().bits());
    e.u8(r.target.len());
    e.u128(r.probe_dst.bits());
    e.u128(r.responder.bits());
    match r.result {
        ProbeResult::Alive => e.u8(0),
        ProbeResult::Unreachable { code } => {
            e.u8(1);
            // Tag with the RFC 4443 code numbers themselves.
            e.u8(match code {
                UnreachCode::NoRoute => 0,
                UnreachCode::AdminProhibited => 1,
                UnreachCode::AddressUnreachable => 3,
                UnreachCode::PortUnreachable => 4,
                UnreachCode::SourcePolicy => 5,
                UnreachCode::RejectRoute => 6,
            });
        }
        ProbeResult::TimeExceeded => e.u8(2),
        ProbeResult::Refused => e.u8(3),
        ProbeResult::Invalid => e.u8(4),
    }
    match r.confidence {
        Confidence::FirstTry => e.u8(0),
        Confidence::Retry(n) => {
            e.u8(1);
            e.u32(n);
        }
    }
    e.finish()
}

/// Decodes a record written by [`encode_record`].
fn decode_record(raw: &[u8]) -> Result<(u32, ScanRecord), StateError> {
    let what = "journalled record";
    let mut d = Decoder::new(raw, what);
    let range_index = d.u32()?;
    let addr = d.u128()?;
    let len = d.u8()?;
    if len > 128 {
        return Err(StateError::Corrupt(format!(
            "{what}: invalid prefix length {len}"
        )));
    }
    let target = Prefix::new(addr.into(), len);
    let probe_dst = d.u128()?.into();
    let responder = d.u128()?.into();
    let result = match d.u8()? {
        0 => ProbeResult::Alive,
        1 => ProbeResult::Unreachable {
            code: match d.u8()? {
                0 => UnreachCode::NoRoute,
                1 => UnreachCode::AdminProhibited,
                3 => UnreachCode::AddressUnreachable,
                4 => UnreachCode::PortUnreachable,
                5 => UnreachCode::SourcePolicy,
                6 => UnreachCode::RejectRoute,
                t => {
                    return Err(StateError::Corrupt(format!(
                        "{what}: unknown unreachable code {t}"
                    )))
                }
            },
        },
        2 => ProbeResult::TimeExceeded,
        3 => ProbeResult::Refused,
        4 => ProbeResult::Invalid,
        t => {
            return Err(StateError::Corrupt(format!(
                "{what}: unknown result tag {t}"
            )))
        }
    };
    let confidence = match d.u8()? {
        0 => Confidence::FirstTry,
        1 => Confidence::Retry(d.u32()?),
        t => {
            return Err(StateError::Corrupt(format!(
                "{what}: unknown confidence tag {t}"
            )))
        }
    };
    d.expect_end()?;
    Ok((
        range_index,
        ScanRecord {
            target,
            probe_dst,
            responder,
            result,
            confidence,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmap_addr::Ip6;

    fn rec(result: ProbeResult, confidence: Confidence) -> ScanRecord {
        ScanRecord {
            target: "2405:200:dead::/48".parse().unwrap(),
            probe_dst: "2405:200:dead::42".parse::<Ip6>().unwrap(),
            responder: "2405:200:dead::1".parse::<Ip6>().unwrap(),
            result,
            confidence,
        }
    }

    #[test]
    fn record_codec_roundtrips_every_variant() {
        let cases = [
            rec(ProbeResult::Alive, Confidence::FirstTry),
            rec(
                ProbeResult::Unreachable {
                    code: UnreachCode::AddressUnreachable,
                },
                Confidence::Retry(2),
            ),
            rec(
                ProbeResult::Unreachable {
                    code: UnreachCode::RejectRoute,
                },
                Confidence::FirstTry,
            ),
            rec(ProbeResult::TimeExceeded, Confidence::Retry(1)),
            rec(ProbeResult::Refused, Confidence::FirstTry),
            rec(ProbeResult::Invalid, Confidence::FirstTry),
        ];
        for (i, r) in cases.iter().enumerate() {
            let raw = encode_record(i as u32, r);
            let (ri, back) = decode_record(&raw).unwrap();
            assert_eq!(ri, i as u32);
            assert_eq!(&back, r);
        }
    }

    #[test]
    fn decode_rejects_trailing_garbage() {
        let mut raw = encode_record(0, &rec(ProbeResult::Alive, Confidence::FirstTry));
        raw.push(0xAB);
        assert!(matches!(decode_record(&raw), Err(StateError::Corrupt(_))));
    }
}
