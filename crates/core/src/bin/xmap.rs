//! `xmap` — command-line front end for the scanner, mirroring the real
//! tool's interface against the simulated Internet.
//!
//! ```text
//! xmap [options] <target>...
//!
//!   targets                scan ranges, e.g. 2405:200::/32-64 (plain
//!                          prefixes default to /64 sub-prefix probing)
//!   -M, --probe-module M   icmp6_echoscan | udp6_scan | tcp6_synscan
//!   -p, --target-port P    destination port for UDP/TCP modules
//!   -x, --max-targets N    probe at most N targets per range
//!   -R, --rate PPS         packets-per-second budget (accounted)
//!   -s, --seed N           scan seed (permutation, cookies, IID fill)
//!       --world-seed N     seed of the simulated Internet
//!       --shard I          this shard (0-based)
//!       --shards N         total cooperating shards
//!       --workers N        send threads; the shard is split N ways and
//!                          merged deterministically (default 1). Status
//!                          lines need a single worker.
//!       --permutation P    cyclic | feistel | sequential
//!   -b, --block PREFIX     add a blocklist prefix (repeatable)
//!   -o, --output FILE     write results as CSV (default: stdout)
//!       --metrics-out FILE write the final telemetry snapshot as JSON
//!       --trace-out PATH   write the event trace as NDJSON. With
//!                          --workers 1, PATH is a single file; with N>1
//!                          workers PATH must be a directory, which gets
//!                          one worker-K.ndjson ring per worker
//!       --status-interval S status-line period in simulated seconds
//!                          (default 1.0; virtual clock, so deterministic)
//!       --checkpoint DIR   journal results and periodically checkpoint
//!                          scan state into DIR (created if missing)
//!       --checkpoint-every N checkpoint cadence in send slots
//!                          (default 1024; 0 = range boundaries only)
//!       --resume           continue the scan recorded in --checkpoint DIR;
//!                          refuses to run if this invocation's
//!                          configuration differs from the checkpointed one
//!       --kill-after-probes N abort the scan after the simulated world
//!                          handles N probes (exit code 3; for testing
//!                          checkpoint/resume)
//!       --transport T      lockstep (default) | sim | replay | tap.
//!                          `sim` runs the reactor engine over the
//!                          simulator transport (byte-identical output);
//!                          `replay` re-runs a recorded wire trace
//!                          (requires --replay-trace); `tap` names the
//!                          real-wire backend, which this offline build
//!                          refuses with an explanation
//!       --record-wire FILE record the run's wire traffic as an NDJSON
//!                          trace replayable with --transport replay
//!                          (single worker, no --checkpoint)
//!       --replay-trace FILE the recorded trace to replay; implies
//!                          --transport replay
//!   -q, --quiet            suppress the summary and status lines on stderr
//!
//! An interrupted checkpointed scan exits with code 3; rerunning the same
//! command line with `--resume` continues it, and the final output is
//! byte-identical to an uninterrupted run against the default simulator.
//!
//! Modes (first positional argument):
//!
//!   scan (default)         permuted scan over the target ranges
//!   trace ADDR             hop-limit walk toward one address
//!   alias PREFIX           de-aliasing check on one prefix
//! ```

use std::io::Write as _;
use std::process::ExitCode;

use xmap::{
    run_session, Blocklist, IcmpEchoProbe, ParallelScanner, Permutation, ProbeModule, ScanConfig,
    ScanEngine, ScanResults, Scanner, SessionSpec, TargetSpec, TcpSynProbe, UdpProbe, Verdict,
};
use xmap_netsim::packet::Network;
use xmap_netsim::services::{AppRequest, ServiceKind};
use xmap_netsim::{KillPoint, World};
use xmap_reactor::{ReplayNet, TapConfig, WireRecorder};
use xmap_state::{AbortSignal, StateError};
use xmap_telemetry::{Monitor, Telemetry};

/// Parsed command line.
#[derive(Debug, Clone, PartialEq)]
struct CliConfig {
    targets: TargetSpec,
    module: ModuleChoice,
    port: Option<u16>,
    max_targets: Option<u64>,
    rate_pps: Option<u64>,
    seed: u64,
    world_seed: u64,
    shard: u64,
    shards: u64,
    workers: usize,
    permutation: Permutation,
    blocked: Vec<String>,
    output: Option<String>,
    metrics_out: Option<String>,
    trace_out: Option<String>,
    status_interval: f64,
    quiet: bool,
    checkpoint: Option<String>,
    checkpoint_every: u64,
    resume: bool,
    kill_after_probes: Option<u64>,
    transport: TransportChoice,
    record_wire: Option<String>,
    replay_trace: Option<String>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ModuleChoice {
    Icmp,
    Udp,
    Tcp,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum TransportChoice {
    /// The synchronous lock-step engine (no transport layer at all).
    #[default]
    LockStep,
    /// Reactor engine over the simulator transport.
    Sim,
    /// Reactor engine over a recorded wire trace.
    Replay,
    /// Reactor engine over a real TAP device — refused by this build.
    Tap,
}

impl Default for CliConfig {
    fn default() -> Self {
        CliConfig {
            targets: TargetSpec::new(),
            module: ModuleChoice::Icmp,
            port: None,
            max_targets: None,
            rate_pps: None,
            seed: 1,
            world_seed: 0xDA7A_5EED,
            shard: 0,
            shards: 1,
            workers: 1,
            permutation: Permutation::Cyclic,
            blocked: Vec::new(),
            output: None,
            metrics_out: None,
            trace_out: None,
            status_interval: 1.0,
            quiet: false,
            checkpoint: None,
            checkpoint_every: 1024,
            resume: false,
            kill_after_probes: None,
            transport: TransportChoice::LockStep,
            record_wire: None,
            replay_trace: None,
        }
    }
}

fn parse_args(args: &[String]) -> Result<CliConfig, String> {
    let mut cfg = CliConfig::default();
    let mut iter = args.iter().peekable();
    let value = |iter: &mut std::iter::Peekable<std::slice::Iter<String>>,
                 flag: &str|
     -> Result<String, String> {
        iter.next()
            .cloned()
            .ok_or_else(|| format!("{flag} requires a value"))
    };
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "-M" | "--probe-module" => {
                cfg.module = match value(&mut iter, arg)?.as_str() {
                    "icmp6_echoscan" => ModuleChoice::Icmp,
                    "udp6_scan" => ModuleChoice::Udp,
                    "tcp6_synscan" => ModuleChoice::Tcp,
                    other => return Err(format!("unknown probe module {other:?}")),
                };
            }
            "-p" | "--target-port" => {
                cfg.port = Some(
                    value(&mut iter, arg)?
                        .parse()
                        .map_err(|_| "port must be 0..=65535".to_owned())?,
                );
            }
            "-x" | "--max-targets" => {
                cfg.max_targets = Some(
                    value(&mut iter, arg)?
                        .parse()
                        .map_err(|_| "max-targets must be an integer".to_owned())?,
                );
            }
            "-R" | "--rate" => {
                cfg.rate_pps = Some(
                    value(&mut iter, arg)?
                        .parse()
                        .map_err(|_| "rate must be an integer".to_owned())?,
                );
            }
            "-s" | "--seed" => {
                cfg.seed = value(&mut iter, arg)?
                    .parse()
                    .map_err(|_| "seed must be an integer".to_owned())?;
            }
            "--world-seed" => {
                cfg.world_seed = value(&mut iter, arg)?
                    .parse()
                    .map_err(|_| "world-seed must be an integer".to_owned())?;
            }
            "--shard" => {
                cfg.shard = value(&mut iter, arg)?
                    .parse()
                    .map_err(|_| "shard must be an integer".to_owned())?;
            }
            "--shards" => {
                cfg.shards = value(&mut iter, arg)?
                    .parse()
                    .map_err(|_| "shards must be an integer".to_owned())?;
            }
            "--workers" => {
                cfg.workers = value(&mut iter, arg)?
                    .parse()
                    .map_err(|_| "workers must be an integer".to_owned())?;
            }
            "--permutation" => {
                cfg.permutation = match value(&mut iter, arg)?.as_str() {
                    "cyclic" => Permutation::Cyclic,
                    "feistel" => Permutation::Feistel,
                    "sequential" => Permutation::Sequential,
                    other => return Err(format!("unknown permutation {other:?}")),
                };
            }
            "-b" | "--block" => cfg.blocked.push(value(&mut iter, arg)?),
            "-o" | "--output" => cfg.output = Some(value(&mut iter, arg)?),
            "--metrics-out" => cfg.metrics_out = Some(value(&mut iter, arg)?),
            "--trace-out" => cfg.trace_out = Some(value(&mut iter, arg)?),
            "--status-interval" => {
                cfg.status_interval = value(&mut iter, arg)?
                    .parse()
                    .map_err(|_| "status-interval must be a number of seconds".to_owned())?;
                if cfg.status_interval <= 0.0 || cfg.status_interval.is_nan() {
                    return Err("status-interval must be positive".to_owned());
                }
            }
            "--checkpoint" => cfg.checkpoint = Some(value(&mut iter, arg)?),
            "--checkpoint-every" => {
                cfg.checkpoint_every = value(&mut iter, arg)?
                    .parse()
                    .map_err(|_| "checkpoint-every must be an integer".to_owned())?;
            }
            "--resume" => cfg.resume = true,
            "--transport" => {
                cfg.transport = match value(&mut iter, arg)?.as_str() {
                    "lockstep" => TransportChoice::LockStep,
                    "sim" => TransportChoice::Sim,
                    "replay" => TransportChoice::Replay,
                    "tap" => TransportChoice::Tap,
                    other => return Err(format!("unknown transport {other:?}")),
                };
            }
            "--record-wire" => cfg.record_wire = Some(value(&mut iter, arg)?),
            "--replay-trace" => {
                cfg.replay_trace = Some(value(&mut iter, arg)?);
                if cfg.transport == TransportChoice::LockStep {
                    cfg.transport = TransportChoice::Replay;
                }
            }
            "--kill-after-probes" => {
                cfg.kill_after_probes = Some(
                    value(&mut iter, arg)?
                        .parse()
                        .map_err(|_| "kill-after-probes must be an integer".to_owned())?,
                );
            }
            "-q" | "--quiet" => cfg.quiet = true,
            "-h" | "--help" => return Err("help".to_owned()),
            other if other.starts_with('-') => {
                return Err(format!("unknown option {other:?}"));
            }
            target => {
                let range = target
                    .parse()
                    .map_err(|e| format!("bad target {target:?}: {e}"))?;
                cfg.targets.push(range);
            }
        }
    }
    if cfg.targets.ranges().is_empty() {
        return Err("at least one target range is required".to_owned());
    }
    if cfg.shards == 0 || cfg.shard >= cfg.shards {
        return Err("shard must be < shards and shards > 0".to_owned());
    }
    if matches!(cfg.module, ModuleChoice::Udp | ModuleChoice::Tcp) && cfg.port.is_none() {
        return Err("UDP/TCP modules require --target-port".to_owned());
    }
    if cfg.workers == 0 {
        return Err("workers must be at least 1".to_owned());
    }
    if cfg.resume && cfg.checkpoint.is_none() {
        return Err("--resume requires --checkpoint <dir>".to_owned());
    }
    if cfg.checkpoint.is_some() && cfg.trace_out.is_some() {
        return Err("--trace-out is not supported with --checkpoint".to_owned());
    }
    if cfg.transport == TransportChoice::Replay && cfg.replay_trace.is_none() {
        return Err("--transport replay requires --replay-trace <file>".to_owned());
    }
    if cfg.replay_trace.is_some() && cfg.transport != TransportChoice::Replay {
        return Err("--replay-trace requires --transport replay (or omit --transport)".to_owned());
    }
    if cfg.replay_trace.is_some() && cfg.record_wire.is_some() {
        return Err("--record-wire and --replay-trace are mutually exclusive".to_owned());
    }
    for (set, flag) in [
        (cfg.record_wire.is_some(), "--record-wire"),
        (cfg.replay_trace.is_some(), "--replay-trace"),
    ] {
        if set && cfg.workers > 1 {
            return Err(format!("{flag} records/replays one wire; use --workers 1"));
        }
        if set && cfg.checkpoint.is_some() {
            return Err(format!("{flag} is not supported with --checkpoint"));
        }
    }
    Ok(cfg)
}

/// Fails fast — before any scanning — if `path`'s parent directory does
/// not exist, so a long scan can never end with an unwritable output.
fn ensure_parent_dir(path: &str, flag: &str) -> Result<(), String> {
    if let Some(parent) = std::path::Path::new(path).parent() {
        if !parent.as_os_str().is_empty() && !parent.is_dir() {
            return Err(format!(
                "{flag} {path}: parent directory {} does not exist",
                parent.display()
            ));
        }
    }
    Ok(())
}

fn module_for(cfg: &CliConfig) -> Box<dyn ProbeModule + Send + Sync> {
    match cfg.module {
        ModuleChoice::Icmp => Box::new(IcmpEchoProbe),
        ModuleChoice::Tcp => Box::new(TcpSynProbe {
            port: cfg.port.expect("validated"),
        }),
        ModuleChoice::Udp => {
            let port = cfg.port.expect("validated");
            let request = ServiceKind::from_port(port)
                .map(|k| k.request())
                .unwrap_or(AppRequest::DnsQuery);
            Box::new(UdpProbe { port, request })
        }
    }
}

/// Writes one `worker-K.ndjson` event ring per worker into `dir`
/// (created if missing) — with several workers there is no single merged
/// trace, and interleaving rings would fake an ordering that never was.
fn write_worker_traces(dir: &str, scanner: &ParallelScanner<World>) -> Result<(), String> {
    let path = std::path::Path::new(dir);
    std::fs::create_dir_all(path).map_err(|e| format!("create {dir}: {e}"))?;
    for w in 0..scanner.workers() {
        let out = path.join(format!("worker-{w}.ndjson"));
        let ndjson = scanner.worker_telemetry(w).tracer.to_ndjson();
        std::fs::write(&out, ndjson).map_err(|e| format!("write {}: {e}", out.display()))?;
    }
    Ok(())
}

/// The single-worker scan path over any network backend — the plain
/// world, a [`WireRecorder`] around it, or a [`ReplayNet`]. Returns the
/// results and the network back (recorders need finishing).
fn run_single<N: Network>(
    cfg: &CliConfig,
    scan_config: ScanConfig,
    module: &dyn ProbeModule,
    blocklist: &Blocklist,
    make_net: impl FnOnce(&Telemetry) -> N,
) -> Result<(ScanResults, N), String> {
    let telemetry = if cfg.trace_out.is_some() {
        Telemetry::with_tracing()
    } else {
        Telemetry::new()
    };
    let net = make_net(&telemetry);
    let mut scanner = Scanner::with_telemetry(net, scan_config, telemetry.clone());
    if !cfg.quiet {
        // One virtual tick per send slot, so the configured packet rate
        // fixes the tick↔second conversion for the status lines.
        let ticks_per_sec = cfg.rate_pps.unwrap_or(100_000).max(1);
        let interval = ((cfg.status_interval * ticks_per_sec as f64) as u64).max(1);
        scanner.set_monitor(Monitor::new(&telemetry.registry, interval, ticks_per_sec));
    }
    let results = scanner.run_all(cfg.targets.ranges(), module, blocklist);
    if let Some(path) = &cfg.metrics_out {
        let json = telemetry.registry.snapshot().to_json();
        std::fs::write(path, json).map_err(|e| format!("write {path}: {e}"))?;
    }
    if let Some(path) = &cfg.trace_out {
        let ndjson = telemetry.tracer.to_ndjson();
        std::fs::write(path, ndjson).map_err(|e| format!("write {path}: {e}"))?;
    }
    Ok((results, scanner.into_network()))
}

/// Runs one scan invocation. `Ok(true)` means the scan was interrupted by
/// an armed kill point with its state checkpointed (exit code 3).
fn run(cfg: CliConfig) -> Result<bool, String> {
    // Fail on unwritable outputs before spending any scan time on them.
    for (path, flag) in [
        (&cfg.output, "--output"),
        (&cfg.metrics_out, "--metrics-out"),
        (&cfg.trace_out, "--trace-out"),
    ] {
        if let Some(path) = path {
            ensure_parent_dir(path, flag)?;
        }
    }
    let mut blocklist = Blocklist::with_standard_reserved();
    for p in &cfg.blocked {
        blocklist.insert(
            p.parse()
                .map_err(|e| format!("bad blocklist prefix {p:?}: {e}"))?,
            Verdict::Deny,
        );
    }
    if cfg.transport == TransportChoice::Tap {
        // The stub's error is the canonical explanation of what a
        // real-wire build would need.
        let err = xmap_reactor::tap::open(&TapConfig::default()).unwrap_err();
        return Err(err.to_string());
    }
    let scan_config = ScanConfig {
        seed: cfg.seed,
        shard: cfg.shard,
        shards: cfg.shards,
        permutation: cfg.permutation,
        max_targets: cfg.max_targets,
        rate_pps: cfg.rate_pps,
        engine: match cfg.transport {
            TransportChoice::LockStep => ScanEngine::LockStep,
            _ => ScanEngine::Reactor,
        },
        ..Default::default()
    };
    let module = module_for(&cfg);
    let started = std::time::Instant::now();
    let results: ScanResults;
    let mut sink_error = None;
    if let Some(dir) = &cfg.checkpoint {
        // Checkpointed session: journal + periodic snapshots, resumable.
        let world_seed = cfg.world_seed;
        let kill = cfg.kill_after_probes;
        let signal = AbortSignal::new();
        let spec = SessionSpec {
            workers: cfg.workers,
            config: scan_config,
            ranges: cfg.targets.ranges(),
            dir: std::path::Path::new(dir),
            every: cfg.checkpoint_every,
            resume: cfg.resume,
            world_seed,
        };
        let kill_signal = signal.clone();
        let outcome = run_session(
            &spec,
            module.as_ref(),
            &blocklist,
            Some(&signal),
            move |_, telemetry| {
                let mut world = World::new(world_seed);
                world.set_telemetry(telemetry);
                if let Some(n) = kill {
                    world.arm_kill(
                        KillPoint {
                            after_probes: Some(n),
                            ..Default::default()
                        },
                        kill_signal.clone(),
                    );
                }
                world
            },
        )
        .map_err(|e| match e {
            StateError::Mismatch(why) => format!(
                "cannot resume: this invocation's configuration does not match \
                 the checkpointed session; refusing to continue against the \
                 wrong targets ({why})"
            ),
            other => format!("checkpoint: {other}"),
        })?;
        results = outcome.results;
        sink_error = outcome.sink_error;
        if let Some(path) = &cfg.metrics_out {
            let json = outcome.snapshot.to_json();
            std::fs::write(path, json).map_err(|e| format!("write {path}: {e}"))?;
        }
    } else if cfg.workers > 1 {
        // Parallel path: each worker owns a nested shard slot, a world
        // replica and a telemetry registry; results and metrics merge
        // deterministically, so the CSV and the snapshot are byte-identical
        // to a single-worker run. The live monitor stays off — there is no
        // single registry to render mid-run. Event rings are likewise
        // per-worker, so --trace-out names a directory here.
        if let Some(dir) = &cfg.trace_out {
            if std::path::Path::new(dir).is_file() {
                return Err(format!(
                    "--trace-out {dir}: {} workers write one event ring each; \
                     pass a directory (it will hold worker-N.ndjson), not a file",
                    cfg.workers
                ));
            }
        }
        let world_seed = cfg.world_seed;
        let make_world = move |_w: usize, telemetry: &Telemetry| {
            let mut world = World::new(world_seed);
            world.set_telemetry(telemetry);
            world
        };
        let mut scanner = if cfg.trace_out.is_some() {
            ParallelScanner::new_traced(cfg.workers, scan_config, make_world)
        } else {
            ParallelScanner::new(cfg.workers, scan_config, make_world)
        };
        results = scanner.run_all(cfg.targets.ranges(), module.as_ref(), &blocklist);
        if let Some(path) = &cfg.metrics_out {
            let json = scanner.snapshot().to_json();
            std::fs::write(path, json).map_err(|e| format!("write {path}: {e}"))?;
        }
        if let Some(dir) = &cfg.trace_out {
            write_worker_traces(dir, &scanner)?;
        }
    } else if let Some(trace_path) = &cfg.replay_trace {
        // Replay: no simulator at all — the recorded trace answers every
        // probe, and any divergence from the recording is a hard error.
        let net = ReplayNet::from_file(std::path::Path::new(trace_path))
            .map_err(|e| format!("--replay-trace {trace_path}: {e}"))?;
        let (r, net) = run_single(&cfg, scan_config, module.as_ref(), &blocklist, |_| net)?;
        if net.desyncs() > 0 || net.mismatched_sends() > 0 {
            return Err(format!(
                "replay diverged from the recorded trace ({} desyncs, {} mismatched \
                 sends); same seed/config/targets as the recording run?",
                net.desyncs(),
                net.mismatched_sends()
            ));
        }
        results = r;
    } else if let Some(record_path) = &cfg.record_wire {
        ensure_parent_dir(record_path, "--record-wire")?;
        let world_seed = cfg.world_seed;
        let (r, recorder) = run_single(
            &cfg,
            scan_config,
            module.as_ref(),
            &blocklist,
            |telemetry| {
                let mut world = World::new(world_seed);
                world.set_telemetry(telemetry);
                WireRecorder::new(world)
            },
        )?;
        recorder
            .save(std::path::Path::new(record_path))
            .map_err(|e| format!("write {record_path}: {e}"))?;
        results = r;
    } else {
        let world_seed = cfg.world_seed;
        let (r, _world) = run_single(
            &cfg,
            scan_config,
            module.as_ref(),
            &blocklist,
            |telemetry| {
                let mut world = World::new(world_seed);
                world.set_telemetry(telemetry);
                world
            },
        )?;
        results = r;
    }

    let csv = xmap::output::to_csv(&results.records);
    match &cfg.output {
        Some(path) => std::fs::write(path, csv).map_err(|e| format!("write {path}: {e}"))?,
        None => print!("{csv}"),
    }
    if !cfg.quiet {
        let mut err = std::io::stderr().lock();
        let _ = writeln!(
            err,
            "# {}: sent {} | received {} | valid {} | blocked {} | hit rate {:.4}% | {:.2?}{}",
            module.name(),
            results.stats.sent,
            results.stats.received,
            results.stats.valid,
            results.stats.blocked,
            results.stats.hit_rate() * 100.0,
            started.elapsed(),
            if results.stats.paced_secs > 0.0 {
                format!(
                    " | would take {:.1}s at the configured rate",
                    results.stats.paced_secs
                )
            } else {
                String::new()
            }
        );
        if results.interrupted {
            let _ = writeln!(
                err,
                "# scan interrupted; state checkpointed — rerun with --resume to continue"
            );
        }
    }
    if let Some(e) = sink_error {
        // The scan itself completed; only durability is compromised. Warn
        // rather than fail so the results are not discarded, but flag that
        // the on-disk checkpoint may lag the printed output.
        eprintln!(
            "# WARNING: checkpoint durability degraded and not recovered ({e}); \
             results above are complete, but the session directory may be stale"
        );
    }
    Ok(results.interrupted)
}

/// Hop-limit walk toward an address, printing each responding hop.
fn run_trace(addr: &str, world_seed: u64) -> Result<(), String> {
    let dst: xmap_addr::Ip6 = addr
        .parse()
        .map_err(|e| format!("bad address {addr:?}: {e}"))?;
    let mut scanner = Scanner::new(World::new(world_seed), ScanConfig::default());
    let mut silent = 0;
    for ttl in 1u8..=64 {
        let responses = scanner.probe_addr(dst, &IcmpEchoProbe, ttl);
        match responses.first() {
            Some((src, result)) => {
                silent = 0;
                println!("{ttl:>3}  {src}  {result:?}");
                if !matches!(result, xmap::ProbeResult::TimeExceeded) {
                    return Ok(());
                }
            }
            None => {
                println!("{ttl:>3}  *");
                silent += 1;
                if silent >= 2 {
                    return Ok(());
                }
            }
        }
    }
    Ok(())
}

/// De-aliasing check: probe several random IIDs under the prefix; aliased
/// prefixes answer every probe from the probed address itself.
fn run_alias_check(prefix: &str, world_seed: u64) -> Result<(), String> {
    let p: xmap_addr::Prefix = prefix
        .parse()
        .map_err(|e| format!("bad prefix {prefix:?}: {e}"))?;
    let mut scanner = Scanner::new(World::new(world_seed), ScanConfig::default());
    let mut self_replies = 0;
    const K: u64 = 4;
    for attempt in 0..K {
        let dst = xmap::fill_host_bits(p, 0xa11a5 + attempt);
        let alive = scanner
            .probe_addr(dst, &IcmpEchoProbe, 64)
            .iter()
            .any(|(src, r)| matches!(r, xmap::ProbeResult::Alive) && *src == dst);
        println!(
            "probe {dst}: {}",
            if alive {
                "echo reply (self)"
            } else {
                "no self-reply"
            }
        );
        if alive {
            self_replies += 1;
        } else {
            break;
        }
    }
    println!(
        "{p}: {}",
        if self_replies == K {
            "ALIASED"
        } else {
            "not aliased"
        }
    );
    Ok(())
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // Mode dispatch: `xmap trace <addr>` / `xmap alias <prefix>`.
    if args.first().map(String::as_str) == Some("trace") {
        let Some(addr) = args.get(1) else {
            eprintln!("xmap: trace requires an address");
            return ExitCode::from(2);
        };
        return match run_trace(addr, 0xDA7A_5EED) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("xmap: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if args.first().map(String::as_str) == Some("alias") {
        let Some(prefix) = args.get(1) else {
            eprintln!("xmap: alias requires a prefix");
            return ExitCode::from(2);
        };
        return match run_alias_check(prefix, 0xDA7A_5EED) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("xmap: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if args.first().map(String::as_str) == Some("scan") {
        args.remove(0);
    }
    match parse_args(&args) {
        Ok(cfg) => match run(cfg) {
            Ok(false) => ExitCode::SUCCESS,
            // Interrupted-but-checkpointed is its own exit code so scripts
            // can distinguish "resume me" from hard failures.
            Ok(true) => ExitCode::from(3),
            Err(e) => {
                eprintln!("xmap: {e}");
                ExitCode::FAILURE
            }
        },
        Err(e) if e == "help" => {
            eprintln!("usage: xmap [options] <target>... (see the module docs)");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("xmap: {e}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_owned).collect()
    }

    #[test]
    fn parses_minimal_invocation() {
        let cfg = parse_args(&args("2405:200::/32-64")).unwrap();
        assert_eq!(cfg.targets.ranges().len(), 1);
        assert_eq!(cfg.module, ModuleChoice::Icmp);
        assert_eq!(cfg.shards, 1);
    }

    #[test]
    fn parses_full_invocation() {
        let cfg = parse_args(&args(
            "-M tcp6_synscan -p 80 -x 1000 -R 25000 -s 7 --world-seed 9 \
             --shard 1 --shards 4 --permutation feistel -b 2405:200:dead::/48 \
             -o /tmp/out.csv -q 2405:200::/32-64 2601::/24-56",
        ))
        .unwrap();
        assert_eq!(cfg.module, ModuleChoice::Tcp);
        assert_eq!(cfg.port, Some(80));
        assert_eq!(cfg.max_targets, Some(1000));
        assert_eq!(cfg.rate_pps, Some(25000));
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.world_seed, 9);
        assert_eq!((cfg.shard, cfg.shards), (1, 4));
        assert_eq!(cfg.permutation, Permutation::Feistel);
        assert_eq!(cfg.blocked, vec!["2405:200:dead::/48".to_owned()]);
        assert_eq!(cfg.output.as_deref(), Some("/tmp/out.csv"));
        assert!(cfg.quiet);
        assert_eq!(cfg.targets.ranges().len(), 2);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse_args(&args("")).is_err());
        assert!(parse_args(&args("not-a-range")).is_err());
        assert!(parse_args(&args("-M nope 2405:200::/32")).is_err());
        assert!(
            parse_args(&args("-M udp6_scan 2405:200::/32")).is_err(),
            "udp needs port"
        );
        assert!(parse_args(&args("--shard 4 --shards 4 2405:200::/32")).is_err());
        assert!(
            parse_args(&args("-x 2405:200::/32")).is_err(),
            "missing value"
        );
        assert!(
            parse_args(&args("-p 99999 2405:200::/32")).is_err(),
            "port overflow"
        );
    }

    #[test]
    fn parses_telemetry_flags() {
        let cfg = parse_args(&args(
            "--metrics-out /tmp/m.json --trace-out /tmp/t.ndjson \
             --status-interval 0.5 2405:200::/32-64",
        ))
        .unwrap();
        assert_eq!(cfg.metrics_out.as_deref(), Some("/tmp/m.json"));
        assert_eq!(cfg.trace_out.as_deref(), Some("/tmp/t.ndjson"));
        assert!((cfg.status_interval - 0.5).abs() < 1e-12);
        assert!(parse_args(&args("--status-interval 0 2405:200::/32")).is_err());
        assert!(parse_args(&args("--status-interval x 2405:200::/32")).is_err());
    }

    #[test]
    fn parses_workers_flag() {
        let cfg = parse_args(&args("--workers 4 2405:200::/32-64")).unwrap();
        assert_eq!(cfg.workers, 4);
        assert_eq!(parse_args(&args("2405:200::/32-64")).unwrap().workers, 1);
        assert!(parse_args(&args("--workers 0 2405:200::/32")).is_err());
        let cfg = parse_args(&args("--workers 2 --trace-out /tmp/t 2405:200::/32")).unwrap();
        assert_eq!(
            cfg.trace_out.as_deref(),
            Some("/tmp/t"),
            "multi-worker tracing parses; the directory check happens at run time"
        );
    }

    #[test]
    fn multi_worker_trace_writes_one_ring_per_worker() {
        let dir = std::env::temp_dir().join(format!("xmap-trace-rings-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let dir_s = dir.to_str().unwrap().to_owned();
        let cfg = parse_args(&args(&format!(
            "-x 2048 -q --workers 3 --trace-out {dir_s} 2402:3a80::/32-64"
        )))
        .unwrap();
        run(cfg).unwrap();
        for w in 0..3 {
            let ring = dir.join(format!("worker-{w}.ndjson"));
            assert!(ring.is_file(), "missing {}", ring.display());
        }

        // A plain file in place of the directory is a clean pre-scan error.
        let file = std::env::temp_dir().join(format!("xmap-trace-file-{}", std::process::id()));
        std::fs::write(&file, b"").unwrap();
        let cfg = parse_args(&args(&format!(
            "-x 64 -q --workers 2 --trace-out {} 2402:3a80::/32-64",
            file.display()
        )))
        .unwrap();
        let err = run(cfg).unwrap_err();
        assert!(err.contains("pass a directory"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_file(&file);
    }

    #[test]
    fn parallel_workers_match_single_worker_output() {
        let cfg = parse_args(&args("-x 1024 -q --workers 3 2402:3a80::/32-64")).unwrap();
        let scan_config = ScanConfig {
            seed: cfg.seed,
            max_targets: cfg.max_targets,
            ..Default::default()
        };
        let run_with = |workers: usize| {
            let world_seed = cfg.world_seed;
            let mut ps = ParallelScanner::new(workers, scan_config.clone(), move |_, telemetry| {
                let mut world = World::new(world_seed);
                world.set_telemetry(telemetry);
                world
            });
            let results = ps.run_all(
                cfg.targets.ranges(),
                &IcmpEchoProbe,
                &Blocklist::allow_all(),
            );
            (
                xmap::output::to_csv(&results.records),
                ps.snapshot().to_json(),
            )
        };
        let (csv1, json1) = run_with(1);
        let (csv3, json3) = run_with(cfg.workers);
        assert_eq!(csv1, csv3);
        assert_eq!(json1, json3);
    }

    #[test]
    fn parses_checkpoint_flags() {
        let cfg = parse_args(&args(
            "--checkpoint /tmp/ck --checkpoint-every 512 --resume \
             --kill-after-probes 100 2405:200::/32-64",
        ))
        .unwrap();
        assert_eq!(cfg.checkpoint.as_deref(), Some("/tmp/ck"));
        assert_eq!(cfg.checkpoint_every, 512);
        assert!(cfg.resume);
        assert_eq!(cfg.kill_after_probes, Some(100));
        assert_eq!(
            parse_args(&args("--checkpoint /tmp/ck 2405:200::/32"))
                .unwrap()
                .checkpoint_every,
            1024
        );
        assert!(
            parse_args(&args("--resume 2405:200::/32")).is_err(),
            "resume needs a checkpoint dir"
        );
        assert!(
            parse_args(&args(
                "--checkpoint /tmp/ck --trace-out /tmp/t 2405:200::/32"
            ))
            .is_err(),
            "tracing is per-worker, not per-session"
        );
    }

    #[test]
    fn parses_transport_flags() {
        assert_eq!(
            parse_args(&args("2405:200::/32")).unwrap().transport,
            TransportChoice::LockStep
        );
        assert_eq!(
            parse_args(&args("--transport sim 2405:200::/32"))
                .unwrap()
                .transport,
            TransportChoice::Sim
        );
        // --replay-trace implies the replay transport.
        let cfg = parse_args(&args("--replay-trace /tmp/w.ndjson 2405:200::/32")).unwrap();
        assert_eq!(cfg.transport, TransportChoice::Replay);
        assert_eq!(cfg.replay_trace.as_deref(), Some("/tmp/w.ndjson"));
        assert!(parse_args(&args("--transport nope 2405:200::/32")).is_err());
        assert!(
            parse_args(&args("--transport replay 2405:200::/32")).is_err(),
            "replay needs a trace file"
        );
        assert!(
            parse_args(&args("--transport sim --replay-trace /tmp/w 2405:200::/32")).is_err(),
            "trace with a non-replay transport is contradictory"
        );
        assert!(parse_args(&args(
            "--record-wire /tmp/a --replay-trace /tmp/b 2405:200::/32"
        ))
        .is_err());
        assert!(
            parse_args(&args("--workers 2 --record-wire /tmp/w 2405:200::/32")).is_err(),
            "recording is single-wire"
        );
        assert!(parse_args(&args(
            "--checkpoint /tmp/ck --replay-trace /tmp/w 2405:200::/32"
        ))
        .is_err());
    }

    #[test]
    fn tap_transport_refuses_with_explanation() {
        let cfg = parse_args(&args("-x 8 -q --transport tap 2402:3a80::/32-64")).unwrap();
        let err = run(cfg).unwrap_err();
        assert!(err.contains("TAP transport unavailable"), "{err}");
    }

    /// `--transport sim` must produce the same CSV as the default
    /// lock-step engine, and a `--record-wire` run's trace must replay
    /// to the same CSV through `--replay-trace`.
    #[test]
    fn sim_record_and_replay_round_trip_through_the_cli() {
        let tmp = std::env::temp_dir().join(format!("xmap-cli-wire-{}", std::process::id()));
        std::fs::create_dir_all(&tmp).unwrap();
        let csv_lockstep = tmp.join("lockstep.csv");
        let csv_sim = tmp.join("sim.csv");
        let csv_replay = tmp.join("replay.csv");
        let trace = tmp.join("wire.ndjson");

        let base = "-x 2048 -q -s 3 2402:3a80::/32-64";
        let cfg = parse_args(&args(&format!("{base} -o {}", csv_lockstep.display()))).unwrap();
        run(cfg).unwrap();
        let cfg = parse_args(&args(&format!(
            "{base} --transport sim -o {} --record-wire {}",
            csv_sim.display(),
            trace.display()
        )))
        .unwrap();
        run(cfg).unwrap();
        let cfg = parse_args(&args(&format!(
            "{base} --replay-trace {} -o {}",
            trace.display(),
            csv_replay.display()
        )))
        .unwrap();
        run(cfg).unwrap();

        let lockstep = std::fs::read_to_string(&csv_lockstep).unwrap();
        let sim = std::fs::read_to_string(&csv_sim).unwrap();
        let replay = std::fs::read_to_string(&csv_replay).unwrap();
        assert_eq!(lockstep, sim, "--transport sim diverged from lock-step");
        assert_eq!(sim, replay, "--replay-trace diverged from the recording");
        let _ = std::fs::remove_dir_all(&tmp);
    }

    #[test]
    fn missing_parent_dir_is_a_clean_error() {
        let err = ensure_parent_dir("/nonexistent-xmap-dir/out.csv", "--output").unwrap_err();
        assert!(err.contains("--output"), "{err}");
        assert!(err.contains("does not exist"), "{err}");
        assert!(ensure_parent_dir("out.csv", "--output").is_ok());
        assert!(ensure_parent_dir("/tmp/out.csv", "--output").is_ok());
    }

    #[test]
    fn udp_module_picks_service_request() {
        let cfg = parse_args(&args("-M udp6_scan -p 53 2405:200::/32")).unwrap();
        let module = module_for(&cfg);
        assert_eq!(module.name(), "udp6_scan");
    }

    #[test]
    fn end_to_end_scan_produces_csv() {
        let cfg = parse_args(&args("-x 4096 -q 2402:3a80::/32-64")).unwrap();
        // Run against a tiny slice; validate via the library directly.
        let mut scanner = Scanner::new(
            World::new(cfg.world_seed),
            ScanConfig {
                seed: cfg.seed,
                max_targets: cfg.max_targets,
                ..Default::default()
            },
        );
        let results = scanner.run_all(
            cfg.targets.ranges(),
            &IcmpEchoProbe,
            &Blocklist::with_standard_reserved(),
        );
        assert!(results.stats.sent > 0);
        let csv = xmap::output::to_csv(&results.records);
        assert!(csv.starts_with(xmap::output::CSV_HEADER));
        assert_eq!(
            xmap::output::from_csv(&csv).unwrap().len(),
            results.records.len()
        );
    }
}
