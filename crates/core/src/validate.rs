//! Stateless response validation.
//!
//! ZMap-family scanners keep no per-probe state: the probe encodes a keyed
//! cookie into header fields that the response (or the ICMPv6 error's quote
//! of the invoking packet) must echo back. A response that doesn't carry
//! the right cookie is background noise or a spoofing attempt and is
//! discarded. For ICMPv6 echo probes the cookie rides in the
//! identifier/sequence pair; for UDP/TCP it rides in the source port.

use xmap_addr::Ip6;
use xmap_netsim::packet::{Invoking, QuotedProto};

/// Keyed cookie generator/validator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Validator {
    key: u64,
}

impl Validator {
    /// Creates a validator from a scan-secret key.
    pub fn new(key: u64) -> Self {
        Validator { key }
    }

    /// The 32-bit cookie for a probe destination.
    pub fn cookie(&self, dst: Ip6) -> u32 {
        let mut h = self.key ^ 0x517c_c1b7_2722_0a95;
        for half in [dst.bits() as u64, (dst.bits() >> 64) as u64] {
            h ^= half;
            h = h.wrapping_mul(0x5bd1_e995_4d25_1e87).rotate_left(31);
        }
        (h ^ (h >> 32)) as u32
    }

    /// Cookie split into echo (identifier, sequence).
    pub fn echo_fields(&self, dst: Ip6) -> (u16, u16) {
        let c = self.cookie(dst);
        ((c >> 16) as u16, c as u16)
    }

    /// Cookie folded into a source port in the ephemeral range (49152+).
    pub fn source_port(&self, dst: Ip6) -> u16 {
        49152 + (self.cookie(dst) % 16384) as u16
    }

    /// Validates echoed identifier/sequence against the probed destination.
    pub fn check_echo(&self, dst: Ip6, ident: u16, seq: u16) -> bool {
        self.echo_fields(dst) == (ident, seq)
    }

    /// Validates an ICMPv6 error's quote: the quoted destination must carry
    /// the cookie we would have used for it, in whichever transport field
    /// the probe used.
    pub fn check_quote(&self, invoking: &Invoking) -> bool {
        match invoking.proto {
            QuotedProto::Icmp { ident, seq } => self.check_echo(invoking.dst, ident, seq),
            QuotedProto::Udp { src_port, .. } | QuotedProto::Tcp { src_port, .. } => {
                self.source_port(invoking.dst) == src_port
            }
            QuotedProto::OtherIcmp => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(s: &str) -> Ip6 {
        s.parse().unwrap()
    }

    #[test]
    fn cookie_is_deterministic_and_dst_sensitive() {
        let v = Validator::new(42);
        assert_eq!(v.cookie(a("2001:db8::1")), v.cookie(a("2001:db8::1")));
        assert_ne!(v.cookie(a("2001:db8::1")), v.cookie(a("2001:db8::2")));
        // Key-sensitive too.
        assert_ne!(
            Validator::new(1).cookie(a("2001:db8::1")),
            Validator::new(2).cookie(a("2001:db8::1"))
        );
    }

    #[test]
    fn echo_roundtrip_validates() {
        let v = Validator::new(7);
        let dst = a("2405:200:1:2::3");
        let (ident, seq) = v.echo_fields(dst);
        assert!(v.check_echo(dst, ident, seq));
        assert!(!v.check_echo(dst, ident.wrapping_add(1), seq));
        assert!(!v.check_echo(a("2405:200:1:2::4"), ident, seq));
    }

    #[test]
    fn source_port_in_ephemeral_range() {
        let v = Validator::new(99);
        for i in 0..100u64 {
            let port = v.source_port(Ip6::new(i as u128));
            assert!((49152..65536).contains(&(port as u32)));
        }
    }

    #[test]
    fn quote_validation_icmp_and_udp() {
        let v = Validator::new(5);
        let dst = a("2601::dead");
        let (ident, seq) = v.echo_fields(dst);
        let good = Invoking {
            src: a("fd::1"),
            dst,
            proto: QuotedProto::Icmp { ident, seq },
        };
        assert!(v.check_quote(&good));
        let bad = Invoking {
            src: a("fd::1"),
            dst,
            proto: QuotedProto::Icmp {
                ident: ident ^ 1,
                seq,
            },
        };
        assert!(!v.check_quote(&bad));
        let udp = Invoking {
            src: a("fd::1"),
            dst,
            proto: QuotedProto::Udp {
                src_port: v.source_port(dst),
                dst_port: 53,
            },
        };
        assert!(v.check_quote(&udp));
        let other = Invoking {
            src: a("fd::1"),
            dst,
            proto: QuotedProto::OtherIcmp,
        };
        assert!(!v.check_quote(&other));
    }
}
