//! End-to-end determinism of the parallel shard executor: seeded 1-, 2-
//! and 4-worker runs must produce byte-identical telemetry snapshots
//! (the `--metrics-out` payload) and identical ordered result sets.

use xmap::{Blocklist, IcmpEchoProbe, ParallelScanner, ScanConfig, ScanRecord, Scanner};
use xmap_addr::ScanRange;
use xmap_netsim::World;
use xmap_telemetry::Telemetry;

const WORLD_SEED: u64 = 11;

fn range() -> ScanRange {
    "2402:3a80::/32-64".parse().unwrap()
}

fn config() -> ScanConfig {
    ScanConfig {
        seed: 11,
        max_targets: Some(16_384),
        ..Default::default()
    }
}

fn run_parallel(workers: usize) -> (Vec<ScanRecord>, String) {
    let mut ps = ParallelScanner::new(workers, config(), |_, telemetry| {
        let mut world = World::new(WORLD_SEED);
        world.set_telemetry(telemetry);
        world
    });
    let results = ps.run(&range(), &IcmpEchoProbe, &Blocklist::allow_all());
    (results.records, ps.snapshot().to_json())
}

#[test]
fn worker_counts_produce_identical_snapshots_and_results() {
    let (records_1, json_1) = run_parallel(1);
    let (records_2, json_2) = run_parallel(2);
    let (records_4, json_4) = run_parallel(4);

    // A degenerate pass proves nothing; make sure the scan found devices.
    assert!(
        records_1.len() > 50,
        "expected a lively world, got {} records",
        records_1.len()
    );

    assert_eq!(records_1, records_2, "2-worker records diverge");
    assert_eq!(records_1, records_4, "4-worker records diverge");
    assert_eq!(json_1, json_2, "2-worker metrics snapshot diverges");
    assert_eq!(json_1, json_4, "4-worker metrics snapshot diverges");
}

#[test]
fn parallel_single_worker_matches_legacy_scanner() {
    let (records_1, json_1) = run_parallel(1);

    let telemetry = Telemetry::new();
    let mut world = World::new(WORLD_SEED);
    world.set_telemetry(&telemetry);
    let mut scanner = Scanner::with_telemetry(world, config(), telemetry);
    let serial = scanner.run(&range(), &IcmpEchoProbe, &Blocklist::allow_all());

    // Same telemetry bytes; same record set in canonical (target) order.
    assert_eq!(json_1, scanner.telemetry().registry.snapshot().to_json());
    let mut serial_records = serial.records;
    serial_records.sort_by_key(|r| r.target);
    assert_eq!(records_1, serial_records);
}
