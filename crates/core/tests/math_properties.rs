//! Property-based tests for the modular-arithmetic module (the GMP
//! replacement) — correctness here underwrites the full-cycle guarantee of
//! the address permutation.

use proptest::prelude::*;
use xmap::math::{gcd, is_prime, mulmod, next_prime, powmod, prime_factors, primitive_root};

/// Reference primality by trial division (small n only).
fn is_prime_naive(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    let mut d = 2u64;
    while d * d <= n {
        if n.is_multiple_of(d) {
            return false;
        }
        d += 1;
    }
    true
}

proptest! {
    /// mulmod agrees with native arithmetic wherever native arithmetic is
    /// exact.
    #[test]
    fn mulmod_matches_native(a in any::<u64>(), b in any::<u64>(), m in 1u64..) {
        let expected = (a as u128 * b as u128) % m as u128;
        prop_assert_eq!(mulmod(a as u128, b as u128, m as u128), expected);
    }

    /// mulmod ring laws hold for large (>64-bit) operands too.
    #[test]
    fn mulmod_ring_laws(a in any::<u128>(), b in any::<u128>(), c in any::<u128>(), m in 2u128..(1 << 126)) {
        let (a, b, c) = (a % m, b % m, c % m);
        // Commutativity.
        prop_assert_eq!(mulmod(a, b, m), mulmod(b, a, m));
        // Associativity.
        prop_assert_eq!(mulmod(mulmod(a, b, m), c, m), mulmod(a, mulmod(b, c, m), m));
        // Identity.
        prop_assert_eq!(mulmod(a, 1, m), a);
        // Zero.
        prop_assert_eq!(mulmod(a, 0, m), 0);
    }

    /// powmod matches iterated mulmod for small exponents.
    #[test]
    fn powmod_matches_iterated(base in any::<u64>(), e in 0u32..64, m in 2u64..) {
        let m = m as u128;
        let mut acc = 1u128 % m;
        for _ in 0..e {
            acc = mulmod(acc, base as u128, m);
        }
        prop_assert_eq!(powmod(base as u128, e as u128, m), acc);
    }

    /// Fermat's little theorem: a^(p-1) ≡ 1 (mod p) for prime p ∤ a.
    #[test]
    fn fermat_little_theorem(seed in 2u64..1_000_000, a in 2u128..1_000_000) {
        let p = next_prime(seed as u128);
        if a % p != 0 {
            prop_assert_eq!(powmod(a, p - 1, p), 1, "p = {}", p);
        }
    }

    /// Miller–Rabin agrees with trial division on small numbers.
    #[test]
    fn primality_matches_naive(n in 0u64..200_000) {
        prop_assert_eq!(is_prime(n as u128), is_prime_naive(n), "n = {}", n);
    }

    /// next_prime returns a prime strictly above its argument with no
    /// prime in between.
    #[test]
    fn next_prime_is_next(n in 0u64..100_000) {
        let p = next_prime(n as u128);
        prop_assert!(p > n as u128);
        prop_assert!(is_prime(p));
        for candidate in (n as u128 + 1)..p {
            prop_assert!(!is_prime(candidate), "missed prime {} below {}", candidate, p);
        }
    }

    /// The distinct prime factors of n multiply into a divisor of n, each
    /// factor is prime, and they jointly reconstruct n's radical.
    #[test]
    fn factorization_is_sound(n in 2u64..5_000_000) {
        let factors = prime_factors(n as u128);
        prop_assert!(!factors.is_empty());
        let mut rest = n as u128;
        for f in &factors {
            prop_assert!(is_prime(*f), "{} not prime", f);
            prop_assert_eq!(rest % f, 0, "{} does not divide {}", f, n);
            while rest.is_multiple_of(*f) {
                rest /= f;
            }
        }
        prop_assert_eq!(rest, 1, "factors of {} incomplete: {:?}", n, factors);
    }

    /// gcd is correct against the Euclidean definition.
    #[test]
    fn gcd_divides_both(a in 1u64.., b in 1u64..) {
        let g = gcd(a as u128, b as u128);
        prop_assert!(g > 0);
        prop_assert_eq!(a as u128 % g, 0);
        prop_assert_eq!(b as u128 % g, 0);
    }

    /// primitive_root(p) really generates the full multiplicative group
    /// (checked exhaustively for small primes).
    #[test]
    fn primitive_root_generates(seed in 3u64..2_000) {
        let p = next_prime(seed as u128);
        prop_assume!(p < 3_000);
        let g = primitive_root(p);
        let mut seen = vec![false; p as usize];
        let mut v = 1u128;
        for _ in 0..p - 1 {
            v = mulmod(v, g, p);
            seen[v as usize] = true;
        }
        prop_assert!((1..p as usize).all(|i| seen[i]), "g = {} does not generate Z*_{}", g, p);
    }
}
