//! Work-stealing parallel driver for the BGP-wide loop survey.
//!
//! [`BgpSurvey`] walks the advertised table one prefix at a time; with
//! thousands of entries and hundreds of probes each, that serial walk
//! dominates survey wall-clock. [`ParallelBgpSurvey`] schedules the
//! entries over an [`xmap::StealQueue`]: each worker owns a private
//! [`World`] replica and scanner (no shared simulator state, no locks on
//! the hot path) and drains entry indices from its deque, stealing from
//! the slowest worker's tail once its own runs dry — the same discipline
//! the campaign executor uses for its unevenly-sized blocks.
//!
//! Determinism: scheduling order is nondeterministic under contention,
//! so each entry's hops are captured in a per-entry slot and merged in
//! **entry order** with a merge-time address dedup. That reproduces the
//! sequential driver's output exactly — the first occurrence of an
//! address in table order wins, no matter which worker surveyed which
//! entry — which `parallel_bgp_survey_matches_sequential` pins for 1, 2
//! and 4 workers.

use std::collections::HashSet;
use std::sync::Mutex;

use xmap::{ScanConfig, Scanner, StealQueue};
use xmap_netsim::World;

use crate::survey::{BgpSurvey, BgpSurveyResult};

/// Parallel BGP survey over private world replicas.
#[derive(Debug, Clone, Copy)]
pub struct ParallelBgpSurvey {
    /// The survey parameters (probe cap, prefix cap).
    pub survey: BgpSurvey,
    /// Worker threads. `0` is treated as `1`.
    pub workers: usize,
}

impl ParallelBgpSurvey {
    /// Creates a driver running `survey` on `workers` threads.
    pub fn new(survey: BgpSurvey, workers: usize) -> Self {
        ParallelBgpSurvey { survey, workers }
    }

    /// Runs the survey. `make_world` builds one world replica per worker
    /// and **must** return identical worlds for every index (same seed,
    /// same config): each replica's BGP table is read independently, and
    /// the merge assumes entry *i* means the same prefix everywhere.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panics.
    pub fn run<F>(&self, config: &ScanConfig, make_world: F) -> BgpSurveyResult
    where
        F: Fn(usize) -> World + Sync,
    {
        let workers = self.workers.max(1);
        let scratch = make_world(0);
        let table_len = scratch.bgp().entries().len();
        let limit = self.survey.max_prefixes.unwrap_or(table_len).min(table_len);
        drop(scratch);

        let queue = StealQueue::new(limit, workers);
        let slots: Vec<Mutex<Option<BgpSurveyResult>>> =
            (0..limit).map(|_| Mutex::new(None)).collect();
        let survey = self.survey;

        std::thread::scope(|s| {
            for w in 0..workers {
                let queue = &queue;
                let slots = &slots;
                let make_world = &make_world;
                s.spawn(move || {
                    let mut scanner = Scanner::new(make_world(w), config.clone());
                    let entries = scanner.network_mut().bgp().entries().to_vec();
                    while let Some(i) = queue.pop(w) {
                        let mut part = BgpSurveyResult::default();
                        // Fresh per-entry seen set: cross-entry duplicates
                        // survive here and die in the entry-order merge.
                        let mut seen = HashSet::new();
                        survey.survey_entry(&mut scanner, &entries[i], &mut seen, &mut part);
                        *slots[i].lock().expect("survey slot poisoned") = Some(part);
                    }
                });
            }
        });

        let mut result = BgpSurveyResult::default();
        let mut seen = HashSet::new();
        for slot in slots {
            let part = slot
                .into_inner()
                .expect("survey slot poisoned")
                .expect("every queued entry is surveyed exactly once");
            result.probes += part.probes;
            for hop in part.last_hops {
                if seen.insert(hop.address) {
                    result.last_hops.push(hop);
                }
            }
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmap_netsim::world::WorldConfig;

    fn make_world(_w: usize) -> World {
        World::with_config(WorldConfig::lossless(66, 300))
    }

    fn config() -> ScanConfig {
        ScanConfig {
            seed: 23,
            ..Default::default()
        }
    }

    #[test]
    fn parallel_bgp_survey_matches_sequential() {
        let survey = BgpSurvey {
            probes_per_prefix: 1 << 8,
            max_prefixes: Some(200),
        };
        let mut scanner = Scanner::new(make_world(0), config());
        let sequential = survey.run(&mut scanner);
        assert!(sequential.total() > 10, "{}", sequential.total());
        assert!(
            sequential.vulnerable().count() > 0,
            "need loops for the comparison to bite"
        );

        for workers in [1usize, 2, 4] {
            let parallel = ParallelBgpSurvey::new(survey, workers).run(&config(), make_world);
            assert_eq!(
                parallel.last_hops, sequential.last_hops,
                "last hops diverge at {workers} workers"
            );
            assert_eq!(
                parallel.probes, sequential.probes,
                "probe count diverges at {workers} workers"
            );
        }
    }

    #[test]
    fn uncapped_parallel_survey_covers_the_whole_table() {
        let survey = BgpSurvey {
            probes_per_prefix: 1 << 4,
            max_prefixes: None,
        };
        let driver = ParallelBgpSurvey::new(survey, 4);
        let result = driver.run(&config(), make_world);
        let mut scanner = Scanner::new(make_world(0), config());
        let table = scanner.network_mut().bgp().entries().len() as u64;
        assert_eq!(result.probes, table * (1 << 4));
    }
}
