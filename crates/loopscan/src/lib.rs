//! Routing-loop vulnerability measurement (Section VI).
//!
//! Implements the paper's loop methodology end to end:
//!
//! * [`detect`] — the crafted-hop-limit detection primitive: a Time
//!   Exceeded at hop limit *h* confirmed by another at *h+2* marks a
//!   looping destination (h = 32, below which Internet paths stay),
//! * [`survey`] — the Internet-wide survey over BGP-advertised prefixes
//!   (Tables IX and X, Figure 5) and the depth survey over the fifteen
//!   sample blocks (Table XI, Figure 6),
//! * [`parallel`] — a work-stealing parallel driver for the BGP survey
//!   (private world replicas, entry-order merge),
//! * [`amplification`] — packet-level amplification measurement on the
//!   explicit engine, including the spoofed-source doubling trick
//!   (Section VI-A's >200× factor),
//! * [`case_study`] — the 95-router / 4-OS controlled testbed of
//!   Table XII.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod amplification;
pub mod case_study;
pub mod detect;
pub mod disclosure;
pub mod mitigation;
pub mod parallel;
pub mod survey;
pub mod telemetry;

pub use amplification::{
    amplification_sweep_with, measure_amplification, measure_amplification_with,
    measure_spoofed_doubling, AmplificationPoint,
};
pub use case_study::{run_case_studies, CaseStudyRow};
pub use detect::{detect_loop, detect_loop_with, LoopVerdict, PROBE_HOP_LIMIT};
pub use disclosure::{DisclosureCampaign, OperatorNotice, Severity, VendorAdvisory};
pub use mitigation::{patch_model, verify_mitigation, MitigationReport};
pub use parallel::ParallelBgpSurvey;
pub use survey::{BgpSurvey, BgpSurveyResult, DepthSurvey, DepthSurveyResult};
pub use telemetry::LoopscanTelemetry;
