//! Internet-wide and depth loop surveys (Tables IX–XI, Figures 5–6).
//!
//! * [`BgpSurvey`] probes the 16-bit sub-prefix space of every advertised
//!   BGP prefix (scaled by a per-prefix probe cap) with the crafted hop
//!   limit, records every last hop, and flags the looping ones — the data
//!   behind Table IX (population), Table X (IID mix of the vulnerable) and
//!   Figure 5 (top ASNs and countries).
//! * [`DepthSurvey`] re-scans the fifteen sample blocks with loop
//!   detection, classifying each vulnerable device as mis-routing its WAN
//!   ("same") or delegated LAN ("diff") prefix — Table XI — and joining
//!   vendors for Figure 6.

use std::collections::{HashMap, HashSet};

use xmap::{IcmpEchoProbe, IndexWalk, ProbeResult, Scanner};
use xmap_addr::oui;
use xmap_addr::{classify_iid, IidClass, IidHistogram, Ip6, Mac};
use xmap_netsim::isp::{IspProfile, SAMPLE_BLOCKS};
use xmap_netsim::packet::Network;
use xmap_netsim::World;

use crate::detect::{detect_loop, PROBE_HOP_LIMIT};

/// Chunk size of the strided [`IndexWalk`] target streams: both surveys
/// draw their indices through the scanner's chunked fill discipline
/// instead of per-target arithmetic.
const WALK_CHUNK: usize = 64;

/// One last hop observed in the BGP survey.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BgpLastHop {
    /// The exposed address.
    pub address: Ip6,
    /// Origin AS of the advertised prefix.
    pub asn: u32,
    /// Country of the AS.
    pub country: &'static str,
    /// Whether the destination loops (h/h+2 confirmed).
    pub vulnerable: bool,
}

/// Results of the BGP-wide survey.
#[derive(Debug, Clone, Default)]
pub struct BgpSurveyResult {
    /// Deduplicated last hops.
    pub last_hops: Vec<BgpLastHop>,
    /// Probes sent.
    pub probes: u64,
}

impl BgpSurveyResult {
    /// Unique last hops (Table IX row 1).
    pub fn total(&self) -> usize {
        self.last_hops.len()
    }

    /// Distinct ASNs observed.
    pub fn asns(&self) -> usize {
        self.last_hops
            .iter()
            .map(|h| h.asn)
            .collect::<HashSet<_>>()
            .len()
    }

    /// Distinct countries observed.
    pub fn countries(&self) -> usize {
        self.last_hops
            .iter()
            .map(|h| h.country)
            .collect::<HashSet<_>>()
            .len()
    }

    /// The loop-vulnerable subset.
    pub fn vulnerable(&self) -> impl Iterator<Item = &BgpLastHop> {
        self.last_hops.iter().filter(|h| h.vulnerable)
    }

    /// Vulnerable count / ASNs / countries (Table IX row 2).
    pub fn vulnerable_summary(&self) -> (usize, usize, usize) {
        let count = self.vulnerable().count();
        let asns = self
            .vulnerable()
            .map(|h| h.asn)
            .collect::<HashSet<_>>()
            .len();
        let countries = self
            .vulnerable()
            .map(|h| h.country)
            .collect::<HashSet<_>>()
            .len();
        (count, asns, countries)
    }

    /// IID histogram of the vulnerable subset (Table X).
    pub fn vulnerable_iid_histogram(&self) -> IidHistogram {
        self.vulnerable().map(|h| h.address).collect()
    }

    /// Top `n` ASNs by vulnerable last hops (Figure 5 left).
    pub fn top_loop_asns(&self, n: usize) -> Vec<(u32, usize)> {
        let mut counts: HashMap<u32, usize> = HashMap::new();
        for h in self.vulnerable() {
            *counts.entry(h.asn).or_insert(0) += 1;
        }
        let mut rows: Vec<(u32, usize)> = counts.into_iter().collect();
        rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        rows.truncate(n);
        rows
    }

    /// Top `n` countries by vulnerable last hops (Figure 5 right).
    pub fn top_loop_countries(&self, n: usize) -> Vec<(&'static str, usize)> {
        let mut counts: HashMap<&'static str, usize> = HashMap::new();
        for h in self.vulnerable() {
            *counts.entry(h.country).or_insert(0) += 1;
        }
        let mut rows: Vec<(&'static str, usize)> = counts.into_iter().collect();
        rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        rows.truncate(n);
        rows
    }
}

/// BGP-wide survey driver.
#[derive(Debug, Clone, Copy)]
pub struct BgpSurvey {
    /// Probes per advertised prefix (the full space is 2¹⁶ per prefix).
    pub probes_per_prefix: u64,
    /// Cap on prefixes surveyed (`None` = the whole table).
    pub max_prefixes: Option<usize>,
}

impl Default for BgpSurvey {
    fn default() -> Self {
        BgpSurvey {
            probes_per_prefix: 1 << 8,
            max_prefixes: None,
        }
    }
}

impl BgpSurvey {
    /// Runs the survey. Requires the scanner to sit on a [`World`] because
    /// the BGP table lives there.
    pub fn run(&self, scanner: &mut Scanner<World>) -> BgpSurveyResult {
        let entries: Vec<_> = scanner.network_mut().bgp().entries().to_vec();
        let limit = self.max_prefixes.unwrap_or(entries.len());
        let mut result = BgpSurveyResult::default();
        let mut seen = HashSet::new();
        for entry in entries.into_iter().take(limit) {
            self.survey_entry(scanner, &entry, &mut seen, &mut result);
        }
        result
    }

    /// Surveys one advertised prefix: probes its /48 sub-space under the
    /// per-prefix cap, appending newly-seen last hops to `out`. `seen`
    /// dedups across whatever scope the caller chooses — the sequential
    /// driver threads one set through the whole table, the parallel
    /// driver hands each entry a fresh set and dedups again at merge.
    pub(crate) fn survey_entry(
        &self,
        scanner: &mut Scanner<World>,
        entry: &xmap_netsim::bgp::BgpEntry,
        seen: &mut HashSet<Ip6>,
        out: &mut BgpSurveyResult,
    ) {
        let country = scanner.network_mut().bgp().country_of(entry.asn);
        // Scan the /48 sub-space of this /32 with a per-prefix cap,
        // spreading deterministically over the 2^16 indices.
        let space = 1u64 << 16;
        let step = (space / self.probes_per_prefix.min(space)).max(1);
        let mut walk = IndexWalk::strided(0, step, self.probes_per_prefix.min(space));
        let mut buf = [0u64; WALK_CHUNK];
        loop {
            let n = walk.fill(&mut buf);
            if n == 0 {
                break;
            }
            for &index in &buf[..n] {
                let target = entry.prefix.subprefix(48, index as u128);
                let dst = xmap::fill_host_bits(target, scanner.config().seed);
                out.probes += 1;
                let responses = scanner.probe_addr(dst, &IcmpEchoProbe, PROBE_HOP_LIMIT);
                let responder = responses.iter().find_map(|(src, r)| match r {
                    ProbeResult::Unreachable { .. } => Some((*src, false)),
                    ProbeResult::TimeExceeded if src.iid() >> 48 != 0xffff => Some((*src, true)),
                    _ => None,
                });
                let Some((address, te)) = responder else {
                    continue;
                };
                if !seen.insert(address) {
                    continue;
                }
                let vulnerable = if te {
                    detect_loop(scanner, dst).vulnerable
                } else {
                    false
                };
                out.last_hops.push(BgpLastHop {
                    address,
                    asn: entry.asn,
                    country,
                    vulnerable,
                });
            }
        }
    }
}

/// One loop-vulnerable periphery from the depth survey.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoopPeriphery {
    /// Exposed address.
    pub address: Ip6,
    /// Block id (Table XI row).
    pub profile_id: u8,
    /// Origin AS of the block.
    pub asn: u32,
    /// Whether the Time Exceeded source shares the probed /64 (Table XI
    /// "same": the device mis-routes its WAN prefix).
    pub same64: bool,
    /// IID class of the address.
    pub iid_class: IidClass,
    /// Embedded MAC for EUI-64 addresses.
    pub mac: Option<Mac>,
}

/// Results of the depth survey over the sample blocks.
#[derive(Debug, Clone, Default)]
pub struct DepthSurveyResult {
    /// Vulnerable peripheries (deduplicated by address).
    pub peripheries: Vec<LoopPeriphery>,
    /// Probes sent per block.
    pub probed_per_block: HashMap<u8, u64>,
}

impl DepthSurveyResult {
    /// Vulnerable devices in one block.
    pub fn count_in_block(&self, profile_id: u8) -> usize {
        self.peripheries
            .iter()
            .filter(|p| p.profile_id == profile_id)
            .count()
    }

    /// Same-/64 fraction in one block (Table XI "same").
    pub fn same_frac_in_block(&self, profile_id: u8) -> f64 {
        let all: Vec<_> = self
            .peripheries
            .iter()
            .filter(|p| p.profile_id == profile_id)
            .collect();
        if all.is_empty() {
            return 0.0;
        }
        all.iter().filter(|p| p.same64).count() as f64 / all.len() as f64
    }

    /// Overall same-/64 fraction (Table XI total: 4.9%).
    pub fn same_frac(&self) -> f64 {
        if self.peripheries.is_empty() {
            return 0.0;
        }
        self.peripheries.iter().filter(|p| p.same64).count() as f64 / self.peripheries.len() as f64
    }

    /// Vendor → count among vulnerable devices with identifiable vendors
    /// (Figure 6's device-vendor axis).
    pub fn vendor_counts(&self) -> HashMap<&'static str, usize> {
        let mut counts = HashMap::new();
        for p in &self.peripheries {
            if let Some(entry) = p.mac.and_then(oui::lookup_mac) {
                *counts.entry(entry.vendor).or_insert(0) += 1;
            }
        }
        counts
    }

    /// Top `n` (vendor, per-AS counts) rows for Figure 6.
    pub fn fig6_rows(&self, n: usize) -> Vec<(&'static str, HashMap<u32, usize>, usize)> {
        let mut per_vendor: HashMap<&'static str, HashMap<u32, usize>> = HashMap::new();
        for p in &self.peripheries {
            if let Some(entry) = p.mac.and_then(oui::lookup_mac) {
                *per_vendor
                    .entry(entry.vendor)
                    .or_default()
                    .entry(p.asn)
                    .or_insert(0) += 1;
            }
        }
        let mut rows: Vec<(&'static str, HashMap<u32, usize>, usize)> = per_vendor
            .into_iter()
            .map(|(v, per_as)| {
                let total = per_as.values().sum();
                (v, per_as, total)
            })
            .collect();
        rows.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(b.0)));
        rows.truncate(n);
        rows
    }
}

/// Depth-survey driver over the fifteen sample blocks.
#[derive(Debug, Clone, Copy)]
pub struct DepthSurvey {
    /// Probes per block.
    pub probes_per_block: u64,
    /// Probing hop limit h (default [`PROBE_HOP_LIMIT`]).
    pub hop_limit: u8,
}

impl DepthSurvey {
    /// Creates a survey at the given per-block probe budget.
    pub fn new(probes_per_block: u64) -> Self {
        DepthSurvey {
            probes_per_block,
            hop_limit: PROBE_HOP_LIMIT,
        }
    }

    /// Runs the depth survey.
    pub fn run<N: Network>(&self, scanner: &mut Scanner<N>) -> DepthSurveyResult {
        let mut result = DepthSurveyResult::default();
        for profile in SAMPLE_BLOCKS {
            self.run_block(scanner, profile, &mut result);
        }
        result
    }

    /// Surveys one block.
    pub fn run_block<N: Network>(
        &self,
        scanner: &mut Scanner<N>,
        profile: &IspProfile,
        result: &mut DepthSurveyResult,
    ) {
        let range = profile.scan_range();
        let space = range.space_size();
        let budget = (self.probes_per_block as u128).min(space) as u64;
        let step = ((space / budget as u128).max(1)) as u64;
        let mut seen = HashSet::new();
        let mut probed = 0u64;
        let mut walk = IndexWalk::strided(0, step, budget);
        let mut buf = [0u64; WALK_CHUNK];
        loop {
            let n = walk.fill(&mut buf);
            if n == 0 {
                break;
            }
            for &index in &buf[..n] {
                let Some(target) = range.nth(index) else {
                    continue;
                };
                let dst = xmap::fill_host_bits(target, scanner.config().seed);
                probed += 1;
                let verdict = crate::detect::detect_loop_with(scanner, dst, self.hop_limit);
                if !verdict.vulnerable {
                    continue;
                }
                let address = verdict.responder.expect("vulnerable implies responder");
                if !seen.insert(address) {
                    continue;
                }
                let mac = Mac::from_eui64(address.iid())
                    .filter(|_| classify_iid(address) == IidClass::Eui64);
                result.peripheries.push(LoopPeriphery {
                    address,
                    profile_id: profile.id,
                    asn: profile.asn,
                    same64: address.network(64) == dst.network(64),
                    iid_class: classify_iid(address),
                    mac,
                });
            }
        }
        result.probed_per_block.insert(profile.id, probed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmap::ScanConfig;
    use xmap_netsim::world::WorldConfig;

    fn scanner(bgp_ases: usize) -> Scanner<World> {
        let world = World::with_config(WorldConfig::lossless(66, bgp_ases));
        Scanner::new(
            world,
            ScanConfig {
                seed: 23,
                ..Default::default()
            },
        )
    }

    #[test]
    fn bgp_survey_finds_last_hops_and_loops() {
        let mut s = scanner(300);
        let survey = BgpSurvey {
            probes_per_prefix: 1 << 9,
            max_prefixes: Some(400),
        };
        let result = survey.run(&mut s);
        assert!(result.total() > 20, "{}", result.total());
        assert!(result.asns() > 5, "{}", result.asns());
        let (vuln, vuln_asns, vuln_countries) = result.vulnerable_summary();
        assert!(vuln > 0, "no vulnerable last hops");
        assert!(vuln_asns >= 1 && vuln_countries >= 1);
        assert!(vuln < result.total());
    }

    #[test]
    fn bgp_vulnerable_iid_mix_skews_lowbyte() {
        let mut s = scanner(400);
        let survey = BgpSurvey {
            probes_per_prefix: 1 << 10,
            max_prefixes: Some(250),
        };
        let result = survey.run(&mut s);
        let hist = result.vulnerable_iid_histogram();
        if hist.total() >= 30 {
            // Table X: low-byte IIDs are hugely over-represented among
            // loop-vulnerable routers relative to the ~5% population share.
            assert!(
                hist.percent(IidClass::LowByte) > 12.0,
                "low-byte {}%",
                hist.percent(IidClass::LowByte)
            );
        }
    }

    #[test]
    fn depth_survey_matches_block_loop_ordering() {
        let mut s = scanner(10);
        let survey = DepthSurvey::new(1 << 16);
        let mut result = DepthSurveyResult::default();
        // Unicom broadband (index 11, 78.8% of devices loop) vs Jio
        // (index 0, 0.26%).
        survey.run_block(&mut s, &SAMPLE_BLOCKS[11], &mut result);
        survey.run_block(&mut s, &SAMPLE_BLOCKS[0], &mut result);
        let unicom = result.count_in_block(12);
        let jio = result.count_in_block(1);
        assert!(unicom > 3, "unicom {unicom}");
        assert!(jio <= unicom, "jio {jio} unicom {unicom}");
        // Unicom loops are ~96% diff.
        assert!(result.same_frac_in_block(12) < 0.3);
    }

    #[test]
    fn depth_survey_vendor_attribution() {
        let mut s = scanner(10);
        let survey = DepthSurvey::new(1 << 15);
        let mut result = DepthSurveyResult::default();
        // China Mobile broadband: 53% loop rate, 33% EUI-64.
        survey.run_block(&mut s, &SAMPLE_BLOCKS[12], &mut result);
        let vendors = result.vendor_counts();
        assert!(!vendors.is_empty(), "no vendors attributed");
        let rows = result.fig6_rows(5);
        assert!(!rows.is_empty());
        assert!(rows[0].2 >= rows.last().unwrap().2);
    }
}
