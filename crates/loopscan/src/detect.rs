//! The crafted-hop-limit loop-detection primitive (Section VI-B).
//!
//! A destination loops if a probe with hop limit *h* draws an ICMPv6 Time
//! Exceeded and a re-probe with *h+2* draws another from the same device:
//! a linear path would have delivered (or unreached) the second probe,
//! while a loop swallows both. The paper fixes *h* = 32 because Internet
//! paths between vantage points and targets stay under 32 hops (Yarrp6's
//! fill-mode evidence), keeping loop traffic minimal while avoiding false
//! negatives.

use xmap::{IcmpEchoProbe, ProbeResult, Scanner};
use xmap_addr::Ip6;
use xmap_netsim::packet::Network;

use crate::telemetry::LoopscanTelemetry;

/// The probing hop limit h (Section VI-B).
pub const PROBE_HOP_LIMIT: u8 = 32;

/// Verdict of one loop detection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoopVerdict {
    /// Whether the destination is confirmed to loop.
    pub vulnerable: bool,
    /// The Time Exceeded source (the looping router's exposed address).
    pub responder: Option<Ip6>,
}

/// Source address of a Time Exceeded that is a transit router rather than
/// a periphery (the simulator marks transit IIDs with a 0xffff prefix).
fn is_transit(src: Ip6) -> bool {
    src.iid() >> 48 == 0xffff
}

/// Extracts a non-transit Time Exceeded source from probe results.
fn te_source(results: &[(Ip6, ProbeResult)]) -> Option<Ip6> {
    results.iter().find_map(|(src, r)| {
        (matches!(r, ProbeResult::TimeExceeded) && !is_transit(*src)).then_some(*src)
    })
}

/// Runs the h / h+2 detection against `dst` with the default h of 32.
pub fn detect_loop<N: Network>(scanner: &mut Scanner<N>, dst: Ip6) -> LoopVerdict {
    detect_loop_with(scanner, dst, PROBE_HOP_LIMIT)
}

/// Runs the detection with an explicit probing hop limit `h` — the
/// `hoplimit_tradeoff` ablation varies this: larger h still detects the
/// same loops but each probe's loop traffic grows with (h − n).
pub fn detect_loop_with<N: Network>(scanner: &mut Scanner<N>, dst: Ip6, h: u8) -> LoopVerdict {
    // One scratch + answer buffer pair per detection keeps the hot
    // double-probe free of per-probe allocations.
    let mut scratch = Vec::new();
    let mut answers = Vec::new();
    scanner.probe_addr_into(dst, &IcmpEchoProbe, h, &mut scratch, &mut answers);
    let verdict = match te_source(&answers) {
        None => LoopVerdict {
            vulnerable: false,
            responder: None,
        },
        Some(responder) => {
            // Confirmation probe with h+2: a loop still exceeds; a path
            // that was merely two hops short now completes.
            scanner.probe_addr_into(
                dst,
                &IcmpEchoProbe,
                h.saturating_add(2),
                &mut scratch,
                &mut answers,
            );
            match te_source(&answers) {
                Some(r2) if r2 == responder => LoopVerdict {
                    vulnerable: true,
                    responder: Some(responder),
                },
                _ => LoopVerdict {
                    vulnerable: false,
                    responder: Some(responder),
                },
            }
        }
    };
    if scanner.telemetry().registry.is_enabled() {
        let lt = LoopscanTelemetry::bind(scanner.telemetry());
        lt.detects.inc();
        if verdict.vulnerable {
            lt.vulnerable.inc();
        }
    }
    if scanner.tracer().is_enabled() {
        scanner.tracer().event(
            scanner.ticks(),
            "loopscan.detect",
            vec![
                ("h", u64::from(h).into()),
                ("vulnerable", u64::from(verdict.vulnerable).into()),
            ],
        );
    }
    verdict
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmap::ScanConfig;
    use xmap_netsim::isp::SAMPLE_BLOCKS;
    use xmap_netsim::world::{World, WorldConfig};

    fn scanner() -> Scanner<World> {
        let world = World::with_config(WorldConfig::lossless(44, 20));
        Scanner::new(
            world,
            ScanConfig {
                seed: 17,
                ..Default::default()
            },
        )
    }

    /// Finds (target address, expected loop) pairs in China Unicom
    /// broadband, which has a 78.8% loop rate.
    fn unicom_targets(s: &mut Scanner<World>) -> (Ip6, Ip6) {
        let p = &SAMPLE_BLOCKS[11];
        let mut looping = None;
        let mut clean = None;
        for i in 0..3_000_000u64 {
            let Some(d) = s.network_mut().device_at(11, i) else {
                continue;
            };
            let target = p.scan_prefix().subprefix(p.assigned_len, i as u128);
            // Aim outside the used subnet so clean devices answer
            // unreachable and loopy ones loop.
            let sub = (0..16u128)
                .map(|k| target.subprefix(64, k))
                .find(|c| *c != d.used_subnet64)
                .unwrap();
            let dst = sub.addr().with_iid(0x4242);
            if d.loop_vuln_lan && looping.is_none() {
                looping = Some(dst);
            }
            if !d.loop_vuln_lan && !d.loop_vuln_wan && clean.is_none() {
                clean = Some(dst);
            }
            if let (Some(l), Some(c)) = (looping, clean) {
                return (l, c);
            }
        }
        panic!("targets not found");
    }

    #[test]
    fn detects_looping_and_clean_destinations() {
        let mut s = scanner();
        let (looping, clean) = unicom_targets(&mut s);
        let v = detect_loop(&mut s, looping);
        assert!(v.vulnerable, "{v:?}");
        assert!(v.responder.is_some());
        let v2 = detect_loop(&mut s, clean);
        assert!(!v2.vulnerable, "{v2:?}");
    }

    #[test]
    fn unallocated_destination_is_not_vulnerable() {
        let mut s = scanner();
        let p = &SAMPLE_BLOCKS[11];
        for i in 0..2000u64 {
            if s.network_mut().device_at(11, i).is_none() {
                let dst = p
                    .scan_prefix()
                    .subprefix(p.assigned_len, i as u128)
                    .addr()
                    .with_iid(1);
                let v = detect_loop(&mut s, dst);
                assert!(!v.vulnerable);
                assert_eq!(v.responder, None);
                return;
            }
        }
        panic!("no unallocated prefix found");
    }

    #[test]
    fn transit_marker_recognized() {
        assert!(is_transit("2405:201::ffff:0:0:20".parse().unwrap()));
        assert!(!is_transit("2405:201::1234:0:0:20".parse().unwrap()));
    }
}
