//! Responsible-disclosure reporting (Section VII).
//!
//! The paper reported every finding "to all involved vendors and ASes";
//! all 24 router vendors confirmed the loop vulnerability and >131
//! vulnerability identifiers (CNVD/CVE) were assigned. This module turns
//! survey results into the per-recipient advisory bundles such a
//! disclosure campaign needs: affected-device counts per vendor, affected
//! prefixes per AS, severity, and the RFC 7084 remediation text.

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::survey::DepthSurveyResult;
use xmap_netsim::geo;

/// Severity of a disclosed issue (CVSS-ish coarse bands).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Information exposure only.
    Low,
    /// Remote DoS of customer links.
    High,
}

/// One advisory addressed to a vendor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VendorAdvisory {
    /// Recipient vendor.
    pub vendor: &'static str,
    /// Vulnerable devices observed (sample-scale).
    pub affected_devices: usize,
    /// Severity.
    pub severity: Severity,
}

/// One notification addressed to a network operator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OperatorNotice {
    /// Recipient AS.
    pub asn: u32,
    /// Operator name.
    pub operator: String,
    /// Vulnerable last hops observed in the AS (sample-scale).
    pub affected_devices: usize,
}

/// A disclosure campaign assembled from the depth survey.
#[derive(Debug, Clone, Default)]
pub struct DisclosureCampaign {
    /// Vendor advisories, most affected first.
    pub vendors: Vec<VendorAdvisory>,
    /// Operator notices, most affected first.
    pub operators: Vec<OperatorNotice>,
}

impl DisclosureCampaign {
    /// Builds the campaign from depth-survey results.
    pub fn from_depth_survey(depth: &DepthSurveyResult) -> Self {
        let vendor_counts = depth.vendor_counts();
        let mut vendors: Vec<VendorAdvisory> = vendor_counts
            .into_iter()
            .map(|(vendor, affected_devices)| VendorAdvisory {
                vendor,
                affected_devices,
                severity: Severity::High,
            })
            .collect();
        vendors.sort_by(|a, b| {
            b.affected_devices
                .cmp(&a.affected_devices)
                .then(a.vendor.cmp(b.vendor))
        });

        let mut per_as: HashMap<u32, usize> = HashMap::new();
        for p in &depth.peripheries {
            *per_as.entry(p.asn).or_insert(0) += 1;
        }
        let mut operators: Vec<OperatorNotice> = per_as
            .into_iter()
            .map(|(asn, affected_devices)| OperatorNotice {
                asn,
                operator: geo::name_of(asn),
                affected_devices,
            })
            .collect();
        operators.sort_by(|a, b| {
            b.affected_devices
                .cmp(&a.affected_devices)
                .then(a.asn.cmp(&b.asn))
        });
        DisclosureCampaign { vendors, operators }
    }

    /// Number of distinct recipients.
    pub fn recipients(&self) -> usize {
        self.vendors.len() + self.operators.len()
    }

    /// Renders the advisory text for one vendor — the remediation wording
    /// follows the paper's mitigation section verbatim where it quotes
    /// RFC 7084.
    pub fn advisory_text(&self, vendor: &str) -> Option<String> {
        let advisory = self.vendors.iter().find(|v| v.vendor == vendor)?;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "SECURITY ADVISORY — IPv6 routing loop in {} CPE devices",
            advisory.vendor
        );
        let _ = writeln!(
            out,
            "Severity: {:?} (remote DoS, amplification factor up to 255 - n)",
            advisory.severity
        );
        let _ = writeln!(
            out,
            "Affected: {} devices observed in our measurement sample.",
            advisory.affected_devices
        );
        let _ = writeln!(
            out,
            "\nIssue: the CE router forwards packets destined to the unused portion of\n\
             its delegated IPv6 prefix back to its default route, creating a forwarding\n\
             loop with the provider router. A single crafted packet with hop limit 255\n\
             traverses the customer link more than 200 times; spoofed-source variants\n\
             double that."
        );
        let _ = writeln!(
            out,
            "\nRemediation (RFC 7084): any packet received by the CE router with a\n\
             destination address in the prefix(es) delegated to the CE router but not\n\
             in the set of prefixes assigned by the CE router to the LAN must be\n\
             dropped — install an unreachable (reject) route for the delegated prefix."
        );
        Some(out)
    }

    /// Summary line mirroring the paper's disclosure outcome sentence.
    pub fn summary(&self) -> String {
        format!(
            "disclosed to {} vendors and {} network operators ({} affected devices in sample)",
            self.vendors.len(),
            self.operators.len(),
            self.vendors
                .iter()
                .map(|v| v.affected_devices)
                .sum::<usize>(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::survey::DepthSurvey;
    use xmap::{ScanConfig, Scanner};
    use xmap_netsim::isp::SAMPLE_BLOCKS;
    use xmap_netsim::world::{World, WorldConfig};

    fn surveyed() -> DepthSurveyResult {
        let world = World::with_config(WorldConfig::lossless(12, 10));
        let mut scanner = Scanner::new(
            world,
            ScanConfig {
                seed: 12,
                ..Default::default()
            },
        );
        let mut result = DepthSurveyResult::default();
        let survey = DepthSurvey::new(1 << 15);
        for idx in [11usize, 12] {
            survey.run_block(&mut scanner, &SAMPLE_BLOCKS[idx], &mut result);
        }
        result
    }

    #[test]
    fn campaign_assembles_recipients() {
        let depth = surveyed();
        let campaign = DisclosureCampaign::from_depth_survey(&depth);
        assert!(!campaign.vendors.is_empty(), "no vendor advisories");
        assert!(!campaign.operators.is_empty(), "no operator notices");
        assert!(campaign.recipients() >= 3);
        // Sorted by affected count.
        for w in campaign.vendors.windows(2) {
            assert!(w[0].affected_devices >= w[1].affected_devices);
        }
        // The CN broadband ASes are the top operators.
        assert!(campaign
            .operators
            .iter()
            .take(2)
            .any(|o| o.asn == 4837 || o.asn == 4134));
    }

    #[test]
    fn advisory_text_quotes_rfc7084() {
        let depth = surveyed();
        let campaign = DisclosureCampaign::from_depth_survey(&depth);
        let vendor = campaign.vendors[0].vendor;
        let text = campaign.advisory_text(vendor).unwrap();
        assert!(text.contains("RFC 7084"));
        assert!(text.contains("must be\ndropped") || text.contains("must be dropped"));
        assert!(text.contains(vendor));
        assert_eq!(campaign.advisory_text("Not A Vendor"), None);
    }

    #[test]
    fn summary_counts() {
        let depth = surveyed();
        let campaign = DisclosureCampaign::from_depth_survey(&depth);
        let s = campaign.summary();
        assert!(s.contains("vendors"), "{s}");
        assert!(s.contains("operators"), "{s}");
    }
}
