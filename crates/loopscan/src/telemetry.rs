//! Loop-scan telemetry: detection counters and the amplification
//! histogram (`loopscan.*`).

use xmap_telemetry::{Counter, Histogram, Telemetry};

/// Well-known `loopscan.*` metric names (kept in sync with DESIGN.md
/// §"Telemetry").
pub mod names {
    /// Loop detections attempted (counter).
    pub const DETECTS: &str = "loopscan.detects";
    /// Destinations confirmed vulnerable (counter).
    pub const VULNERABLE: &str = "loopscan.vulnerable";
    /// Measured loop amplification factors (histogram).
    pub const AMPLIFICATION: &str = "loopscan.amplification_factor";
}

/// Amplification-factor bucket bounds (looped traversals per attack
/// packet). The paper's headline claim is >200 for paths under 55 hops, so
/// the buckets resolve the 100–300 region.
pub const AMPLIFICATION_BOUNDS: [u64; 10] = [1, 10, 50, 100, 150, 200, 250, 300, 400, 500];

/// Pre-bound handles for the loop-scan metric surface.
#[derive(Debug, Clone)]
pub struct LoopscanTelemetry {
    /// Detections attempted.
    pub detects: Counter,
    /// Confirmed-vulnerable destinations.
    pub vulnerable: Counter,
    /// Amplification factors.
    pub amplification: Histogram,
}

impl LoopscanTelemetry {
    /// Binds every `loopscan.*` metric in `telemetry`'s registry.
    pub fn bind(telemetry: &Telemetry) -> Self {
        let r = &telemetry.registry;
        LoopscanTelemetry {
            detects: r.counter(names::DETECTS),
            vulnerable: r.counter(names::VULNERABLE),
            amplification: r.histogram(names::AMPLIFICATION, &AMPLIFICATION_BOUNDS),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn amplification_buckets_resolve_the_claim_region() {
        let telemetry = Telemetry::new();
        let lt = LoopscanTelemetry::bind(&telemetry);
        lt.amplification.record(253);
        lt.amplification.record(120);
        let snap = telemetry.registry.snapshot();
        let h = snap.histograms.get(names::AMPLIFICATION).unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 373);
    }
}
