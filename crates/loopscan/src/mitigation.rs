//! Mitigation verification (Section VII).
//!
//! The paper prescribes three mitigations; the two with routing-layer
//! semantics are applied to vulnerable router models here and verified
//! packet by packet:
//!
//! 1. **RFC 7084 WPD-5 / L-14**: "any packet received by the CE router
//!    with a destination address in the prefix(es) delegated to the CE
//!    router but not in the set of prefixes assigned to the LAN must be
//!    dropped" — i.e. an unreachable route for the delegated prefix.
//!    [`patch_model`] applies it; loops must disappear while legitimate
//!    forwarding still works.
//! 2. **ICMPv6 echo filtering at the periphery** — removes the discovery
//!    signal (RFC 4890 deems it unnecessary; the paper argues otherwise).
//!    Modelled as the upstream filter knob in the world profiles; here we
//!    verify the patched router no longer leaks its address via
//!    unreachables when a filter drops echo requests.

use xmap_netsim::packet::{Icmpv6, Ipv6Packet, Network, Payload, UnreachCode, MAX_HOP_LIMIT};
use xmap_netsim::topology::{build_home_network, HomeNetworkPlan, RouterModel};

/// Returns a copy of `model` with the RFC 7084 unreachable routes
/// installed (both prefixes immune; forwarding behaviour unchanged).
pub fn patch_model(model: &RouterModel) -> RouterModel {
    RouterModel {
        wan_vulnerable: false,
        lan_vulnerable: false,
        ..*model
    }
}

/// Result of verifying one model's patch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MitigationReport {
    /// Loop traversals before the patch (one 255-hop-limit packet).
    pub loop_forwards_before: u64,
    /// Loop traversals after the patch.
    pub loop_forwards_after: u64,
    /// The patched router answers reject-route unreachables for the
    /// not-used prefix.
    pub answers_reject_route: bool,
    /// A legitimate LAN host is still reachable after the patch.
    pub lan_still_reachable: bool,
}

impl MitigationReport {
    /// Whether the mitigation is effective and non-breaking.
    pub fn effective(&self) -> bool {
        self.loop_forwards_after <= 2
            && self.answers_reject_route
            && self.lan_still_reachable
            && self.loop_forwards_before > self.loop_forwards_after
    }
}

/// Applies the RFC 7084 patch to `model` and measures before/after
/// behaviour on the Figure 4 home network.
pub fn verify_mitigation(model: &RouterModel) -> MitigationReport {
    let plan = HomeNetworkPlan::default();
    let attack_target = if model.lan_vulnerable {
        plan.not_used_lan_prefix().addr().with_iid(1)
    } else {
        plan.nx_wan_address()
    };

    // Before.
    let (mut engine, net) = build_home_network(model, &plan);
    engine.reset_counters();
    engine.handle(Ipv6Packet::echo_request(
        plan.vantage_addr,
        attack_target,
        MAX_HOP_LIMIT,
        0,
        0,
    ));
    let before = engine.link_forwards(net.isp, net.cpe) + engine.link_forwards(net.cpe, net.isp);

    // After.
    let patched = patch_model(model);
    let (mut engine, net) = build_home_network(&patched, &plan);
    engine.reset_counters();
    let replies = engine.handle(Ipv6Packet::echo_request(
        plan.vantage_addr,
        attack_target,
        MAX_HOP_LIMIT,
        0,
        0,
    ));
    let after = engine.link_forwards(net.isp, net.cpe) + engine.link_forwards(net.cpe, net.isp);
    let answers_reject_route = replies.iter().any(|r| {
        matches!(
            r.payload,
            Payload::Icmp(Icmpv6::DestUnreachable {
                code: UnreachCode::RejectRoute,
                ..
            })
        )
    });
    let lan_replies = engine.handle(Ipv6Packet::echo_request(
        plan.vantage_addr,
        plan.lan_host,
        64,
        1,
        1,
    ));
    let lan_still_reachable = lan_replies
        .iter()
        .any(|r| matches!(r.payload, Payload::Icmp(Icmpv6::EchoReply { .. })));

    MitigationReport {
        loop_forwards_before: before,
        loop_forwards_after: after,
        answers_reject_route,
        lan_still_reachable,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmap_netsim::topology::{full_catalog, LoopBehavior, NAMED_MODELS};

    #[test]
    fn patch_kills_loops_on_every_named_model() {
        for model in NAMED_MODELS {
            let report = verify_mitigation(model);
            assert!(
                report.effective(),
                "{} {}: {report:?}",
                model.brand,
                model.model
            );
            assert!(
                report.loop_forwards_before > 10,
                "{}: {report:?}",
                model.brand
            );
        }
    }

    #[test]
    fn patch_kills_loops_across_full_catalog() {
        for model in full_catalog() {
            let report = verify_mitigation(&model);
            assert!(
                report.effective(),
                "{} {}: {report:?}",
                model.brand,
                model.model
            );
        }
    }

    #[test]
    fn patch_preserves_forwarding_behaviour_field() {
        let limited = NAMED_MODELS.iter().find(|m| m.brand == "Xiaomi").unwrap();
        let patched = patch_model(limited);
        assert_eq!(patched.behavior, limited.behavior);
        assert!(matches!(patched.behavior, LoopBehavior::Limited { .. }));
        assert!(!patched.wan_vulnerable && !patched.lan_vulnerable);
        assert_eq!(patched.brand, limited.brand);
    }

    #[test]
    fn report_effectiveness_criteria() {
        let good = MitigationReport {
            loop_forwards_before: 253,
            loop_forwards_after: 1,
            answers_reject_route: true,
            lan_still_reachable: true,
        };
        assert!(good.effective());
        let breaks_lan = MitigationReport {
            lan_still_reachable: false,
            ..good
        };
        assert!(!breaks_lan.effective());
        let still_loops = MitigationReport {
            loop_forwards_after: 200,
            ..good
        };
        assert!(!still_loops.effective());
    }
}
