//! The 99-entry controlled router testbed (Section VI-D / Table XII).
//!
//! Each router model is wired into the Figure 4 home network (WAN /64,
//! delegated LAN /60) and probed with one 255-hop-limit packet into the
//! not-used region of each prefix; routing tables and traffic decide the
//! verdicts. Conforming with the paper, every model is vulnerable on at
//! least one prefix, routers with an immune prefix answer Destination
//! Unreachable there, and the limited-loop firmware (Xiaomi, Gargoyle,
//! librecmc, OpenWrt) forwards loop packets more than 10 but far fewer
//! than (255−n)/2 times.

use xmap_netsim::packet::{Icmpv6, Ipv6Packet, Network, Payload, MAX_HOP_LIMIT};
use xmap_netsim::topology::{build_home_network, full_catalog, HomeNetworkPlan, RouterModel};

/// Verdict for one prefix of one tested router.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrefixVerdict {
    /// The prefix loops; carries the measured loop traversal count.
    Vulnerable {
        /// ISP↔CPE traversals of one attack packet.
        loop_forwards: u64,
    },
    /// The router answered Destination Unreachable (immune).
    Immune,
    /// No conclusive response.
    Inconclusive,
}

impl PrefixVerdict {
    /// Whether the verdict is vulnerable.
    pub fn is_vulnerable(&self) -> bool {
        matches!(self, PrefixVerdict::Vulnerable { .. })
    }
}

/// One Table XII row: a tested router with per-prefix verdicts.
#[derive(Debug, Clone)]
pub struct CaseStudyRow {
    /// The tested model.
    pub model: RouterModel,
    /// WAN-prefix verdict.
    pub wan: PrefixVerdict,
    /// LAN-prefix verdict.
    pub lan: PrefixVerdict,
}

impl CaseStudyRow {
    /// Vulnerable on at least one prefix.
    pub fn is_vulnerable(&self) -> bool {
        self.wan.is_vulnerable() || self.lan.is_vulnerable()
    }
}

/// Tests one prefix of one model; `target` must be a not-used destination
/// inside the prefix under test.
fn test_prefix(
    model: &RouterModel,
    plan: &HomeNetworkPlan,
    target: xmap_addr::Ip6,
) -> PrefixVerdict {
    let (mut engine, net) = build_home_network(model, plan);
    engine.reset_counters();
    let replies = engine.handle(Ipv6Packet::echo_request(
        plan.vantage_addr,
        target,
        MAX_HOP_LIMIT,
        0,
        0,
    ));
    let loop_forwards =
        engine.link_forwards(net.isp, net.cpe) + engine.link_forwards(net.cpe, net.isp);
    match replies.first().map(|r| &r.payload) {
        Some(Payload::Icmp(Icmpv6::TimeExceeded { .. })) => {
            PrefixVerdict::Vulnerable { loop_forwards }
        }
        Some(Payload::Icmp(Icmpv6::DestUnreachable { .. })) => PrefixVerdict::Immune,
        _ if loop_forwards > 4 => PrefixVerdict::Vulnerable { loop_forwards },
        _ => PrefixVerdict::Inconclusive,
    }
}

/// Tests one router model on both prefixes.
pub fn run_case_study(model: &RouterModel) -> CaseStudyRow {
    let plan = HomeNetworkPlan::default();
    let wan = test_prefix(model, &plan, plan.nx_wan_address());
    let lan = test_prefix(model, &plan, plan.not_used_lan_prefix().addr().with_iid(1));
    CaseStudyRow {
        model: *model,
        wan,
        lan,
    }
}

/// Runs the full 99-entry testbed.
pub fn run_case_studies() -> Vec<CaseStudyRow> {
    full_catalog().iter().map(run_case_study).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmap_netsim::topology::NAMED_MODELS;

    #[test]
    fn all_99_models_vulnerable() {
        let rows = run_case_studies();
        assert_eq!(rows.len(), 99);
        for row in &rows {
            assert!(
                row.is_vulnerable(),
                "{} {} not vulnerable",
                row.model.brand,
                row.model.model
            );
        }
    }

    #[test]
    fn verdicts_match_table_xii_flags() {
        for model in NAMED_MODELS {
            let row = run_case_study(model);
            assert_eq!(
                row.wan.is_vulnerable(),
                model.wan_vulnerable,
                "{} WAN",
                model.brand
            );
            assert_eq!(
                row.lan.is_vulnerable(),
                model.lan_vulnerable,
                "{} LAN",
                model.brand
            );
        }
    }

    #[test]
    fn immune_prefixes_answer_unreachable() {
        // ASUS GT-AC5300: LAN immune.
        let asus = NAMED_MODELS.iter().find(|m| m.brand == "ASUS").unwrap();
        let row = run_case_study(asus);
        assert_eq!(row.lan, PrefixVerdict::Immune);
        assert!(row.wan.is_vulnerable());
    }

    #[test]
    fn limited_models_forward_more_than_10_times() {
        let rows = run_case_studies();
        let limited: Vec<_> = rows
            .iter()
            .filter(|r| {
                matches!(
                    r.model.behavior,
                    xmap_netsim::topology::LoopBehavior::Limited { .. }
                )
            })
            .collect();
        assert!(limited.len() >= 4, "{}", limited.len());
        for row in limited {
            let PrefixVerdict::Vulnerable { loop_forwards } = row.wan else {
                panic!("{}: WAN not vulnerable", row.model.brand);
            };
            assert!(
                loop_forwards > 10 && loop_forwards < 60,
                "{}: {loop_forwards}",
                row.model.brand
            );
        }
    }

    #[test]
    fn full_loop_models_forward_about_half_of_255_each_way() {
        let huawei = NAMED_MODELS.iter().find(|m| m.brand == "Huawei").unwrap();
        let row = run_case_study(huawei);
        let PrefixVerdict::Vulnerable { loop_forwards } = row.lan else {
            panic!()
        };
        // Each router sees the packet (255-n)/2 times; traversals ≈ 255-n.
        assert!((240..=255).contains(&loop_forwards), "{loop_forwards}");
    }
}
