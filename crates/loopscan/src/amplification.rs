//! Packet-level amplification measurement (Section VI-A).
//!
//! A loop packet with hop limit 255 injected at the vantage traverses the
//! ISP↔CPE link (255 − n) times for a path of n hops, amplifying the
//! attacker's traffic by a factor >200 for typical paths. When the source
//! address is spoofed into another looping prefix, the final Time Exceeded
//! error is routed back into the loop and bounces again, roughly doubling
//! the traffic. Both effects are measured here on the explicit engine,
//! packet by packet.

use xmap_addr::Ip6;
use xmap_netsim::packet::{Ipv6Packet, Network, MAX_HOP_LIMIT};
use xmap_netsim::topology::{build_home_network, HomeNetworkPlan, RouterModel};

/// One measurement: path length → loop traversals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AmplificationPoint {
    /// Hop count n between attacker and the ISP router.
    pub path_hops: u8,
    /// Traversals of the ISP↔CPE link caused by one attack packet.
    pub loop_forwards: u64,
}

impl AmplificationPoint {
    /// The amplification factor (looped bytes per attack byte).
    pub fn factor(&self) -> u64 {
        self.loop_forwards
    }
}

/// Measures loop traffic for one router model at a given path length by
/// sending a single 255-hop-limit packet into a not-used LAN prefix.
pub fn measure_amplification(model: &RouterModel, path_hops: u8) -> AmplificationPoint {
    measure_amplification_with(model, path_hops, &xmap_telemetry::Telemetry::disabled())
}

/// [`measure_amplification`] with a telemetry bundle attached: the engine
/// mirrors its traversal counters into the registry and the measured
/// factor is recorded into the `loopscan.amplification_factor` histogram.
pub fn measure_amplification_with(
    model: &RouterModel,
    path_hops: u8,
    telemetry: &xmap_telemetry::Telemetry,
) -> AmplificationPoint {
    let plan = HomeNetworkPlan {
        transit_hops: path_hops,
        ..HomeNetworkPlan::default()
    };
    let (mut engine, net) = build_home_network(model, &plan);
    engine.set_telemetry(telemetry);
    engine.reset_counters();
    let target = if model.lan_vulnerable {
        plan.not_used_lan_prefix().addr().with_iid(1)
    } else {
        plan.nx_wan_address()
    };
    engine.handle(Ipv6Packet::echo_request(
        plan.vantage_addr,
        target,
        MAX_HOP_LIMIT,
        0,
        0,
    ));
    let loop_forwards =
        engine.link_forwards(net.isp, net.cpe) + engine.link_forwards(net.cpe, net.isp);
    let point = AmplificationPoint {
        path_hops,
        loop_forwards,
    };
    if telemetry.registry.is_enabled() {
        crate::telemetry::LoopscanTelemetry::bind(telemetry)
            .amplification
            .record(point.factor());
    }
    if telemetry.tracer.is_enabled() {
        telemetry.tracer.event(
            0,
            "loopscan.amplify",
            vec![
                ("path_hops", u64::from(path_hops).into()),
                ("factor", point.factor().into()),
            ],
        );
    }
    point
}

/// Measures the spoofed-source doubling: the attack packet's source is
/// forged to another address inside the looping prefix, so the Time
/// Exceeded generated when the first loop dies is itself routed back into
/// the loop. Returns (plain, spoofed) traversal counts.
pub fn measure_spoofed_doubling(model: &RouterModel, path_hops: u8) -> (u64, u64) {
    let plain = measure_amplification(model, path_hops).loop_forwards;

    let plan = HomeNetworkPlan {
        transit_hops: path_hops,
        ..HomeNetworkPlan::default()
    };
    let (mut engine, net) = build_home_network(model, &plan);
    engine.reset_counters();
    let target = if model.lan_vulnerable {
        plan.not_used_lan_prefix().addr().with_iid(1)
    } else {
        plan.nx_wan_address()
    };
    // Spoofed source: a *different* not-used address in the same region.
    let spoofed_src = Ip6::new(target.bits() ^ 0xff00);
    engine.handle(Ipv6Packet::echo_request(
        spoofed_src,
        target,
        MAX_HOP_LIMIT,
        0,
        0,
    ));
    let spoofed = engine.link_forwards(net.isp, net.cpe) + engine.link_forwards(net.cpe, net.isp);
    (plain, spoofed)
}

/// Sweeps path lengths, producing the amplification series the paper's
/// ">200 for n < 55" claim summarizes.
pub fn amplification_sweep(model: &RouterModel, hops: &[u8]) -> Vec<AmplificationPoint> {
    amplification_sweep_with(model, hops, &xmap_telemetry::Telemetry::disabled())
}

/// [`amplification_sweep`] recording every measured factor into the
/// telemetry bundle's amplification histogram.
pub fn amplification_sweep_with(
    model: &RouterModel,
    hops: &[u8],
    telemetry: &xmap_telemetry::Telemetry,
) -> Vec<AmplificationPoint> {
    hops.iter()
        .map(|n| measure_amplification_with(model, *n, telemetry))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmap_netsim::topology::NAMED_MODELS;

    fn full_loop_model() -> &'static RouterModel {
        NAMED_MODELS
            .iter()
            .find(|m| m.brand == "Huawei")
            .expect("Huawei WS5100 present")
    }

    #[test]
    fn amplification_exceeds_200_for_short_paths() {
        for n in [0u8, 10, 30, 50] {
            let point = measure_amplification(full_loop_model(), n);
            assert!(point.factor() > 200, "n={n}: factor {}", point.factor());
        }
    }

    #[test]
    fn amplification_decreases_linearly_with_path_length() {
        let sweep = amplification_sweep(full_loop_model(), &[0, 10, 20, 40]);
        for w in sweep.windows(2) {
            let dn = (w[1].path_hops - w[0].path_hops) as u64;
            assert_eq!(w[0].loop_forwards - w[1].loop_forwards, dn, "{w:?}");
        }
        // factor ≈ 255 - n - small constant.
        let p0 = &sweep[0];
        assert!((250..=255).contains(&(p0.loop_forwards + p0.path_hops as u64 + 2)));
    }

    #[test]
    fn spoofed_source_roughly_doubles_traffic() {
        let (plain, spoofed) = measure_spoofed_doubling(full_loop_model(), 10);
        assert!(
            spoofed as f64 >= plain as f64 * 1.8,
            "plain {plain}, spoofed {spoofed}"
        );
        assert!(
            spoofed as f64 <= plain as f64 * 2.2,
            "plain {plain}, spoofed {spoofed}"
        );
    }

    #[test]
    fn limited_loop_model_has_small_factor() {
        let xiaomi = NAMED_MODELS.iter().find(|m| m.brand == "Xiaomi").unwrap();
        let point = measure_amplification(xiaomi, 10);
        assert!(point.factor() > 10, "{}", point.factor());
        assert!(point.factor() < 40, "{}", point.factor());
    }

    #[test]
    fn wan_only_model_loops_on_nx_address() {
        let asus = NAMED_MODELS.iter().find(|m| m.brand == "ASUS").unwrap();
        assert!(!asus.lan_vulnerable);
        let point = measure_amplification(asus, 5);
        assert!(point.factor() > 200, "{}", point.factor());
    }
}
