//! Internet-wide loop survey, disclosure and mitigation — the full
//! Section VI/VII arc in one program.
//!
//! 1. Scan the global BGP table's sub-prefix space for loop-vulnerable
//!    last hops (Table IX / Figure 5).
//! 2. Depth-scan the Chinese broadband blocks and assemble the
//!    responsible-disclosure campaign the paper describes ("all found
//!    issues were reported to related vendors and ASes").
//! 3. Verify the RFC 7084 patch kills the loops without breaking
//!    forwarding.
//!
//! Run with: `cargo run --release --example internet_survey`

use xmap::{ScanConfig, Scanner};
use xmap_loopscan::{verify_mitigation, BgpSurvey, DepthSurvey, DisclosureCampaign};
use xmap_netsim::geo;
use xmap_netsim::isp::SAMPLE_BLOCKS;
use xmap_netsim::topology::NAMED_MODELS;
use xmap_netsim::world::{World, WorldConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let world = World::with_config(WorldConfig {
        seed: 2021,
        bgp_ases: 2500, // scaled slice of the 6,911-AS universe
        ..Default::default()
    });
    let mut scanner = Scanner::new(
        world,
        ScanConfig {
            seed: 2021,
            ..Default::default()
        },
    );

    // 1. BGP-wide survey.
    let survey = BgpSurvey {
        probes_per_prefix: 1 << 7,
        max_prefixes: None,
    };
    let result = survey.run(&mut scanner);
    let (vuln, vasn, vcty) = result.vulnerable_summary();
    println!(
        "BGP survey: {} last hops across {} ASes / {} countries ({} probes)",
        result.total(),
        result.asns(),
        result.countries(),
        result.probes
    );
    println!(
        "loop-vulnerable: {vuln} last hops across {vasn} ASes / {vcty} countries \
         (paper: 128k / 3,877 / 132)"
    );
    println!("top loop ASNs:");
    for (asn, count) in result.top_loop_asns(5) {
        println!("  AS{asn:<8} {:<22} {count}", geo::name_of(asn));
    }
    println!("top loop countries: {:?}", result.top_loop_countries(6));

    // 2. Depth survey + disclosure campaign.
    let mut depth = xmap_loopscan::survey::DepthSurveyResult::default();
    let depth_driver = DepthSurvey::new(1 << 16);
    for idx in [11usize, 12, 13] {
        depth_driver.run_block(&mut scanner, &SAMPLE_BLOCKS[idx], &mut depth);
    }
    let campaign = DisclosureCampaign::from_depth_survey(&depth);
    println!("\ndisclosure campaign: {}", campaign.summary());
    if let Some(top) = campaign.vendors.first() {
        println!("\n--- advisory preview ({}) ---", top.vendor);
        print!(
            "{}",
            campaign.advisory_text(top.vendor).expect("vendor present")
        );
    }

    // 3. Mitigation verification on the named router models.
    println!("--- mitigation verification (RFC 7084 unreachable route) ---");
    for model in NAMED_MODELS.iter().take(4) {
        let report = verify_mitigation(model);
        println!(
            "{:<10} {:<14} loop {} -> {} traversals | reject-route {} | LAN ok {}",
            model.brand,
            model.model,
            report.loop_forwards_before,
            report.loop_forwards_after,
            report.answers_reject_route,
            report.lan_still_reachable,
        );
        assert!(report.effective());
    }
    println!("patch effective on every tested model.");
    Ok(())
}
