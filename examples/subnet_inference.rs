//! Subnet-boundary inference (Section IV-A / Table I).
//!
//! Before a periphery scan, the sub-prefix length each ISP assigns to its
//! customers must be inferred: find one periphery, then flip target bits
//! from position 63 upward until the responder changes — that bit position
//! is the subnet boundary. This example runs the inference on every sample
//! block and compares against the ground-truth assignment policy.
//!
//! Run with: `cargo run --release --example subnet_inference`

use xmap::{ScanConfig, Scanner};
use xmap_netsim::isp::SAMPLE_BLOCKS;
use xmap_netsim::World;
use xmap_periphery::infer_boundary;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut scanner = Scanner::new(World::new(2021), ScanConfig::default());
    println!(
        "{:<26} {:>8} {:>10} {:>12} {:>8}",
        "block", "truth", "inferred", "confidence", "probes"
    );
    let mut correct = 0;
    let mut resolved = 0;
    for profile in SAMPLE_BLOCKS {
        let inference = infer_boundary(&mut scanner, profile.scan_prefix(), 8000, 3);
        let inferred = inference
            .inferred_len
            .map(|l| format!("/{l}"))
            .unwrap_or_else(|| "(no periphery found)".to_owned());
        if let Some(len) = inference.inferred_len {
            resolved += 1;
            if len == profile.assigned_len {
                correct += 1;
            }
        }
        println!(
            "{:<26} {:>8} {:>10} {:>11.0}% {:>8}",
            profile.label(),
            format!("/{}", profile.assigned_len),
            inferred,
            inference.confidence() * 100.0,
            inference.probes
        );
    }
    println!(
        "\n{correct}/{resolved} resolved blocks inferred correctly (sparse blocks like BSNL can \
         need more preliminary probes; the paper replicates the test several times too)"
    );
    Ok(())
}
