//! Routing-loop attack study (Section VI).
//!
//! Three parts, mirroring the paper's escalation:
//! 1. detect loop-vulnerable peripheries in the wild (depth survey),
//! 2. measure amplification packet-by-packet on a controlled home network,
//!    including the spoofed-source doubling trick,
//! 3. verify the Table XII case-study routers and print the RFC 7084
//!    mitigation.
//!
//! Run with: `cargo run --release --example routing_loop`

use xmap::{ScanConfig, Scanner};
use xmap_loopscan::{
    measure_amplification, measure_spoofed_doubling, run_case_studies, DepthSurvey,
};
use xmap_netsim::isp::SAMPLE_BLOCKS;
use xmap_netsim::topology::NAMED_MODELS;
use xmap_netsim::World;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Depth survey over China Unicom broadband (78.8% loop rate).
    let mut scanner = Scanner::new(World::new(2021), ScanConfig::default());
    let mut result = xmap_loopscan::survey::DepthSurveyResult::default();
    DepthSurvey::new(1 << 16).run_block(&mut scanner, &SAMPLE_BLOCKS[11], &mut result);
    let found = result.count_in_block(12);
    let probed = result.probed_per_block[&12];
    println!(
        "depth survey (China Unicom broadband): {found} loop-vulnerable peripheries in {probed} probes"
    );
    println!(
        "  {:.1}% mis-route their WAN prefix (\"same\"); the rest their delegated LAN prefix",
        result.same_frac_in_block(12) * 100.0
    );
    let stats = scanner.network_mut().stats();
    println!(
        "  survey loop traffic: {} link traversals over {} loop events (mean amplification {:.0})",
        stats.loop_forwards,
        stats.loop_events,
        stats.amplification()
    );

    // 2. Controlled amplification measurement (Figure 4 topology).
    let model = NAMED_MODELS
        .iter()
        .find(|m| m.brand == "Huawei")
        .expect("full-loop model");
    println!(
        "\namplification on {} {} (one 255-hop-limit attack packet):",
        model.brand, model.model
    );
    for n in [5u8, 15, 30, 50] {
        let point = measure_amplification(model, n);
        let (_, spoofed) = measure_spoofed_doubling(model, n);
        println!(
            "  path {n:>2} hops -> {:>3} loop traversals (x{} with a spoofed source)",
            point.loop_forwards,
            spoofed / point.loop_forwards.max(1)
        );
    }
    println!("  (the paper's claim: factor 255-n, i.e. >200 for typical paths)");

    // 3. The 99-router testbed.
    let rows = run_case_studies();
    let vulnerable = rows.iter().filter(|r| r.is_vulnerable()).count();
    println!(
        "\ncase studies: {vulnerable}/{} routers vulnerable on at least one prefix",
        rows.len()
    );
    for row in rows
        .iter()
        .filter(|r| NAMED_MODELS.iter().any(|m| m.model == r.model.model))
        .take(9)
    {
        println!(
            "  {:<12} {:<16} WAN {} LAN {}",
            row.model.brand,
            row.model.model,
            if row.wan.is_vulnerable() {
                "VULNERABLE"
            } else {
                "immune    "
            },
            if row.lan.is_vulnerable() {
                "VULNERABLE"
            } else {
                "immune"
            },
        );
    }

    println!(
        "\nmitigation (RFC 7084): the CE router must drop packets whose destination is in\n\
         its delegated prefix but not assigned to any LAN — i.e. install an unreachable\n\
         route for the delegated prefix. Patched models answer Destination Unreachable\n\
         (reject route) instead of forwarding the packet back upstream."
    );
    Ok(())
}
