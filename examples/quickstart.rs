//! Quickstart: discover IPv6 network peripheries in one ISP block.
//!
//! Sends one ICMPv6 echo probe to a pseudorandom address inside each /64
//! sub-prefix of (a slice of) Reliance Jio's sample block; every ICMPv6
//! destination-unreachable response exposes a periphery's WAN address.
//!
//! Run with: `cargo run --release --example quickstart`

use xmap::{Blocklist, IcmpEchoProbe, ProbeResult, ScanConfig, Scanner};
use xmap_addr::classify_iid;
use xmap_netsim::World;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The simulated IPv6 Internet (the paper used the real one; DESIGN.md
    // explains the substitution). Everything is seeded and reproducible.
    let world = World::new(2021);

    // Scan 2^16 of the 2^32 /64 sub-prefixes in 2405:200::/32 (Table II
    // row 1). `max_targets` slices the space; drop it for the full scan.
    let mut scanner = Scanner::new(
        world,
        ScanConfig {
            max_targets: Some(1 << 16),
            ..Default::default()
        },
    );
    let range = "2405:200::/32-64".parse()?;
    let results = scanner.run(&range, &IcmpEchoProbe, &Blocklist::with_standard_reserved());

    println!(
        "sent {} probes, {} valid responses (hit rate {:.3}%)",
        results.stats.sent,
        results.stats.valid,
        results.stats.hit_rate() * 100.0
    );
    for record in results.records.iter().take(10) {
        if let ProbeResult::Unreachable { code } = record.result {
            println!(
                "periphery {} exposed by probing {} ({code:?}, IID class {})",
                record.responder,
                record.probe_dst,
                classify_iid(record.responder)
            );
        }
    }
    println!(
        "... ({} peripheries total in this slice)",
        results.records.len()
    );
    Ok(())
}
