//! Full periphery-discovery campaign across the fifteen sample blocks.
//!
//! Reproduces the Section IV measurement at a configurable scale: per-block
//! discovery counts with same/diff classification (Table II), the pooled
//! IID structure analysis (Table III) and vendor identification from
//! embedded MAC addresses (Table IV).
//!
//! Run with: `cargo run --release --example periphery_scan [log2_probes]`

use xmap::{ScanConfig, Scanner};
use xmap_addr::oui::DeviceClass;
use xmap_addr::IidClass;
use xmap_netsim::World;
use xmap_periphery::{identify, Campaign, VendorCounts};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bits: u32 = std::env::args()
        .nth(1)
        .map(|a| a.parse())
        .transpose()?
        .unwrap_or(17);
    let probes_per_block = 1u64 << bits.clamp(8, 32);

    let mut scanner = Scanner::new(World::new(2021), ScanConfig::default());
    println!("scanning 2^{bits} sub-prefixes per block across 15 sample blocks...");
    let campaign = Campaign::new(probes_per_block).run(&mut scanner);

    println!("\nper-block discovery (Table II shape):");
    for block in &campaign.blocks {
        let p = block.profile();
        println!(
            "  {:<24} found {:>6} | est. full-block {:>12.0} | same {:>5.1}% | EUI-64 {:>5.1}%",
            p.label(),
            block.unique(),
            block.estimated_total(),
            block.same_frac() * 100.0,
            block.eui64_count() as f64 * 100.0 / block.unique().max(1) as f64,
        );
    }
    println!(
        "\nTOTAL: {} found, scale-corrected estimate {:.1}M (paper: 52.5M)",
        campaign.total_unique(),
        campaign.estimated_total() / 1e6
    );

    println!("\nIID structure of discovered peripheries (Table III shape):");
    let hist = campaign.iid_histogram();
    for class in IidClass::ALL {
        println!(
            "  {:<14} {:>6} ({:>5.1}%)",
            class.to_string(),
            hist.count(class),
            hist.percent(class)
        );
    }

    println!("\ntop vendors from EUI-64 MAC addresses (Table IV shape):");
    let mut vendors = VendorCounts::new();
    for periphery in campaign.peripheries() {
        if let Some(v) = identify(periphery.mac, None) {
            vendors.record(v);
        }
    }
    for class in [DeviceClass::Cpe, DeviceClass::Ue] {
        println!("  {class} (total {}):", vendors.total_of(class));
        for (vendor, count) in vendors.top(class).into_iter().take(8) {
            println!("    {vendor:<16} {count}");
        }
    }
    Ok(())
}
