//! Unintended-exposed-service audit (Section V).
//!
//! Discovers peripheries in the two service-rich Chinese broadband blocks,
//! then probes all eight security services on each, reporting exposure
//! rates, serving-software staleness and CVE exposure — the workflow a
//! network administrator would run against their own prefixes with the
//! real XMap + ZGrab2.
//!
//! Run with: `cargo run --release --example service_audit`

use xmap::{ScanConfig, Scanner};
use xmap_appscan::{cve, SoftwareStats, SurveyRunner};
use xmap_netsim::isp::SAMPLE_BLOCKS;
use xmap_netsim::services::ServiceKind;
use xmap_netsim::World;
use xmap_periphery::{Campaign, CampaignResult};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut scanner = Scanner::new(World::new(2021), ScanConfig::default());

    // Discover peripheries in China Unicom + China Mobile broadband.
    let campaign_driver = Campaign::new(1 << 17);
    let mut campaign = CampaignResult::default();
    for idx in [11usize, 12] {
        campaign
            .blocks
            .push(campaign_driver.run_block(&mut scanner, &SAMPLE_BLOCKS[idx]));
    }
    println!(
        "discovered {} peripheries; probing 8 services on each...",
        campaign.total_unique()
    );

    let survey = SurveyRunner.run(&mut scanner, &campaign);
    let probed = survey.probed();
    println!("\nexposure by service (Table VII shape):");
    for kind in ServiceKind::ALL {
        let n = survey.alive_total(kind);
        println!(
            "  {:<18} {:>5} devices ({:>5.2}%)",
            kind.label(),
            n,
            n as f64 * 100.0 / probed.max(1) as f64
        );
    }
    let any = survey.devices_with_any().len();
    println!(
        "  any service       {:>5} devices ({:>5.2}%) — the paper finds 9.0% across all blocks",
        any,
        any as f64 * 100.0 / probed.max(1) as f64
    );
    println!(
        "  HTTP/80 login pages reachable from the Internet: {}",
        survey.login_page_count()
    );

    println!("\nserving software and staleness (Table VIII shape):");
    let stats = SoftwareStats::from_survey(&survey);
    for kind in [
        ServiceKind::Dns,
        ServiceKind::Http,
        ServiceKind::Ssh,
        ServiceKind::Ftp,
    ] {
        for (sw, count) in stats.top_for_service(kind).into_iter().take(3) {
            let cves = cve::count_for_product(sw.name);
            println!(
                "  {:<8} {:<28} {:>5} devices | released {} ({} years before probe) | {} CVEs",
                kind.short_name(),
                sw.banner(),
                count,
                sw.released,
                sw.age_at_probe(),
                cves
            );
        }
    }
    println!(
        "\n{:.1}% of banners come from software released 6+ years before the probe date",
        stats.stale_fraction(6) * 100.0
    );

    // Spotlight: the paper's dnsmasq-2.4x finding.
    if let Some(id) = xmap_netsim::services::software_id("dnsmasq", "2.4x") {
        let exploitable = cve::cves_for(id);
        println!(
            "\ndnsmasq 2.4x (released ~8 years before the scan) is exploitable via {} CVEs, e.g. {}",
            exploitable.len(),
            exploitable.first().map(|c| c.id).unwrap_or("-")
        );
    }
    Ok(())
}
