//! Umbrella crate for the xmap-suite workspace: re-exports the member
//! crates under one name so examples and integration tests can use a
//! single dependency, and so `cargo doc -p xmap-suite` gives a map of the
//! whole reproduction.
//!
//! See the workspace `README.md` for the project overview, `DESIGN.md` for
//! the system inventory and substitution policy, and `EXPERIMENTS.md` for
//! paper-vs-measured results.

#![forbid(unsafe_code)]

pub use xmap;
pub use xmap_addr as addr;
pub use xmap_appscan as appscan;
pub use xmap_loopscan as loopscan;
pub use xmap_netsim as netsim;
pub use xmap_periphery as periphery;

/// The paper this workspace reproduces.
pub const PAPER: &str =
    "Fast IPv6 Network Periphery Discovery and Security Implications (DSN 2021)";

#[cfg(test)]
mod tests {
    #[test]
    fn reexports_resolve() {
        let _: crate::addr::Ip6 = "2001:db8::1".parse().unwrap();
        let _ = crate::netsim::World::new(1);
        assert!(crate::PAPER.contains("IPv6"));
    }
}
