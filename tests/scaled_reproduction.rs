//! Headline-shape assertions: a quick-scale end-to-end run must land the
//! paper's qualitative results — who wins, by roughly what factor.

use xmap_bench::{Experiment, ExperimentConfig};
use xmap_loopscan::measure_amplification;
use xmap_netsim::topology::NAMED_MODELS;

fn experiment() -> Experiment {
    Experiment::new(ExperimentConfig {
        discovery_probes_per_block: 1 << 16,
        loop_probes_per_block: 1 << 15,
        bgp_probes_per_prefix: 1 << 7,
        bgp_ases: 1200,
        ..ExperimentConfig::default()
    })
}

#[test]
fn headline_discovery_estimate_matches_order_of_magnitude() {
    let mut exp = experiment();
    let campaign = exp.campaign();
    // Paper: 52.5M peripheries across 15 blocks; scale-corrected estimate
    // must land in the right decade.
    let est = campaign.estimated_total();
    assert!((2.0e7..1.2e8).contains(&est), "estimate {est}");
    // Pooled same-/64 share: paper 77.2%.
    let same = campaign.same_frac();
    assert!((0.6..0.92).contains(&same), "same {same}");
    // Airtel is the best-performing block, far ahead of BSNL (Section IV-E).
    let by_id = |id: u8| {
        campaign
            .blocks
            .iter()
            .find(|b| b.profile_id == id)
            .map(|b| b.unique())
            .unwrap_or(0)
    };
    assert!(
        by_id(3) > 10 * by_id(2).max(1),
        "Airtel {} BSNL {}",
        by_id(3),
        by_id(2)
    );
}

#[test]
fn headline_iid_structure() {
    let mut exp = experiment();
    let hist = exp.campaign().iid_histogram();
    use xmap_addr::IidClass;
    // Randomized dominates (paper 75.5%), EUI-64 is a visible minority
    // (paper 7.6%), low-byte is rare (paper 1.0%).
    assert!(hist.percent(IidClass::Randomized) > 55.0);
    let eui = hist.percent(IidClass::Eui64);
    assert!((3.0..18.0).contains(&eui), "EUI-64 {eui}%");
    assert!(hist.percent(IidClass::LowByte) < 5.0);
}

#[test]
fn headline_service_exposure() {
    let mut exp = experiment();
    let survey = exp.survey().clone();
    let probed = survey.probed();
    let any = survey.devices_with_any().len();
    // Paper: 9.0% of peripheries expose at least one service.
    let frac = any as f64 / probed.max(1) as f64;
    assert!((0.03..0.25).contains(&frac), "any-service {frac}");
    // HTTP-8080 is the most exposed service overall (3.5M in the paper).
    use xmap_netsim::services::ServiceKind;
    let alt = survey.alive_total(ServiceKind::HttpAlt);
    for kind in [
        ServiceKind::Ntp,
        ServiceKind::Ftp,
        ServiceKind::Ssh,
        ServiceKind::Tls,
    ] {
        assert!(alt >= survey.alive_total(kind), "{kind} beats 8080");
    }
    // DNS exposure exists and dnsmasq serves it.
    assert!(survey.alive_total(ServiceKind::Dns) > 0);
}

#[test]
fn headline_loop_survey() {
    let mut exp = experiment();
    let depth = exp.depth();
    let total: usize = (1u8..=15).map(|id| depth.count_in_block(id)).sum();
    assert!(total > 20, "loop devices {total}");
    // Diff dominates (paper: 95.1% diff overall).
    assert!(depth.same_frac() < 0.35, "same {}", depth.same_frac());
    // Chinese broadband carriers dominate the loop population.
    let cn: usize = [11u8, 12, 13]
        .iter()
        .map(|id| depth.count_in_block(*id))
        .sum();
    assert!(cn * 10 >= total * 8, "CN {cn} of {total}");
}

#[test]
fn headline_bgp_survey() {
    let mut exp = experiment();
    let bgp = exp.bgp();
    assert!(bgp.total() > 100, "{}", bgp.total());
    let (vuln, vasns, vcountries) = bgp.vulnerable_summary();
    assert!(vuln > 10, "{vuln}");
    // Loop share: paper 3.2% of last hops; allow a broad band.
    let share = vuln as f64 / bgp.total() as f64;
    assert!((0.005..0.12).contains(&share), "loop share {share}");
    assert!(vasns >= 5 && vcountries >= 3);
    // The hotspot countries of Figure 5 are in the top of the ranking.
    let top: Vec<&str> = bgp
        .top_loop_countries(6)
        .into_iter()
        .map(|(c, _)| c)
        .collect();
    let hot = ["BR", "CN", "EC", "VN", "US", "MM", "IN"];
    let overlap = top.iter().filter(|c| hot.contains(c)).count();
    assert!(overlap >= 3, "top countries {top:?}");
}

#[test]
fn headline_amplification_over_200() {
    // Paper: amplification factor >200 for every full-loop router at
    // typical path lengths.
    for model in NAMED_MODELS
        .iter()
        .filter(|m| matches!(m.behavior, xmap_netsim::topology::LoopBehavior::FullLoop))
    {
        let point = measure_amplification(model, 20);
        assert!(point.factor() > 200, "{}: {}", model.brand, point.factor());
    }
}
