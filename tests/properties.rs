//! Cross-crate property-based tests.

use proptest::prelude::*;
use xmap::{Blocklist, IcmpEchoProbe, ProbeModule, ProbeResult, ScanConfig, Scanner, Validator};
use xmap_addr::Ip6;
use xmap_netsim::packet::{Icmpv6, Ipv6Packet, Network, Payload};
use xmap_netsim::world::{World, WorldConfig};
use xmap_netsim::FaultPlan;

fn world(seed: u64) -> World {
    World::with_config(WorldConfig::lossless(seed, 20))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The world is a pure function of (seed, packet): any probe handled
    /// twice (on fresh worlds) yields identical responses.
    #[test]
    fn world_is_deterministic(seed in 0u64..1000, idx in 0u64..100_000, iid in any::<u64>()) {
        let profile = &xmap_netsim::isp::SAMPLE_BLOCKS[12];
        let dst = profile.scan_prefix().subprefix(profile.assigned_len, idx as u128).addr().with_iid(iid);
        let probe = Ipv6Packet::echo_request("fd00::1".parse().unwrap(), dst, 64, 1, 1);
        let a = world(seed).handle(probe.clone());
        let b = world(seed).handle(probe);
        prop_assert_eq!(a, b);
    }

    /// Every response the world produces to a cookie-stamped probe passes
    /// stateless validation — the simulator never emits packets the real
    /// scanner would discard as noise.
    #[test]
    fn world_responses_validate(seed in 0u64..200, idx in 0u64..200_000) {
        let v = Validator::new(seed ^ 0x5ca1_ab1e);
        let profile = &xmap_netsim::isp::SAMPLE_BLOCKS[2];
        let dst = profile.scan_prefix().subprefix(64, idx as u128).addr().with_iid(0x1234);
        let probe = IcmpEchoProbe.build("fd00::1".parse().unwrap(), dst, 64, &v);
        let mut w = world(seed);
        for resp in w.handle(probe) {
            let result = IcmpEchoProbe.classify(&resp, &v);
            prop_assert_ne!(result, ProbeResult::Invalid, "world response failed validation");
        }
    }

    /// Tampering with any cookie bit makes validation fail.
    #[test]
    fn tampered_cookies_rejected(key in any::<u64>(), bits in any::<u128>(), flip in 0u32..32) {
        let v = Validator::new(key);
        let dst = Ip6::new(bits);
        let (ident, seq) = v.echo_fields(dst);
        let cookie = ((ident as u32) << 16) | seq as u32;
        let bad = cookie ^ (1 << flip);
        prop_assert!(!v.check_echo(dst, (bad >> 16) as u16, bad as u16));
    }

    /// Sharded scans of the same range partition the findings: the union
    /// of N shards equals the unsharded scan, with no double-counting.
    #[test]
    fn shards_partition_findings(shards in 2u64..5) {
        let range: xmap_addr::ScanRange = "2402:3a80::/32-64".parse().unwrap();
        let full_cfg = ScanConfig { seed: 11, max_targets: Some(3000), ..Default::default() };
        // Unsharded reference over 3000 permuted targets.
        let mut reference = Scanner::new(world(5), full_cfg.clone());
        let ref_records = reference.run(&range, &IcmpEchoProbe, &Blocklist::allow_all()).records;
        let ref_targets: std::collections::HashSet<_> =
            ref_records.iter().map(|r| r.target).collect();

        // The same walk split into shards (each shard takes every Nth
        // element, so together the first 3000 positions are covered when
        // each shard takes 3000/N).
        let mut union = std::collections::HashSet::new();
        let per_shard = 3000 / shards;
        for shard in 0..shards {
            let cfg = ScanConfig {
                seed: 11,
                shard,
                shards,
                max_targets: Some(per_shard),
                ..Default::default()
            };
            let mut scanner = Scanner::new(world(5), cfg);
            for rec in scanner.run(&range, &IcmpEchoProbe, &Blocklist::allow_all()).records {
                prop_assert!(union.insert(rec.target), "target {} in two shards", rec.target);
            }
        }
        // The sharded union covers the same leading portion of the walk.
        let covered = union.intersection(&ref_targets).count();
        prop_assert!(covered as f64 >= ref_targets.len() as f64 * 0.9,
            "sharded union covered {covered} of {}", ref_targets.len());
    }

    /// Injected loss can only remove findings: for any world seed and any
    /// loss rate, the lossless scan's hit rate dominates the lossy one's.
    #[test]
    fn loss_only_removes_findings(seed in 0u64..50, loss_pct in 1u32..=40) {
        let loss = loss_pct as f64 / 100.0;
        let profile = &xmap_netsim::isp::SAMPLE_BLOCKS[2];
        let scan = |w: World| {
            let cfg = ScanConfig { seed: 3, max_targets: Some(512), ..Default::default() };
            let mut s = Scanner::new(w, cfg);
            s.run(&profile.scan_range(), &IcmpEchoProbe, &Blocklist::allow_all()).stats
        };
        let lossless = scan(World::with_config(WorldConfig::lossless(seed, 20)));
        let lossy = scan(World::with_config(
            WorldConfig::lossless(seed, 20)
                .with_fault(FaultPlan::none().seeded(seed ^ 0xF00D).with_forward_loss(loss)),
        ));
        prop_assert_eq!(lossless.sent, lossy.sent);
        prop_assert!(lossless.valid >= lossy.valid,
            "loss {loss} created findings: {} < {}", lossless.valid, lossy.valid);
        prop_assert!(lossless.hit_rate() >= lossy.hit_rate());
    }

    /// Under loss, retransmission never loses findings relative to a
    /// single-probe scan of the same faulty world.
    #[test]
    fn retransmission_never_hurts_under_loss(seed in 0u64..30) {
        let profile = &xmap_netsim::isp::SAMPLE_BLOCKS[2];
        let config = WorldConfig::lossless(seed, 20)
            .with_fault(FaultPlan::none().seeded(seed ^ 0xBEEF).with_forward_loss(0.15));
        let scan = |k: u32| {
            let cfg = ScanConfig {
                seed: 3,
                max_targets: Some(512),
                probes_per_target: k,
                ..Default::default()
            };
            let mut s = Scanner::new(World::with_config(config), cfg);
            s.run(&profile.scan_range(), &IcmpEchoProbe, &Blocklist::allow_all()).stats
        };
        let single = scan(1);
        let retried = scan(3);
        prop_assert!(retried.valid >= single.valid,
            "retransmission lost findings: {} < {}", retried.valid, single.valid);
    }

    /// The world never replies from the unspecified address and never
    /// echoes the probe's destination as an error source for unallocated
    /// space.
    #[test]
    fn response_sources_are_sane(seed in 0u64..100, idx in 0u64..50_000, hl in 2u8..=255) {
        let profile = &xmap_netsim::isp::SAMPLE_BLOCKS[11];
        let dst = profile.scan_prefix().subprefix(profile.assigned_len, idx as u128).addr().with_iid(7);
        let mut w = world(seed);
        for resp in w.handle(Ipv6Packet::echo_request("fd00::1".parse().unwrap(), dst, hl, 0, 0)) {
            prop_assert_ne!(resp.src, Ip6::UNSPECIFIED);
            prop_assert_eq!(resp.dst, "fd00::1".parse::<Ip6>().unwrap());
            if let Payload::Icmp(Icmpv6::DestUnreachable { invoking, .. }) = &resp.payload {
                prop_assert_eq!(invoking.dst, dst);
            }
        }
    }
}

/// Pinned-seed companion to `retransmission_never_hurts_under_loss`: at a
/// real loss rate, retransmission *strictly* improves the valid count.
#[test]
fn retransmission_strictly_improves_under_loss() {
    let profile = &xmap_netsim::isp::SAMPLE_BLOCKS[2];
    let config = WorldConfig::lossless(77, 20)
        .with_fault(FaultPlan::none().seeded(0x5107).with_forward_loss(0.2));
    let scan = |k: u32| {
        let cfg = ScanConfig {
            seed: 3,
            max_targets: Some(2048),
            probes_per_target: k,
            ..Default::default()
        };
        let mut s = Scanner::new(World::with_config(config), cfg);
        s.run(
            &profile.scan_range(),
            &IcmpEchoProbe,
            &Blocklist::allow_all(),
        )
        .stats
    };
    let single = scan(1);
    let retried = scan(3);
    assert!(single.valid > 0, "loss=0.2 should leave survivors");
    assert!(
        retried.valid > single.valid,
        "20% loss leaves recoverable gaps: {} vs {}",
        retried.valid,
        single.valid
    );
    assert!(retried.retransmits > 0);
}
