//! End-to-end tests of the fault-injection layer and the scanner's
//! loss-recovery pipeline: deterministic replay, mop-up of rate-limited
//! peripheries, and the recovery acceptance bar (retransmission + mop-up
//! restore >= 90% of the lossless baseline under injected faults).

use xmap::{Blocklist, IcmpEchoProbe, ScanConfig, Scanner};
use xmap_netsim::fault::IcmpRateLimit;
use xmap_netsim::isp::SAMPLE_BLOCKS;
use xmap_netsim::world::{World, WorldConfig};
use xmap_netsim::FaultPlan;
use xmap_periphery::Campaign;

/// A fault plan exercising every knob at once.
fn stress_plan() -> FaultPlan {
    FaultPlan::none()
        .seeded(0xBAD_CAFE)
        .with_forward_loss(0.05)
        .with_reverse_loss(0.02)
        .with_duplication(0.02)
        .with_jitter(5)
        .with_flaky(0.05, 256, 32)
        .with_icmp_limit(IcmpRateLimit::TokenBucket {
            capacity: 8,
            refill_interval: 512,
            start_depleted_frac: 0.2,
        })
}

/// Identical seeds in, byte-identical scan out — including every
/// retransmission, duplicated response and jittered delivery.
#[test]
fn faulted_scan_replays_byte_identical() {
    let run = || {
        let world = World::with_config(WorldConfig::lossless(4242, 30).with_fault(stress_plan()));
        let mut scanner = Scanner::new(
            world,
            ScanConfig {
                seed: 17,
                max_targets: Some(4096),
                probes_per_target: 3,
                record_silent: true,
                ..Default::default()
            },
        );
        scanner.run(
            &SAMPLE_BLOCKS[2].scan_range(),
            &IcmpEchoProbe,
            &Blocklist::allow_all(),
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.records, b.records);
    assert_eq!(a.silent_targets, b.silent_targets);
    // The plan actually bites: faults left fingerprints in the counters.
    assert!(a.stats.retransmits > 0, "{:?}", a.stats);
    assert!(a.stats.gave_up > 0, "{:?}", a.stats);
}

/// A CPE whose ICMPv6 error bucket starts empty is invisible to a
/// single-probe scan but answers the mop-up pass after its tokens refill
/// — the recovery path the fault layer exists to exercise.
#[test]
fn mop_up_recovers_rate_limited_cpes_single_probe_misses() {
    let depleted = WorldConfig::lossless(7100, 30).with_fault(
        FaultPlan::none()
            .seeded(0xD0_D0)
            .with_icmp_limit(IcmpRateLimit::TokenBucket {
                capacity: 4,
                refill_interval: 1024,
                start_depleted_frac: 1.0,
            }),
    );
    let profile = &SAMPLE_BLOCKS[2];
    let slice = 1u64 << 14;

    let mut single = Scanner::new(
        World::with_config(depleted),
        ScanConfig {
            seed: 5,
            max_targets: Some(slice),
            ..Default::default()
        },
    );
    let single_block = Campaign::new(slice).run_block(&mut single, profile);

    let mut mopped = Scanner::new(
        World::with_config(depleted),
        ScanConfig {
            seed: 5,
            max_targets: Some(slice),
            ..Default::default()
        },
    );
    let mopped_block = Campaign::new(slice)
        .with_mop_up(2048)
        .run_block(&mut mopped, profile);

    assert!(
        mopped_block.unique() > 20,
        "mop-up recovered only {}",
        mopped_block.unique()
    );
    assert_eq!(
        mopped_block.mop_up_recovered,
        mopped_block.unique() - single_block.unique()
    );
    assert!(
        single_block.unique() <= mopped_block.unique() / 5,
        "single-probe {} vs mop-up {}",
        single_block.unique(),
        mopped_block.unique()
    );
}

/// The acceptance bar: under 5% forward loss plus a partially depleted
/// ICMPv6 token bucket, retransmission + mop-up recover at least 90% of
/// the lossless-baseline peripheries, while a single-probe scan of the
/// same faulty world finds measurably fewer.
#[test]
fn recovery_restores_90_percent_of_lossless_baseline() {
    let profile = &SAMPLE_BLOCKS[2];
    let slice = 1u64 << 14;
    let faulty = WorldConfig::lossless(9001, 30).with_fault(
        FaultPlan::none()
            .seeded(0x10_55)
            .with_forward_loss(0.05)
            .with_icmp_limit(IcmpRateLimit::TokenBucket {
                capacity: 8,
                refill_interval: 512,
                start_depleted_frac: 0.3,
            }),
    );

    let baseline = {
        let mut s = Scanner::new(
            World::with_config(WorldConfig::lossless(9001, 30)),
            ScanConfig {
                seed: 5,
                max_targets: Some(slice),
                ..Default::default()
            },
        );
        Campaign::new(slice).run_block(&mut s, profile)
    };
    let single = {
        let mut s = Scanner::new(
            World::with_config(faulty),
            ScanConfig {
                seed: 5,
                max_targets: Some(slice),
                ..Default::default()
            },
        );
        Campaign::new(slice).run_block(&mut s, profile)
    };
    let recovered = {
        let mut s = Scanner::new(
            World::with_config(faulty),
            ScanConfig {
                seed: 5,
                max_targets: Some(slice),
                probes_per_target: 3,
                ..Default::default()
            },
        );
        Campaign::new(slice)
            .with_mop_up(2048)
            .run_block(&mut s, profile)
    };

    assert!(
        baseline.unique() > 20,
        "baseline too sparse: {}",
        baseline.unique()
    );
    let bar = (baseline.unique() as f64 * 0.9).ceil() as usize;
    assert!(
        recovered.unique() >= bar,
        "recovered {} of {} (bar {bar})",
        recovered.unique(),
        baseline.unique()
    );
    assert!(
        single.unique() < recovered.unique(),
        "single-probe {} should trail recovered {}",
        single.unique(),
        recovered.unique()
    );
    assert!(
        (single.unique() as f64) < baseline.unique() as f64 * 0.85,
        "faults should measurably dent a single-probe scan: {} vs baseline {}",
        single.unique(),
        baseline.unique()
    );
    // The pipeline knew it was fighting a rate limiter.
    assert!(recovered.stats.retransmits > 0);
}
