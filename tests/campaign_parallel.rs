//! End-to-end parallel-campaign determinism: the periphery-discovery
//! campaign run on 1, 2 and 4 work-stealing workers must be
//! byte-identical to the sequential walk — Table II rows, CSV records
//! and merged telemetry snapshots — and a campaign killed mid-block
//! under one worker count must resume byte-identically under another.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use xmap::ScanConfig;
use xmap_bench::{table2, Experiment, ExperimentConfig};
use xmap_netsim::world::{World, WorldConfig};
use xmap_netsim::KillPoint;
use xmap_periphery::{BlockMode, Campaign, ParallelCampaign};
use xmap_state::AbortSignal;
use xmap_telemetry::Telemetry;

const TPB: u64 = 1 << 12;

fn campaign_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("xmap-pcampaign-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn quick_config(workers: usize) -> ExperimentConfig {
    ExperimentConfig {
        discovery_probes_per_block: TPB,
        campaign_workers: workers,
        ..ExperimentConfig::quick()
    }
}

/// One experiment's campaign-facing artifacts: Table II text, the raw
/// CSV records, and the experiment registry's full snapshot JSON.
fn campaign_artifacts(workers: usize) -> (String, String, String) {
    let telemetry = Telemetry::new();
    let mut exp = Experiment::with_telemetry(quick_config(workers), telemetry.clone());
    let table = table2(&mut exp);
    let csv = exp.campaign().to_csv();
    (table, csv, telemetry.registry.snapshot().to_json())
}

#[test]
fn experiment_campaign_workers_are_byte_identical() {
    let (table1w, csv1w, snap1w) = campaign_artifacts(1);
    assert!(table1w.contains("TABLE II"), "{table1w}");
    assert!(csv1w.lines().count() > 1, "no peripheries:\n{csv1w}");
    for workers in [2usize, 4] {
        let (table, csv, snap) = campaign_artifacts(workers);
        assert_eq!(table, table1w, "{workers}-worker Table II diverged");
        assert_eq!(csv, csv1w, "{workers}-worker CSV diverged");
        assert_eq!(snap, snap1w, "{workers}-worker snapshot diverged");
    }
}

fn base() -> ScanConfig {
    ScanConfig {
        seed: 9,
        ..Default::default()
    }
}

fn make_world(_w: usize, telemetry: &Telemetry) -> World {
    let mut world = World::with_config(WorldConfig::lossless(41, 60));
    world.set_telemetry(telemetry);
    world
}

#[test]
fn kill_mid_block_resumes_byte_identically_under_other_worker_counts() {
    // Uninterrupted 1-worker reference.
    let reference = ParallelCampaign::new(Campaign::new(TPB), 1).run(&base(), make_world);
    assert!(!reference.interrupted);

    // Kill a 2-worker campaign mid-block: worker 1's replica trips the
    // shared abort signal after 5000 of its own probes, leaving at least
    // one completed block checkpoint and at least one block unfinished.
    let dir = campaign_dir("kill");
    let signal = AbortSignal::new();
    let exec2 = ParallelCampaign::new(Campaign::new(TPB), 2);
    let partial = exec2
        .run_checkpointed(&base(), &dir, false, Some(&signal), |w, telemetry| {
            let mut world = World::with_config(WorldConfig::lossless(41, 60));
            world.set_telemetry(telemetry);
            if w == 1 {
                world.arm_kill(
                    KillPoint {
                        after_probes: Some(5_000),
                        ..Default::default()
                    },
                    signal.clone(),
                );
            }
            world
        })
        .unwrap();
    assert!(partial.interrupted, "kill point must fire");
    assert!(
        partial.result.blocks.len() < reference.result.blocks.len(),
        "a mid-campaign kill must leave blocks undone"
    );
    let plan = exec2.resume_plan(&base(), &dir).unwrap();
    assert!(plan.contains(&BlockMode::Skip), "{plan:?}");
    assert!(plan.iter().any(|m| *m != BlockMode::Skip), "{plan:?}");

    // Resume under 4 workers (≠ the 2 the campaign was killed under).
    let exec4 = ParallelCampaign::new(Campaign::new(TPB), 4);
    let resumed = exec4
        .run_checkpointed(&base(), &dir, true, None, make_world)
        .unwrap();
    assert!(!resumed.interrupted);
    assert_eq!(
        resumed.result, reference.result,
        "4-worker resume of a 2-worker kill diverged from the uninterrupted campaign"
    );
    assert_eq!(
        resumed.result.to_csv(),
        reference.result.to_csv(),
        "CSV must be byte-identical"
    );
    assert_eq!(
        resumed.snapshot.to_json(),
        reference.snapshot.to_json(),
        "merged telemetry must be byte-identical"
    );

    // And the directory now resumes as a no-op from any worker count.
    let again = ParallelCampaign::new(Campaign::new(TPB), 3)
        .run_checkpointed(&base(), &dir, true, None, make_world)
        .unwrap();
    assert_eq!(again.result, reference.result);
    assert_eq!(again.snapshot, reference.snapshot);
    let _ = std::fs::remove_dir_all(&dir);
}
