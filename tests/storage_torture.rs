//! Crash-consistency torture harness: sweep injected host-side fault
//! points (process kills, ENOSPC, torn writes) across the checkpointed
//! session and campaign executors. The invariant under test is the
//! strongest the storage layer claims: **every** surviving on-disk state
//! either resumes byte-identically to the uninterrupted run or is
//! cleanly refused (a typed error, never a silent divergence) — in which
//! case a fresh run over the same directory must still converge to the
//! baseline. Scripted worker panics ride the same harness through the
//! executor-fault plan.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use xmap::output::to_csv;
use xmap::telemetry::names;
use xmap::{
    run_session, Blocklist, IcmpEchoProbe, ParallelScanner, ScanConfig, ScanResults, SessionSpec,
};
use xmap_addr::ScanRange;
use xmap_failpoint::{FailPlan, FaultKind, FsAction, FsOp, FsRule};
use xmap_netsim::World;
use xmap_periphery::{Campaign, CampaignOutcome, ParallelCampaign};
use xmap_state::{AbortSignal, StateError};
use xmap_telemetry::{Snapshot, Telemetry};

/// Fresh per-test directory under the system temp dir.
fn torture_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("xmap-torture-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn ranges() -> Vec<ScanRange> {
    vec!["2405:200::/32-64".parse().unwrap()]
}

fn session_config() -> ScanConfig {
    ScanConfig {
        seed: 77,
        max_targets: Some(300),
        ..Default::default()
    }
}

/// One checkpointed session run. Returns the outcome *and* the sink
/// error so callers can distinguish "completed but durability degraded"
/// from a hard failure.
fn session_run(
    dir: &Path,
    resume: bool,
    workers: usize,
) -> Result<(ScanResults, Snapshot, Option<StateError>), StateError> {
    let signal = AbortSignal::new();
    let config = session_config();
    let ranges = ranges();
    let spec = SessionSpec {
        workers,
        config,
        ranges: &ranges,
        dir,
        every: 16,
        resume,
        world_seed: 5,
    };
    let outcome = run_session(
        &spec,
        &IcmpEchoProbe,
        &Blocklist::allow_all(),
        Some(&signal),
        |_, telemetry| {
            let mut w = World::new(5);
            w.set_telemetry(telemetry);
            w
        },
    )?;
    Ok((outcome.results, outcome.snapshot, outcome.sink_error))
}

/// After a fault run, drive the directory back to the baseline: try a
/// resume first; a clean refusal (typed error) downgrades to a fresh
/// run over the same directory. Anything else — a panic, a silently
/// divergent result — fails the sweep.
fn session_recover(dir: &Path, workers: usize) -> (ScanResults, Snapshot) {
    match session_run(dir, true, workers) {
        Ok((results, snap, sink_error)) => {
            assert!(
                sink_error.is_none(),
                "recovery run (no faults armed) must be fully durable: {sink_error:?}"
            );
            (results, snap)
        }
        Err(refusal) => {
            // Cleanly refused: the state was unusable and said so. A
            // fresh session over the same directory must still work.
            let (results, snap, sink_error) = session_run(dir, false, workers)
                .unwrap_or_else(|e| panic!("fresh run after refusal `{refusal}` failed: {e}"));
            assert!(sink_error.is_none(), "{sink_error:?}");
            (results, snap)
        }
    }
}

/// Kill the host at every sampled filesystem operation of a checkpointed
/// session; whatever survives on disk must resume (or be refused and
/// re-run) byte-identically to the uninterrupted baseline.
#[test]
fn session_kill_sweep_every_surviving_state_recovers() {
    // Baseline with an observation scope: fault-free, but counts the
    // failpoint-routed operations so the sweep knows its domain.
    let base_dir = torture_dir("sess-base");
    let scope = FailPlan::observe(&base_dir).arm();
    let (base, base_snap, sink_error) = session_run(&base_dir, false, 1).unwrap();
    assert!(sink_error.is_none(), "{sink_error:?}");
    let total_ops = scope.ops();
    drop(scope);
    assert!(!base.interrupted);
    assert!(
        total_ops >= 40,
        "expected a rich op stream to torture, got {total_ops}"
    );
    eprintln!("# session torture sweep: {total_ops} fs ops in the fault-free stream");
    std::fs::remove_dir_all(&base_dir).unwrap();
    let base_csv = to_csv(&base.records);

    // Sample ~10 kill points across the stream, at two torn-write keep
    // offsets each. Op 0 (the journal create) and the final op are
    // always included.
    let stride = (total_ops / 8).max(1);
    let mut kills: Vec<u64> = (0..total_ops).step_by(stride as usize).collect();
    kills.push(total_ops - 1);
    for kill in kills {
        for keep in [0u64, 5] {
            let dir = torture_dir("sess-kill");
            let scope = FailPlan::kill_at(&dir, kill, keep).arm();
            let outcome = session_run(&dir, false, 1);
            assert!(scope.killed(), "kill point {kill} never fired");
            drop(scope);
            // The run either completed in degraded in-memory mode (the
            // sink caught the dead disk and kept scanning) or reported
            // a typed error; a completed run must already match the
            // baseline records exactly.
            match outcome {
                Ok((results, _, sink_error)) => {
                    assert!(
                        sink_error.is_some(),
                        "kill at op {kill} latched every op, the sink cannot have recovered"
                    );
                    assert_eq!(
                        to_csv(&results.records),
                        base_csv,
                        "degraded completion diverged: kill {kill} keep {keep}"
                    );
                }
                Err(StateError::Io { .. }) | Err(StateError::Corrupt(_)) => {}
                Err(other) => panic!("kill {kill} keep {keep}: unexpected refusal {other}"),
            }
            // Faults disarmed: the surviving bytes must recover.
            let (recovered, snap) = session_recover(&dir, 1);
            assert!(!recovered.interrupted);
            assert_eq!(
                to_csv(&recovered.records),
                base_csv,
                "records diverged after kill {kill} keep {keep}"
            );
            assert_eq!(
                recovered.stats, base.stats,
                "stats diverged after kill {kill} keep {keep}"
            );
            assert_eq!(
                snap, base_snap,
                "snapshot diverged after kill {kill} keep {keep}"
            );
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }
}

/// The same sweep under two workers: op interleaving is nondeterministic
/// there, so each sampled point tortures a different (but always valid)
/// on-disk state. A coarser sample keeps the test quick.
#[test]
fn session_kill_sweep_recovers_under_two_workers() {
    let base_dir = torture_dir("sess2-base");
    let scope = FailPlan::observe(&base_dir).arm();
    let (base, base_snap, _) = session_run(&base_dir, false, 2).unwrap();
    let total_ops = scope.ops();
    drop(scope);
    eprintln!("# 2-worker session torture sweep: {total_ops} fs ops in the fault-free stream");
    std::fs::remove_dir_all(&base_dir).unwrap();
    let base_csv = to_csv(&base.records);

    for kill in [1, total_ops / 3, total_ops / 2, total_ops - 2] {
        let dir = torture_dir("sess2-kill");
        let scope = FailPlan::kill_at(&dir, kill, 3).arm();
        let _ = session_run(&dir, false, 2);
        drop(scope);
        let (recovered, snap) = session_recover(&dir, 2);
        assert_eq!(to_csv(&recovered.records), base_csv, "kill {kill}");
        assert_eq!(snap, base_snap, "kill {kill}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

/// A one-shot ENOSPC on a checkpoint publish degrades the sink to
/// in-memory mode without corrupting the previously published
/// checkpoint; the sink recovers at a later boundary and the session
/// ends fully durable. A persistent ENOSPC keeps it degraded to the
/// end — and the last *successfully* published state still resumes
/// byte-identically.
#[test]
fn enospc_on_checkpoint_publish_degrades_without_corruption() {
    let base_dir = torture_dir("enospc-base");
    let (base, base_snap, _) = session_run(&base_dir, false, 1).unwrap();
    let base_csv = to_csv(&base.records);
    std::fs::remove_dir_all(&base_dir).unwrap();

    // One-shot: the second checkpoint publish (`.tmp` create) fails.
    let dir = torture_dir("enospc-once");
    let scope = FailPlan {
        prefix: dir.clone(),
        rules: vec![FsRule {
            op: FsOp::Create,
            suffix: Some(".tmp".into()),
            nth: 1,
            action: FsAction::Fail(FaultKind::Enospc),
        }],
        schedules: Vec::new(),
    }
    .arm();
    let (results, _, sink_error) = session_run(&dir, false, 1).unwrap();
    assert_eq!(scope.fired(), 1, "the ENOSPC rule must actually fire");
    drop(scope);
    assert_eq!(to_csv(&results.records), base_csv, "one-shot ENOSPC");
    assert!(
        sink_error.is_none(),
        "a transient ENOSPC must be recovered from, not carried to session end: {sink_error:?}"
    );
    // The directory is a complete, healthy session: replay-only resume.
    let (replayed, _, _) = session_run(&dir, true, 1).unwrap();
    assert_eq!(to_csv(&replayed.records), base_csv);
    std::fs::remove_dir_all(&dir).unwrap();

    // Persistent: every publish after the first fails. The first
    // published checkpoint must survive untouched and still resume.
    // (A fired rule short-circuits rule evaluation for that op, so the
    // *next* rule in line has seen one fewer matching op — `nth: 1` on
    // every rule means each one fails the next create it witnesses.)
    let dir = torture_dir("enospc-dead");
    let rules = (0..200)
        .map(|_| FsRule {
            op: FsOp::Create,
            suffix: Some(".tmp".into()),
            nth: 1,
            action: FsAction::Fail(FaultKind::Enospc),
        })
        .collect();
    let scope = FailPlan {
        prefix: dir.clone(),
        rules,
        schedules: Vec::new(),
    }
    .arm();
    let (results, _, sink_error) = session_run(&dir, false, 1).unwrap();
    assert!(scope.fired() >= 1);
    drop(scope);
    assert_eq!(
        to_csv(&results.records),
        base_csv,
        "degraded-to-the-end completion diverged"
    );
    assert!(
        sink_error.is_some(),
        "a disk that stays full must be surfaced at session end"
    );
    let (recovered, snap) = session_recover(&dir, 1);
    assert_eq!(to_csv(&recovered.records), base_csv, "persistent ENOSPC");
    assert_eq!(snap, base_snap, "persistent ENOSPC snapshot diverged");
    std::fs::remove_dir_all(&dir).unwrap();
}

const CAMPAIGN_TPB: u64 = 1 << 10;

fn campaign_base() -> ScanConfig {
    ScanConfig {
        seed: 9,
        ..Default::default()
    }
}

fn campaign_world(_w: usize, telemetry: &Telemetry) -> World {
    let mut world = World::new(41);
    world.set_telemetry(telemetry);
    world
}

fn campaign_run(dir: &Path, resume: bool, workers: usize) -> Result<CampaignOutcome, StateError> {
    ParallelCampaign::new(Campaign::new(CAMPAIGN_TPB), workers).run_checkpointed(
        &campaign_base(),
        dir,
        resume,
        None,
        campaign_world,
    )
}

/// Kill the host at sampled filesystem operations of a checkpointed
/// campaign (block checkpoints, markers, the directory manifest, group
/// commits); the surviving directory must resume — or be refused and
/// re-run fresh — to the exact uninterrupted result.
#[test]
fn campaign_kill_sweep_every_surviving_state_recovers() {
    let base_dir = torture_dir("camp-base");
    let scope = FailPlan::observe(&base_dir).arm();
    let baseline = campaign_run(&base_dir, false, 1).unwrap();
    let total_ops = scope.ops();
    drop(scope);
    assert!(baseline.poisoned.is_empty());
    assert!(
        total_ops >= 30,
        "campaign op stream too thin to torture: {total_ops}"
    );
    eprintln!("# campaign torture sweep: {total_ops} fs ops in the fault-free stream");
    std::fs::remove_dir_all(&base_dir).unwrap();
    let base_csv = baseline.result.to_csv();

    let stride = (total_ops / 8).max(1);
    let mut kills: Vec<u64> = (0..total_ops).step_by(stride as usize).collect();
    kills.push(total_ops - 1);
    for kill in kills {
        let dir = torture_dir("camp-kill");
        let scope = FailPlan::kill_at(&dir, kill, 4).arm();
        // With the disk dead mid-run this either errors out or (when
        // the kill lands on the very last op) completes; both leave a
        // valid torture state behind.
        let _ = campaign_run(&dir, false, 1);
        assert!(scope.killed(), "kill point {kill} never fired");
        drop(scope);
        let recovered = match campaign_run(&dir, true, 1) {
            Ok(outcome) => outcome,
            Err(refusal) => campaign_run(&dir, false, 1)
                .unwrap_or_else(|e| panic!("fresh campaign after refusal `{refusal}` failed: {e}")),
        };
        assert!(recovered.poisoned.is_empty(), "kill {kill}");
        assert_eq!(
            recovered.result, baseline.result,
            "campaign result diverged after kill {kill}"
        );
        assert_eq!(
            recovered.result.to_csv(),
            base_csv,
            "campaign CSV diverged after kill {kill}"
        );
        assert_eq!(
            recovered.snapshot, baseline.snapshot,
            "campaign snapshot diverged after kill {kill}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

/// Scripted executor faults at integration level: a worker that panics
/// mid-shard is supervised — its shard re-runs and the merged output is
/// byte-identical to the fault-free run, with the fault surfaced in the
/// `exec.*` counters rather than a crash.
#[test]
fn scripted_worker_panic_is_supervised_end_to_end() {
    let ranges = ranges();
    let config = session_config();
    let module = IcmpEchoProbe;
    let blocklist = Blocklist::allow_all();

    let mut clean = ParallelScanner::new(2, config.clone(), |_, telemetry: &Telemetry| {
        let mut w = World::new(5);
        w.set_telemetry(telemetry);
        w
    });
    let expected = clean.run_all(&ranges, &module, &blocklist);
    let expected_snap = clean.snapshot();

    let mut faulty = ParallelScanner::new(2, config, |_, telemetry: &Telemetry| {
        let mut w = World::new(5);
        w.set_telemetry(telemetry);
        w
    });
    faulty.set_exec_faults(xmap_failpoint::ExecPlan::panic_on(1, 0).armed());
    let results = faulty.run_all(&ranges, &module, &blocklist);
    assert_eq!(to_csv(&results.records), to_csv(&expected.records));
    assert_eq!(results.stats, expected.stats);
    assert!(faulty.poisoned_shards().is_empty());

    // The snapshot equals the clean one *plus* the executor-fault
    // counters — stripping them must give byte equality.
    let mut snap = faulty.snapshot();
    assert_eq!(snap.counters.get(names::EXEC_WORKER_PANICS), Some(&1));
    assert!(snap.counters.contains_key(names::EXEC_REQUEUED));
    for key in [
        names::EXEC_WORKER_PANICS,
        names::EXEC_REQUEUED,
        names::EXEC_POISONED,
    ] {
        snap.counters.remove(key);
    }
    assert_eq!(snap, expected_snap);
}

/// Campaign-level scripted panic with checkpointing: the panicked
/// block's in-progress marker and requeue leave no trace in the final
/// result, and nothing in the checkpoint directory is corrupted.
#[test]
fn scripted_campaign_panic_leaves_directory_resumable() {
    let clean =
        ParallelCampaign::new(Campaign::new(CAMPAIGN_TPB), 2).run(&campaign_base(), campaign_world);

    let dir = torture_dir("camp-panic");
    let outcome = ParallelCampaign::new(Campaign::new(CAMPAIGN_TPB), 2)
        .with_exec_faults(xmap_failpoint::ExecPlan::panic_on(0, 1))
        .run_checkpointed(&campaign_base(), &dir, false, None, campaign_world)
        .unwrap();
    assert!(outcome.poisoned.is_empty());
    assert_eq!(outcome.result, clean.result);
    assert_eq!(
        outcome.snapshot.counters.get(names::EXEC_WORKER_PANICS),
        Some(&1)
    );

    // Every block checkpoint the run published must be loadable: a
    // resume replays the whole campaign from disk without scanning.
    let replay = campaign_run(&dir, true, 1).unwrap();
    assert_eq!(replay.result, clean.result);
    std::fs::remove_dir_all(&dir).unwrap();
}
