//! End-to-end checkpoint/resume tests: a scan killed at an arbitrary
//! point and resumed from its checkpoint directory must produce output
//! byte-identical to the same scan run uninterrupted — records, stats,
//! and the full telemetry snapshot — across worker counts, kill points
//! (including mid-retry-backoff and mid-mop-up), and repeated resumes.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use xmap::output::to_csv;
use xmap::{run_session, Blocklist, IcmpEchoProbe, ScanConfig, ScanResults, Scanner, SessionSpec};
use xmap_addr::ScanRange;
use xmap_netsim::fault::IcmpRateLimit;
use xmap_netsim::world::{World, WorldConfig};
use xmap_netsim::{FaultPlan, KillPoint};
use xmap_periphery::Campaign;
use xmap_state::AbortSignal;
use xmap_telemetry::Snapshot;

/// Fresh per-test checkpoint directory (removed by the tests that pass).
fn session_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("xmap-ckpt-{tag}-{}-{n}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Runs one checkpointed session; `kill_after` arms a per-worker-world
/// kill point that fires after that many handled probes.
#[allow(clippy::too_many_arguments)]
fn run_one(
    workers: usize,
    dir: &Path,
    resume: bool,
    kill_after: Option<u64>,
    config: &ScanConfig,
    ranges: &[ScanRange],
    every: u64,
    world: impl Fn() -> World + 'static,
) -> (ScanResults, Snapshot) {
    let signal = AbortSignal::new();
    let kill_signal = signal.clone();
    let spec = SessionSpec {
        workers,
        config: config.clone(),
        ranges,
        dir,
        every,
        resume,
        world_seed: 5,
    };
    let outcome = run_session(
        &spec,
        &IcmpEchoProbe,
        &Blocklist::allow_all(),
        Some(&signal),
        move |_, telemetry| {
            let mut w = world();
            w.set_telemetry(telemetry);
            if let Some(n) = kill_after {
                w.arm_kill(
                    KillPoint {
                        after_probes: Some(n),
                        ..Default::default()
                    },
                    kill_signal.clone(),
                );
            }
            w
        },
    )
    .expect("checkpointed session");
    assert!(
        outcome.sink_error.is_none(),
        "checkpoint I/O failed: {:?}",
        outcome.sink_error
    );
    (outcome.results, outcome.snapshot)
}

fn copy_dir(src: &Path, dst: &Path) {
    fs::create_dir_all(dst).unwrap();
    for entry in fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        fs::copy(entry.path(), dst.join(entry.file_name())).unwrap();
    }
}

fn two_ranges() -> Vec<ScanRange> {
    vec![
        "2405:200::/32-64".parse().unwrap(),
        "2402:3a80::/36-64".parse().unwrap(),
    ]
}

/// Kill at several probe indices for 1, 2 and 4 workers; the resumed
/// session must reproduce the uninterrupted run byte-for-byte (CSV and
/// telemetry snapshot), exercising fresh, mid-range and skip-range
/// resume paths across two ranges.
#[test]
fn kill_and_resume_byte_identical_across_worker_counts() {
    let ranges = two_ranges();
    let config = ScanConfig {
        seed: 21,
        max_targets: Some(600),
        ..Default::default()
    };
    for workers in [1usize, 2, 4] {
        let base_dir = session_dir("base");
        let (base, base_snap) = run_one(
            workers,
            &base_dir,
            false,
            None,
            &config,
            &ranges,
            64,
            || World::new(5),
        );
        assert!(!base.interrupted);
        assert!(base.stats.sent >= 1200, "sent {}", base.stats.sent);
        fs::remove_dir_all(&base_dir).unwrap();

        // Kill points are per-worker world probe counts; with 4 workers
        // each worker sends ~300 probes, so all of these fire.
        for kill in [1u64, 37, 113, 251] {
            let dir = session_dir("kill");
            let (partial, _) = run_one(
                workers,
                &dir,
                false,
                Some(kill),
                &config,
                &ranges,
                64,
                || World::new(5),
            );
            assert!(
                partial.interrupted,
                "kill after {kill} probes ({workers} workers) must interrupt"
            );
            let (resumed, snap) = run_one(workers, &dir, true, None, &config, &ranges, 64, || {
                World::new(5)
            });
            assert!(!resumed.interrupted);
            assert_eq!(
                to_csv(&resumed.records),
                to_csv(&base.records),
                "records diverged: workers {workers} kill {kill}"
            );
            assert_eq!(
                resumed.stats, base.stats,
                "stats diverged: workers {workers} kill {kill}"
            );
            assert_eq!(
                snap, base_snap,
                "snapshot diverged: workers {workers} kill {kill}"
            );
            fs::remove_dir_all(&dir).unwrap();
        }
    }
}

/// A fresh checkpointed session produces exactly the same output as the
/// plain (non-checkpointed) parallel executor — journalling is invisible
/// to the scan.
#[test]
fn checkpointing_does_not_change_results() {
    let ranges = two_ranges();
    let config = ScanConfig {
        seed: 9,
        max_targets: Some(500),
        ..Default::default()
    };
    let dir = session_dir("overhead");
    let (session, snap) = run_one(2, &dir, false, None, &config, &ranges, 32, || World::new(5));
    let mut plain = xmap::ParallelScanner::new(2, config, |_, telemetry| {
        let mut w = World::new(5);
        w.set_telemetry(telemetry);
        w
    });
    let expected = plain.run_all(&ranges, &IcmpEchoProbe, &Blocklist::allow_all());
    assert_eq!(to_csv(&session.records), to_csv(&expected.records));
    assert_eq!(session.stats, expected.stats);
    assert_eq!(snap, plain.snapshot());
    fs::remove_dir_all(&dir).unwrap();
}

/// Kill while retries are pending in the backoff heap (lossy forward
/// path, 3 probes per target, short RTO, tight checkpoint cadence); the
/// resumed run must still be byte-identical.
#[test]
fn kill_mid_retry_backoff_resumes_identically() {
    let ranges: Vec<ScanRange> = vec!["2405:200::/32-64".parse().unwrap()];
    let config = ScanConfig {
        seed: 17,
        max_targets: Some(400),
        probes_per_target: 3,
        rto_ticks: 4,
        record_silent: true,
        ..Default::default()
    };
    let world = || {
        World::with_config(
            WorldConfig::lossless(4242, 30)
                .with_fault(FaultPlan::none().seeded(0xF00D).with_forward_loss(0.3)),
        )
    };
    for workers in [1usize, 2] {
        let base_dir = session_dir("rbase");
        let (base, base_snap) =
            run_one(workers, &base_dir, false, None, &config, &ranges, 16, world);
        assert!(
            base.stats.retransmits > 0,
            "loss must force retries for this test to bite"
        );
        fs::remove_dir_all(&base_dir).unwrap();
        // Retries begin interleaving with fresh sends almost immediately
        // under 30% loss; these kill points land with a nonempty heap.
        for kill in [50u64, 133, 390] {
            let dir = session_dir("retry");
            let (partial, _) = run_one(
                workers,
                &dir,
                false,
                Some(kill),
                &config,
                &ranges,
                16,
                world,
            );
            assert!(partial.interrupted, "kill {kill} workers {workers}");
            let (resumed, snap) = run_one(workers, &dir, true, None, &config, &ranges, 16, world);
            assert!(!resumed.interrupted);
            assert_eq!(
                to_csv(&resumed.records),
                to_csv(&base.records),
                "workers {workers} kill {kill}"
            );
            assert_eq!(snap, base_snap, "workers {workers} kill {kill}");
            fs::remove_dir_all(&dir).unwrap();
        }
    }
}

/// Resuming an already-completed session sends nothing and returns the
/// identical output again; resuming from a byte-copy of the checkpoint
/// directory is equivalent to resuming from the original.
#[test]
fn double_resume_is_idempotent() {
    let ranges = two_ranges();
    let config = ScanConfig {
        seed: 33,
        max_targets: Some(400),
        ..Default::default()
    };
    let base_dir = session_dir("dbase");
    let (base, base_snap) = run_one(1, &base_dir, false, None, &config, &ranges, 64, || {
        World::new(5)
    });
    fs::remove_dir_all(&base_dir).unwrap();

    let dir = session_dir("dkill");
    let (partial, _) = run_one(1, &dir, false, Some(170), &config, &ranges, 64, || {
        World::new(5)
    });
    assert!(partial.interrupted);
    // Snapshot the interrupted state before the first resume consumes it.
    let copy = session_dir("dcopy");
    copy_dir(&dir, &copy);

    let (first, first_snap) = run_one(1, &dir, true, None, &config, &ranges, 64, || World::new(5));
    assert_eq!(to_csv(&first.records), to_csv(&base.records));
    assert_eq!(first_snap, base_snap);

    // Second resume of the completed session: everything replays from the
    // journal, no probes are sent, output identical.
    let (second, second_snap) =
        run_one(1, &dir, true, None, &config, &ranges, 64, || World::new(5));
    assert_eq!(to_csv(&second.records), to_csv(&first.records));
    assert_eq!(second_snap, first_snap);

    // Resuming from the byte-copied interrupted directory also converges
    // to the same final output.
    let (copied, copied_snap) =
        run_one(1, &copy, true, None, &config, &ranges, 64, || World::new(5));
    assert_eq!(to_csv(&copied.records), to_csv(&base.records));
    assert_eq!(copied_snap, base_snap);

    fs::remove_dir_all(&dir).unwrap();
    fs::remove_dir_all(&copy).unwrap();
}

/// Kill the periphery campaign in the middle of a mop-up pass (ICMPv6
/// token buckets make targets silent in the main pass; mop-up probes
/// start right after the 4096 main-pass probes of block 0). The resumed
/// campaign must equal the uninterrupted one exactly.
#[test]
fn campaign_killed_mid_mop_up_resumes_identically() {
    let world = || {
        World::with_config(
            WorldConfig::lossless(99, 50).with_fault(FaultPlan::none().seeded(7).with_icmp_limit(
                IcmpRateLimit::TokenBucket {
                    capacity: 2,
                    refill_interval: 64,
                    start_depleted_frac: 0.5,
                },
            )),
        )
    };
    let config = ScanConfig {
        seed: 5,
        max_targets: Some(1 << 12),
        ..Default::default()
    };
    let campaign = Campaign::new(1 << 12).with_mop_up(512);
    let path = session_dir("campaign").with_extension("ckpt");

    let mut base_scanner = Scanner::new(world(), config.clone());
    let baseline = campaign.run(&mut base_scanner);
    assert!(
        baseline.blocks[0].mop_up_recovered > 0,
        "rate limiting must leave block 0 something to mop up"
    );

    // Block 0's main pass sends exactly 4096 probes (allow-all blocklist),
    // so probe 4101 is the fifth mop-up probe.
    let signal = AbortSignal::new();
    let mut killed_world = world();
    killed_world.arm_kill(
        KillPoint {
            after_probes: Some(4101),
            ..Default::default()
        },
        signal.clone(),
    );
    let mut killed = Scanner::new(killed_world, config.clone());
    killed.set_abort(signal);
    let (partial, interrupted) = campaign
        .run_checkpointed(&mut killed, &path, false)
        .unwrap();
    assert!(interrupted);
    assert!(
        partial.blocks.is_empty(),
        "the mid-mop-up block must be discarded, not half-kept"
    );

    let mut resumed = Scanner::new(world(), config);
    let (full, interrupted) = campaign
        .run_checkpointed(&mut resumed, &path, true)
        .unwrap();
    assert!(!interrupted);
    assert_eq!(full, baseline, "resumed campaign diverged from baseline");
    fs::remove_file(&path).unwrap();
}
