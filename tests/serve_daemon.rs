//! End-to-end crash-resume acceptance for the `xmap-serve` daemon: two
//! concurrent tenant jobs, a host-fault kill sweep across the run's
//! filesystem-operation stream, and byte-identical artifacts after every
//! resume.
//!
//! The contract under test is the daemon's core invariant: once a submit
//! is acknowledged (its ledger append flushed), the job survives any
//! later crash — a restarted daemon replays the ledger, re-admits every
//! unfinished unit, and publishes final artifacts identical to an
//! uninterrupted run's, regardless of where the crash landed or how many
//! workers the restarted daemon uses.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use xmap_failpoint::{FailPlan, FsOp, FsSchedule};
use xmap_serve::daemon::job_dir;
use xmap_serve::{Daemon, JobSpec, ServeConfig};

fn tdir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("xmap-serve-e2e-{}-{tag}-{n}", std::process::id()))
}

fn cfg(workers: usize) -> ServeConfig {
    ServeConfig {
        workers,
        ..ServeConfig::default()
    }
}

/// Tenant alice: a small periphery campaign over all fifteen blocks.
fn alice_spec() -> JobSpec {
    JobSpec::PeripheryCampaign {
        targets_per_block: 256,
        seed: 7,
        world_seed: 11,
        mop_up_ticks: None,
        block_targets: Vec::new(),
    }
}

/// Tenant bob: a loopscan depth survey, concurrently with alice's job.
fn bob_spec() -> JobSpec {
    JobSpec::LoopscanSurvey {
        probes_per_block: 64,
        seed: 3,
        world_seed: 5,
    }
}

/// Submits both tenant jobs and drains the daemon to completion,
/// returning the two job ids.
fn submit_both(daemon: &Daemon) -> (u64, u64) {
    let a = daemon.submit("alice", alice_spec()).expect("submit alice");
    let b = daemon.submit("bob", bob_spec()).expect("submit bob");
    (a, b)
}

/// A job's published `(result.csv, metrics.json)` bytes.
type Artifacts = (Vec<u8>, Vec<u8>);

/// The published artifacts of one job, read back as raw bytes.
fn artifacts(root: &Path, job: u64) -> Artifacts {
    let dir = job_dir(root, job);
    let csv = std::fs::read(dir.join("result.csv"))
        .unwrap_or_else(|e| panic!("job {job}: result.csv unreadable: {e}"));
    let metrics = std::fs::read(dir.join("metrics.json"))
        .unwrap_or_else(|e| panic!("job {job}: metrics.json unreadable: {e}"));
    (csv, metrics)
}

/// Fault-free baseline: both jobs complete; artifacts are the reference
/// bytes for the whole sweep.
fn baseline() -> (Artifacts, Artifacts, u64) {
    let root = tdir("base");
    let daemon = Daemon::open(&root, cfg(2)).expect("open baseline");
    let (a, b) = submit_both(&daemon);
    daemon.drain();
    // Count the failpoint-routed fs operations of the execution phase so
    // the kill sweep knows its domain (submits run unfaulted there too).
    let scope = FailPlan::observe(&root).arm();
    daemon.run().expect("baseline run");
    let ops = scope.ops();
    drop(scope);
    let art_a = artifacts(&root, a);
    let art_b = artifacts(&root, b);
    let _ = std::fs::remove_dir_all(&root);
    (art_a, art_b, ops)
}

/// The acceptance sweep: kill the host mid-run at sampled points of the
/// fs-op stream, restart, and require both tenants' jobs to resume and
/// finish byte-identically to the uninterrupted baseline. The restarted
/// daemon alternates worker counts to prove resume is worker-agnostic.
#[test]
fn kill_sweep_resumes_both_tenant_jobs_byte_identically() {
    let (base_a, base_b, total_ops) = baseline();
    assert!(
        total_ops >= 12,
        "expected a rich op stream to torture, got {total_ops}"
    );
    eprintln!("# serve kill sweep: {total_ops} fs ops in the fault-free run");

    // Five kill points spanning the stream (the acceptance floor is
    // three), each with a torn-write keep offset of 0 or 3.
    let kills = [
        1,
        total_ops / 4,
        total_ops / 2,
        3 * total_ops / 4,
        total_ops - 2,
    ];
    for (i, &kill) in kills.iter().enumerate() {
        let keep = if i % 2 == 0 { 0 } else { 3 };
        let root = tdir("kill");

        // Submit both jobs unfaulted — the contract starts at the
        // acknowledged submit — then arm the kill and run.
        let daemon = Daemon::open(&root, cfg(2)).expect("open");
        let (a, b) = submit_both(&daemon);
        daemon.drain();
        let scope = FailPlan::kill_at(&root, kill, keep).arm();
        let outcome = daemon.run();
        assert!(scope.killed(), "kill point {kill} never fired");
        drop(scope);
        let err = outcome.expect_err("a latched disk must stop the run");
        eprintln!("# kill at op {kill} (keep {keep}): daemon stopped with `{err}`");
        drop(daemon);

        // Faults disarmed: a restarted daemon must resume everything
        // in flight. Worker count alternates between 1 and 3 to show
        // the resume (like dispatch) is deterministic in the job set,
        // not the execution interleaving.
        let workers = if i % 2 == 0 { 1 } else { 3 };
        let daemon = Daemon::open(&root, cfg(workers)).expect("reopen after kill");
        let (resumed_jobs, _pending) = daemon.resumed();
        eprintln!("# kill at op {kill}: restart resumed {resumed_jobs} jobs");
        daemon.drain();
        daemon.run().expect("resumed run");
        assert_eq!(
            artifacts(&root, a),
            base_a,
            "alice's artifacts diverged after kill at op {kill} keep {keep}"
        );
        assert_eq!(
            artifacts(&root, b),
            base_b,
            "bob's artifacts diverged after kill at op {kill} keep {keep}"
        );
        let _ = std::fs::remove_dir_all(&root);
    }
}

/// A double crash: kill the resumed run too, then resume again. Progress
/// must be monotone (at least as many units done after each restart) and
/// the final artifacts still byte-identical.
#[test]
fn double_kill_still_converges() {
    let (base_a, base_b, total_ops) = baseline();
    let root = tdir("double");
    let daemon = Daemon::open(&root, cfg(2)).expect("open");
    let (a, b) = submit_both(&daemon);
    daemon.drain();
    let scope = FailPlan::kill_at(&root, total_ops / 3, 0).arm();
    daemon.run().expect_err("first kill");
    assert!(scope.killed());
    drop(scope);
    drop(daemon);

    let daemon = Daemon::open(&root, cfg(2)).expect("first reopen");
    daemon.drain();
    let scope = FailPlan::kill_at(&root, total_ops / 4, 2).arm();
    let outcome = daemon.run();
    // The second kill point may land beyond the (shorter) resumed run's
    // op stream; only a fired kill implies an error.
    if scope.killed() {
        outcome.expect_err("second kill fired, run must stop");
    } else {
        outcome.expect("second run outlived the kill point");
    }
    drop(scope);
    drop(daemon);

    let daemon = Daemon::open(&root, cfg(1)).expect("second reopen");
    daemon.drain();
    daemon.run().expect("final resume");
    assert_eq!(
        artifacts(&root, a),
        base_a,
        "alice diverged after double kill"
    );
    assert_eq!(
        artifacts(&root, b),
        base_b,
        "bob diverged after double kill"
    );
    let _ = std::fs::remove_dir_all(&root);
}

/// The long-running degraded-host scenario: instead of a single scripted
/// kill, the daemon lives through a *sick disk* — periodic `EIO` bursts
/// over the whole execution window followed by a disk-full (`ENOSPC`)
/// stretch, scheduled over the filesystem-operation stream. Every burst
/// stops the run with a fatal storage error; the operator loop reopens
/// and resumes, bounded in attempts, until the storm window passes. The
/// daemon must ride it out: progress monotone across restarts, and the
/// final artifacts byte-identical to the fault-free baseline.
#[test]
fn scheduled_fault_storm_converges_to_identical_artifacts() {
    let (base_a, base_b, total_ops) = baseline();
    let root = tdir("storm");
    let daemon = Daemon::open(&root, cfg(2)).expect("open");
    let (a, b) = submit_both(&daemon);
    daemon.drain();

    // EIO bursts of 2 every ~sixth of the baseline stream across twice
    // its length (restarts re-spend ops, so the window is generous),
    // then a solid ENOSPC outage for another quarter of it.
    let period = (total_ops / 6).max(4);
    let storm_end = 2 * total_ops;
    let scope = FailPlan::observe(&root)
        .with_schedule(FsSchedule::eio_bursts(
            FsOp::Any,
            3,
            Some(storm_end),
            period,
            2,
        ))
        .with_schedule(FsSchedule::disk_full_window(
            FsOp::Any,
            storm_end,
            storm_end + total_ops / 4,
        ))
        .arm();

    let mut daemon = Some(daemon);
    let mut attempts = 0u32;
    loop {
        attempts += 1;
        assert!(
            attempts <= 60,
            "storm never cleared after {attempts} attempts ({} ops, {} faults)",
            scope.ops(),
            scope.fired()
        );
        let d = match daemon.take() {
            Some(d) => d,
            // Reopen can itself hit a scheduled fault (ledger replay
            // writes under the armed prefix) — that is part of the
            // storm, so just try again. Worker counts rotate to show
            // resume is agnostic to execution interleaving.
            None => match Daemon::open(&root, cfg(1 + (attempts as usize % 3))) {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("# storm: reopen attempt {attempts} failed: {e}");
                    continue;
                }
            },
        };
        d.drain();
        match d.run() {
            Ok(_) => break,
            Err(e) => eprintln!("# storm: run attempt {attempts} stopped: {e}"),
        }
    }
    let (ops, fired) = (scope.ops(), scope.fired());
    drop(scope);
    eprintln!("# storm: converged after {attempts} attempts, {ops} ops, {fired} injected faults");
    assert!(
        fired >= 4,
        "the storm must actually bite (fired {fired} over {ops} ops)"
    );
    assert_eq!(
        artifacts(&root, a),
        base_a,
        "alice's artifacts diverged after the fault storm"
    );
    assert_eq!(
        artifacts(&root, b),
        base_b,
        "bob's artifacts diverged after the fault storm"
    );
    let _ = std::fs::remove_dir_all(&root);
}

/// An appscan job rides the same machinery: per-target units checkpoint
/// and resume like campaign blocks.
#[test]
fn appscan_job_resumes_after_kill() {
    let targets: Vec<xmap_addr::Ip6> = (1u16..=6)
        .map(|i| format!("2600:1700::{i:x}").parse().expect("addr"))
        .collect();
    let spec = JobSpec::AppscanGrab {
        targets,
        seed: 9,
        world_seed: 11,
    };

    let base_root = tdir("app-base");
    let daemon = Daemon::open(&base_root, cfg(1)).expect("open");
    let job = daemon.submit("carol", spec.clone()).expect("submit");
    daemon.drain();
    let scope = FailPlan::observe(&base_root).arm();
    daemon.run().expect("baseline");
    let ops = scope.ops();
    drop(scope);
    let base = artifacts(&base_root, job);
    let _ = std::fs::remove_dir_all(&base_root);

    let root = tdir("app-kill");
    let daemon = Daemon::open(&root, cfg(1)).expect("open");
    let job = daemon.submit("carol", spec).expect("submit");
    daemon.drain();
    let scope = FailPlan::kill_at(&root, ops / 2, 1).arm();
    daemon.run().expect_err("kill mid-run");
    assert!(scope.killed());
    drop(scope);
    drop(daemon);

    let daemon = Daemon::open(&root, cfg(2)).expect("reopen");
    daemon.drain();
    daemon.run().expect("resume");
    assert_eq!(artifacts(&root, job), base, "appscan artifacts diverged");
    let _ = std::fs::remove_dir_all(&root);
}
