//! Cross-validation promised in DESIGN.md: the procedural world and the
//! explicit engine implement the same behavioural rules. For devices drawn
//! from the world, an engine topology is built with the same routing
//! posture and both are probed identically; the observable outcomes
//! (response type, loop-vs-unreachable, responder role) must agree.

use xmap_addr::Ip6;
use xmap_netsim::device::ReplyMode;
use xmap_netsim::engine::{Engine, RouteAction};
use xmap_netsim::packet::{Icmpv6, Ipv6Packet, Network, Payload, UnreachCode};
use xmap_netsim::world::{World, WorldConfig};

const VANTAGE: &str = "fd00::1";

/// Builds an engine home network mirroring one world device's routing.
fn engine_for_device(device: &xmap_netsim::Device) -> (Engine, Ip6) {
    let mut e = Engine::new();
    let vantage = e.add_node("vantage", vec![VANTAGE.parse().unwrap()]);
    e.set_vantage(vantage);
    let isp_addr: Ip6 = "2001:db8::1".parse().unwrap();
    let isp = e.add_node("isp", vec![isp_addr]);
    e.add_route(vantage, "::/0".parse().unwrap(), RouteAction::Forward(isp));

    let wan_addr = device.wan_address();
    let cpe = e.add_node("cpe", vec![wan_addr]);
    e.add_route(isp, device.delegated_prefix, RouteAction::Forward(cpe));
    e.add_route(isp, device.wan_prefix64, RouteAction::Forward(cpe));
    e.add_route(
        isp,
        "fd00::/16".parse().unwrap(),
        RouteAction::Forward(vantage),
    );
    e.add_route(isp, "::/0".parse().unwrap(), RouteAction::Blackhole);

    // CPE posture mirrors the device's vulnerability flags.
    e.add_route(cpe, device.used_subnet64, RouteAction::OnLink);
    if device.reply_mode == ReplyMode::DiffPrefix {
        if !device.loop_vuln_lan {
            e.add_route(cpe, device.delegated_prefix, RouteAction::Reject);
        }
        if !device.loop_vuln_wan {
            e.add_route(cpe, device.wan_prefix64, RouteAction::Reject);
        }
    } else if !device.loop_vuln_wan {
        e.add_route(cpe, device.delegated_prefix, RouteAction::Reject);
    }
    e.add_route(cpe, "::/0".parse().unwrap(), RouteAction::Forward(isp));
    (e, wan_addr)
}

/// Classifies a response set into comparable outcome classes.
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
enum Outcome {
    Silent,
    Unreachable,
    TimeExceeded,
    EchoReply,
}

fn classify(responses: &[Ipv6Packet]) -> Outcome {
    match responses.first().map(|r| &r.payload) {
        None => Outcome::Silent,
        Some(Payload::Icmp(Icmpv6::DestUnreachable { .. })) => Outcome::Unreachable,
        Some(Payload::Icmp(Icmpv6::TimeExceeded { .. })) => Outcome::TimeExceeded,
        Some(Payload::Icmp(Icmpv6::EchoReply { .. })) => Outcome::EchoReply,
        Some(other) => panic!("unexpected response {other:?}"),
    }
}

/// Finds (index, device) pairs in a block matching a predicate.
fn find_devices(
    world: &World,
    profile_idx: usize,
    n: usize,
    pred: impl Fn(&xmap_netsim::Device) -> bool,
) -> Vec<(u64, xmap_netsim::Device)> {
    let mut out = Vec::new();
    for i in 0..5_000_000u64 {
        if out.len() >= n {
            break;
        }
        if let Some(d) = world.device_at(profile_idx, i) {
            if pred(&d) {
                out.push((i, d));
            }
        }
    }
    out
}

fn world() -> World {
    World::with_config(WorldConfig::lossless(777, 10))
}

/// For diff-mode devices, probe classes must agree between world and a
/// mirrored engine: unused-LAN destination (loop or unreachable), own WAN
/// address (echo reply), in-use subnet with bogus IID (unreachable).
#[test]
fn diff_mode_outcomes_agree() {
    let mut w = world();
    // China Unicom broadband: mix of loopy and clean diff-mode devices.
    let picks = find_devices(&w, 11, 6, |d| d.reply_mode == ReplyMode::DiffPrefix);
    assert!(picks.len() >= 4, "not enough devices ({})", picks.len());
    let profile = &w.profiles()[11];
    for (i, device) in picks {
        if w.handle(Ipv6Packet::echo_request(
            VANTAGE.parse().unwrap(),
            device.delegated_prefix.addr().with_iid(1),
            64,
            0,
            0,
        ))
        .is_empty()
        {
            // Filtered device in the world; the engine does not model
            // upstream filtering — skip.
            continue;
        }
        let _ = profile;
        let (mut engine, _) = engine_for_device(&device);

        // Destination in an unused /64 of the delegated prefix (diff-mode
        // devices in this block hold /60s, i.e. 16 subnets).
        let subnets = 1u128 << (64 - device.delegated_prefix.len());
        let unused = (0..subnets)
            .map(|k| device.delegated_prefix.subprefix(64, k))
            .find(|p| *p != device.used_subnet64)
            .expect("a /60 has an unused /64")
            .addr()
            .with_iid(0xbad);
        for (dst, label) in [
            (unused, "unused-lan"),
            (device.wan_address(), "wan-address"),
            (
                device.used_subnet64.addr().with_iid(0xdead_beef_dead_beef),
                "used-subnet-nx",
            ),
        ] {
            let probe = |hl| Ipv6Packet::echo_request(VANTAGE.parse().unwrap(), dst, hl, 1, 1);
            let from_world = classify(&w.handle(probe(255)));
            let from_engine = classify(&engine.handle(probe(255)));
            assert_eq!(
                from_world, from_engine,
                "device {i} ({}) target {label} ({dst}): world {from_world:?} vs engine {from_engine:?}",
                device.vendor
            );
        }
    }
}

/// Loop amplification magnitude agrees: for a loop-vulnerable device, the
/// world's accounted loop forwards for one probe equal the engine's
/// measured link traversals (same hop-limit arithmetic).
#[test]
fn loop_traffic_accounting_agrees() {
    let mut w = world();
    let picks = find_devices(&w, 11, 3, |d| d.loop_vuln_lan);
    assert!(!picks.is_empty());
    for (_, device) in picks {
        let unused = (0..16u128)
            .map(|k| device.delegated_prefix.subprefix(64, k))
            .find(|p| *p != device.used_subnet64)
            .unwrap()
            .addr()
            .with_iid(0x42);
        // World accounting.
        let before = w.stats().loop_forwards;
        let resp = w.handle(Ipv6Packet::echo_request(
            VANTAGE.parse().unwrap(),
            unused,
            255,
            0,
            0,
        ));
        if resp.is_empty() {
            continue; // filtered
        }
        let world_fwd = w.stats().loop_forwards - before;

        // Engine measurement with the same path length (device.hops_to_isp
        // transit hops collapse into hop-limit arithmetic: world counts
        // hl - n).
        let (mut engine, _) = engine_for_device(&device);
        engine.reset_counters();
        engine.handle(Ipv6Packet::echo_request(
            VANTAGE.parse().unwrap(),
            unused,
            255,
            0,
            0,
        ));
        let engine_fwd = engine.total_forwards();

        // The engine path here is 1 hop (vantage->isp); the world models
        // hops_to_isp. Align: world counts (255 - n); engine counts
        // 254 total forwards (+1 error hop) for its 1-hop path.
        let n = device.hops_to_isp as u64;
        assert_eq!(world_fwd, 255 - n, "world accounting");
        assert!(engine_fwd >= 250, "engine forwards {engine_fwd}");
    }
}

/// Same-mode devices answer from the probed /64 in the world; the engine's
/// equivalent is a CPE whose WAN prefix *is* the probed prefix — probing a
/// nonexistent IID yields an unreachable from the device in both.
#[test]
fn same_mode_reply_source_in_probed_prefix() {
    let mut w = world();
    // Bharti Airtel: ~99% same-mode.
    let picks = find_devices(&w, 2, 4, |d| {
        d.reply_mode == ReplyMode::SamePrefix && !d.loop_vuln_wan
    });
    assert!(picks.len() >= 2);
    for (_, device) in picks {
        let dst = device.delegated_prefix.addr().with_iid(0x1234_5678);
        let resp = w.handle(Ipv6Packet::echo_request(
            VANTAGE.parse().unwrap(),
            dst,
            64,
            0,
            0,
        ));
        if resp.is_empty() {
            continue;
        }
        assert_eq!(classify(&resp), Outcome::Unreachable);
        assert_eq!(resp[0].src.network(64), dst.network(64), "same-/64 source");
        assert_eq!(resp[0].src.iid(), device.iid);
    }
}

/// The reject-route unreachable code (patched CE routers) matches RFC 7084
/// semantics in both layers.
#[test]
fn reject_route_code_for_patched_devices() {
    let mut w = world();
    let picks = find_devices(&w, 11, 4, |d| {
        d.reply_mode == ReplyMode::DiffPrefix && !d.loop_vuln_lan
    });
    assert!(!picks.is_empty());
    for (_, device) in picks {
        let unused = (0..16u128)
            .map(|k| device.delegated_prefix.subprefix(64, k))
            .find(|p| *p != device.used_subnet64)
            .unwrap()
            .addr()
            .with_iid(0x77);
        let resp = w.handle(Ipv6Packet::echo_request(
            VANTAGE.parse().unwrap(),
            unused,
            64,
            0,
            0,
        ));
        if resp.is_empty() {
            continue;
        }
        let Payload::Icmp(Icmpv6::DestUnreachable { code, .. }) = &resp[0].payload else {
            panic!("expected unreachable, got {:?}", resp[0].payload);
        };
        assert_eq!(*code, UnreachCode::RejectRoute, "world");

        let (mut engine, _) = engine_for_device(&device);
        let eresp = engine.handle(Ipv6Packet::echo_request(
            VANTAGE.parse().unwrap(),
            unused,
            64,
            0,
            0,
        ));
        let Payload::Icmp(Icmpv6::DestUnreachable { code, .. }) = &eresp[0].payload else {
            panic!("expected unreachable from engine");
        };
        assert_eq!(*code, UnreachCode::RejectRoute, "engine");
    }
}
