//! Integration: survey → disclosure → mitigation, end to end.

use xmap::{ScanConfig, Scanner};
use xmap_loopscan::{patch_model, verify_mitigation, DepthSurvey, DisclosureCampaign, Severity};
use xmap_netsim::isp::SAMPLE_BLOCKS;
use xmap_netsim::packet::{Icmpv6, Ipv6Packet, Network, Payload, MAX_HOP_LIMIT};
use xmap_netsim::topology::{build_home_network, full_catalog, HomeNetworkPlan};
use xmap_netsim::world::{World, WorldConfig};

#[test]
fn survey_feeds_disclosure_which_names_real_vendors() {
    let world = World::with_config(WorldConfig::lossless(777, 10));
    let mut scanner = Scanner::new(
        world,
        ScanConfig {
            seed: 777,
            ..Default::default()
        },
    );
    let mut depth = xmap_loopscan::survey::DepthSurveyResult::default();
    let driver = DepthSurvey::new(1 << 16);
    for idx in [11usize, 12, 13] {
        driver.run_block(&mut scanner, &SAMPLE_BLOCKS[idx], &mut depth);
    }
    assert!(!depth.peripheries.is_empty());

    let campaign = DisclosureCampaign::from_depth_survey(&depth);
    // Every advisory vendor resolves in the OUI registry and every advisory
    // carries actionable text.
    for advisory in &campaign.vendors {
        assert!(
            xmap_addr::oui::ouis_of(advisory.vendor).next().is_some(),
            "advisory for unknown vendor {}",
            advisory.vendor
        );
        assert_eq!(advisory.severity, Severity::High);
        assert!(advisory.affected_devices > 0);
        let text = campaign
            .advisory_text(advisory.vendor)
            .expect("advisory renders");
        assert!(text.contains("RFC 7084"));
    }
    // Operators are the measurement ASes.
    for notice in &campaign.operators {
        assert!(
            [4134u32, 4837, 9808].contains(&notice.asn),
            "unexpected operator AS{}",
            notice.asn
        );
        assert!(notice.affected_devices > 0);
    }
    // The vendor totals equal the attributable loop devices.
    let attributed: usize = campaign.vendors.iter().map(|v| v.affected_devices).sum();
    assert!(attributed <= depth.peripheries.len());
}

#[test]
fn mitigated_catalog_passes_the_loop_scan() {
    // After applying the RFC 7084 patch to every catalog model, the attack
    // packet draws a reject-route unreachable and the loop scan finds
    // nothing.
    let plan = HomeNetworkPlan::default();
    for model in full_catalog() {
        let patched = patch_model(&model);
        let (mut engine, net) = build_home_network(&patched, &plan);
        engine.reset_counters();
        for target in [
            plan.nx_wan_address(),
            plan.not_used_lan_prefix().addr().with_iid(1),
        ] {
            let replies = engine.handle(Ipv6Packet::echo_request(
                plan.vantage_addr,
                target,
                MAX_HOP_LIMIT,
                0,
                0,
            ));
            assert!(
                replies
                    .iter()
                    .any(|r| matches!(r.payload, Payload::Icmp(Icmpv6::DestUnreachable { .. }))),
                "{} {}: no unreachable for {target}",
                model.brand,
                model.model
            );
        }
        let loop_fwd =
            engine.link_forwards(net.isp, net.cpe) + engine.link_forwards(net.cpe, net.isp);
        assert!(
            loop_fwd <= 4,
            "{} {}: residual loop {loop_fwd}",
            model.brand,
            model.model
        );
    }
}

#[test]
fn mitigation_report_consistency_with_case_studies() {
    // Every vulnerable named model's report shows a >100x traffic drop.
    for model in xmap_netsim::topology::NAMED_MODELS {
        let report = verify_mitigation(model);
        assert!(report.effective(), "{}: {report:?}", model.brand);
        assert!(
            report.loop_forwards_before >= 10 * report.loop_forwards_after.max(1),
            "{}: {report:?}",
            model.brand
        );
    }
}
