//! End-to-end pipeline test: discovery → service survey → loop survey on a
//! single shared world, with cross-crate invariants.

use xmap::{ScanConfig, Scanner};
use xmap_appscan::SurveyRunner;
use xmap_loopscan::DepthSurvey;
use xmap_netsim::isp::SAMPLE_BLOCKS;
use xmap_netsim::world::{World, WorldConfig};
use xmap_periphery::{Campaign, CampaignResult};

fn scanner() -> Scanner<World> {
    let world = World::with_config(WorldConfig::lossless(3141, 50));
    Scanner::new(
        world,
        ScanConfig {
            seed: 3141,
            ..Default::default()
        },
    )
}

#[test]
fn discovery_then_services_then_loops() {
    let mut s = scanner();

    // 1. Discovery over the two dense Chinese broadband blocks.
    let driver = Campaign::new(1 << 16);
    let mut campaign = CampaignResult::default();
    for idx in [11usize, 12] {
        campaign
            .blocks
            .push(driver.run_block(&mut s, &SAMPLE_BLOCKS[idx]));
    }
    let discovered = campaign.total_unique();
    assert!(discovered > 60, "only {discovered} discovered");

    // Every discovered address is unique and inside a known zone.
    let mut seen = std::collections::HashSet::new();
    for p in campaign.peripheries() {
        assert!(seen.insert(p.address), "duplicate discovery {}", p.address);
    }

    // 2. Service survey over the discovered set.
    let survey = SurveyRunner.run(&mut s, &campaign);
    assert_eq!(survey.probed(), discovered);
    // Every serviced address was previously discovered.
    let discovered_set: std::collections::HashSet<_> =
        campaign.peripheries().map(|p| p.address).collect();
    for obs in &survey.observations {
        assert!(
            discovered_set.contains(&obs.address),
            "service observation for undiscovered {}",
            obs.address
        );
    }
    // Devices with any service are a subset of all devices.
    assert!(survey.devices_with_any().len() <= discovered);
    // China Mobile (id 13) exposes more than Unicom (id 12) proportionally
    // (Table VII: 57.5% vs 24.6%).
    let frac = |id: u8| {
        survey.devices_with_any_in_block(id).len() as f64
            / survey.probed_per_block[&id].max(1) as f64
    };
    assert!(frac(13) > frac(12), "{} vs {}", frac(13), frac(12));

    // 3. Loop survey over the same blocks.
    let mut loops = xmap_loopscan::survey::DepthSurveyResult::default();
    let loop_driver = DepthSurvey::new(1 << 15);
    for idx in [11usize, 12] {
        loop_driver.run_block(&mut s, &SAMPLE_BLOCKS[idx], &mut loops);
    }
    // Unicom's loop rate (78.8%) dwarfs Telecom's (39.7%) — per probe.
    let unicom = loops.count_in_block(12) as f64;
    let telecom = loops.count_in_block(11) as f64;
    assert!(unicom > 0.0);
    // Telecom has ~1.7x Unicom's density but half its loop rate; with the
    // same probe budget Unicom should still lead or be close.
    assert!(unicom >= telecom * 0.4, "unicom {unicom} telecom {telecom}");

    // Loop responders answer echo after discovery (they are registered).
    let some_loop = loops.peripheries.first().expect("found loops");
    let replies = s.probe_addr(some_loop.address, &xmap::IcmpEchoProbe, 64);
    assert!(replies
        .iter()
        .any(|(_, r)| matches!(r, xmap::ProbeResult::Alive)));

    // World statistics are coherent.
    let stats = s.network_mut().stats();
    assert!(stats.probes > 0);
    assert!(stats.responses <= stats.probes * 2);
    assert!(stats.loop_events > 0);
    assert!(stats.amplification() > 0.0);
}

#[test]
fn determinism_across_identical_runs() {
    let run = || {
        let mut s = scanner();
        let campaign = Campaign::new(1 << 14).run_block(&mut s, &SAMPLE_BLOCKS[12]);
        campaign
            .peripheries
            .iter()
            .map(|p| (p.address, p.same64, p.iid_class))
            .collect::<Vec<_>>()
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "identical seeds must reproduce identical discoveries");
    assert!(!a.is_empty());
}

#[test]
fn different_seeds_find_different_populations() {
    let discover = |seed: u64| {
        let world = World::with_config(WorldConfig::lossless(seed, 10));
        let mut s = Scanner::new(
            world,
            ScanConfig {
                seed,
                ..Default::default()
            },
        );
        Campaign::new(1 << 14)
            .run_block(&mut s, &SAMPLE_BLOCKS[12])
            .peripheries
            .iter()
            .map(|p| p.address)
            .collect::<std::collections::HashSet<_>>()
    };
    let a = discover(1);
    let b = discover(2);
    assert!(!a.is_empty() && !b.is_empty());
    let overlap = a.intersection(&b).count();
    assert!(
        overlap * 10 < a.len().max(b.len()),
        "different worlds should rarely share addresses (overlap {overlap})"
    );
}

#[test]
fn scan_output_roundtrips_through_csv() {
    let mut s = scanner();
    let profile = &SAMPLE_BLOCKS[12];
    s.set_max_targets(Some(1 << 14));
    let results = s.run(
        &profile.scan_range(),
        &xmap::IcmpEchoProbe,
        &xmap::Blocklist::with_standard_reserved(),
    );
    assert!(!results.records.is_empty());
    let csv = xmap::output::to_csv(&results.records);
    let parsed = xmap::output::from_csv(&csv).expect("csv parses");
    assert_eq!(parsed, results.records);
}
