//! The telemetry determinism contract: a seeded scan exports a
//! byte-identical snapshot (and trace) on every run, and the batched
//! publishing paths leave the registry exact at observation boundaries.

use xmap::{Blocklist, IcmpEchoProbe, ScanConfig, Scanner};
use xmap_netsim::world::{World, WorldConfig};
use xmap_telemetry::Telemetry;

/// One seeded scan with metrics and tracing on; returns the two exports.
fn run_seeded() -> (String, String) {
    let telemetry = Telemetry::with_tracing();
    let mut world = World::with_config(WorldConfig {
        seed: 11,
        ..WorldConfig::default()
    });
    world.set_telemetry(&telemetry);
    let mut scanner = Scanner::with_telemetry(
        world,
        ScanConfig {
            seed: 11,
            max_targets: Some(4096),
            probes_per_target: 2,
            ..ScanConfig::default()
        },
        telemetry.clone(),
    );
    let range = "2409:8000::/28-60".parse().unwrap();
    let results = scanner.run(&range, &IcmpEchoProbe, &Blocklist::allow_all());
    assert!(results.stats.sent >= 4096, "scan ran: {:?}", results.stats);
    (
        telemetry.registry.snapshot().to_json(),
        telemetry.tracer.to_ndjson(),
    )
}

#[test]
fn seeded_scan_exports_are_byte_identical() {
    let (snap_a, trace_a) = run_seeded();
    let (snap_b, trace_b) = run_seeded();
    assert_eq!(snap_a, snap_b, "snapshot JSON must be byte-identical");
    assert_eq!(trace_a, trace_b, "trace NDJSON must be byte-identical");
    assert!(!trace_a.is_empty(), "tracing was enabled");
}

#[test]
fn snapshot_covers_the_scan_metric_surface() {
    let telemetry = Telemetry::new();
    let mut world = World::with_config(WorldConfig {
        seed: 11,
        ..WorldConfig::default()
    });
    world.set_telemetry(&telemetry);
    let mut scanner = Scanner::with_telemetry(
        world,
        ScanConfig {
            seed: 11,
            max_targets: Some(4096),
            probes_per_target: 2,
            ..ScanConfig::default()
        },
        telemetry.clone(),
    );
    let range = "2409:8000::/28-60".parse().unwrap();
    let results = scanner.run(&range, &IcmpEchoProbe, &Blocklist::allow_all());

    let snap = telemetry.registry.snapshot();
    assert_eq!(snap.counter("scan.sent"), results.stats.sent);
    assert_eq!(snap.counter("scan.received"), results.stats.received);
    assert_eq!(snap.counter("scan.retransmits"), results.stats.retransmits);
    assert!(snap.gauges.contains_key("scan.hit_rate_ppm"));
    let rtt = snap
        .histograms
        .get("scan.rtt_ticks")
        .expect("RTT histogram registered");
    assert_eq!(rtt.count, results.stats.valid, "one RTT per valid response");

    // The simulator's batched publishing must be flushed by run end: every
    // probe the scanner sent was handled by the world, exactly.
    assert_eq!(snap.counter("netsim.probes"), results.stats.sent);
    assert_eq!(snap.counter("netsim.responses"), results.stats.received);

    // The rendered export mentions the well-known names (what the CI
    // schema check keys on).
    let json = snap.to_json();
    for name in [
        "xmap-telemetry/v1",
        "scan.sent",
        "scan.received",
        "scan.hit_rate_ppm",
        "scan.retransmits",
        "scan.rtt_ticks",
        "netsim.probes",
    ] {
        assert!(json.contains(name), "snapshot JSON missing {name}");
    }
}
