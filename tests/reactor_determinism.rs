//! The reactor engine's byte-identity contract: for the same seed and
//! configuration, [`ScanEngine::Reactor`] must produce exactly the
//! artifacts the lock-step engine produces — CSV records, metrics
//! snapshots, trace events, checkpoints — including across worker
//! counts, kill/resume cycles that switch engines mid-session, and
//! recorded-trace replays.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use xmap::output::to_csv;
use xmap::{
    run_session, Blocklist, IcmpEchoProbe, ParallelScanner, ScanConfig, ScanEngine, ScanResults,
    Scanner, SessionSpec,
};
use xmap_addr::ScanRange;
use xmap_netsim::world::{World, WorldConfig};
use xmap_netsim::{FaultPlan, KillPoint};
use xmap_reactor::{ReplayNet, WireRecorder};
use xmap_state::AbortSignal;
use xmap_telemetry::{Snapshot, Telemetry};

fn session_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("xmap-reactor-{tag}-{}-{n}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn range() -> ScanRange {
    "2405:200::/32-64".parse().unwrap()
}

/// Retransmission-heavy configuration: 30% forward loss forces the
/// retry pipeline (timer heap, backoff, suppression) to carry real
/// load, so identity cannot hold by the retry path being idle.
fn lossy_config(engine: ScanEngine) -> ScanConfig {
    ScanConfig {
        seed: 17,
        max_targets: Some(1500),
        probes_per_target: 3,
        rto_ticks: 4,
        record_silent: true,
        engine,
        ..Default::default()
    }
}

fn lossy_world() -> World {
    World::with_config(
        WorldConfig::lossless(4242, 3000)
            .with_fault(FaultPlan::none().seeded(0xF00D).with_forward_loss(0.3)),
    )
}

/// One traced single-scanner run; returns (CSV, snapshot JSON, trace NDJSON).
fn run_traced(engine: ScanEngine) -> (String, String, String) {
    let telemetry = Telemetry::with_tracing();
    let mut world = lossy_world();
    world.set_telemetry(&telemetry);
    let mut scanner = Scanner::with_telemetry(world, lossy_config(engine), telemetry);
    let results = scanner.run(&range(), &IcmpEchoProbe, &Blocklist::allow_all());
    assert!(
        results.stats.retransmits > 0,
        "loss must force retransmissions for this test to bite"
    );
    (
        to_csv(&results.records),
        scanner.telemetry().registry.snapshot().to_json(),
        scanner.telemetry().tracer.to_ndjson(),
    )
}

#[test]
fn reactor_matches_lockstep_records_metrics_and_trace() {
    let (csv_l, snap_l, trace_l) = run_traced(ScanEngine::LockStep);
    let (csv_r, snap_r, trace_r) = run_traced(ScanEngine::Reactor);
    assert_eq!(csv_l, csv_r, "CSV records diverge between engines");
    assert_eq!(snap_l, snap_r, "metrics snapshots diverge between engines");
    assert_eq!(trace_l, trace_r, "trace events diverge between engines");
}

/// Dense lossless world, single probe per target: high record volume
/// (the lossy case above stresses retries, this one stresses absorb).
#[test]
fn reactor_matches_lockstep_on_dense_world() {
    let run = |engine: ScanEngine| {
        let telemetry = Telemetry::new();
        let mut world = World::new(11);
        world.set_telemetry(&telemetry);
        let config = ScanConfig {
            seed: 11,
            max_targets: Some(16_384),
            engine,
            ..Default::default()
        };
        let mut scanner = Scanner::with_telemetry(world, config, telemetry);
        let results = scanner.run(
            &"2402:3a80::/32-64".parse().unwrap(),
            &IcmpEchoProbe,
            &Blocklist::allow_all(),
        );
        (
            to_csv(&results.records),
            scanner.telemetry().registry.snapshot().to_json(),
        )
    };
    let (csv_l, snap_l) = run(ScanEngine::LockStep);
    let (csv_r, snap_r) = run(ScanEngine::Reactor);
    assert!(csv_l.lines().count() > 50, "expected a lively scan");
    assert_eq!(csv_l, csv_r, "CSV records diverge between engines");
    assert_eq!(snap_l, snap_r, "metrics snapshots diverge between engines");
}

fn run_parallel(workers: usize, engine: ScanEngine) -> (String, String) {
    let mut ps = ParallelScanner::new(workers, lossy_config(engine), |_, telemetry| {
        let mut world = lossy_world();
        world.set_telemetry(telemetry);
        world
    });
    let results = ps.run(&range(), &IcmpEchoProbe, &Blocklist::allow_all());
    (to_csv(&results.records), ps.snapshot().to_json())
}

/// 1-, 2- and 4-worker reactor runs must equal the matching lock-step
/// runs exactly (the executor clones the config, so the engine knob
/// propagates into every worker).
#[test]
fn reactor_parallel_worker_counts_match_lockstep() {
    for workers in [1usize, 2, 4] {
        let (csv_l, snap_l) = run_parallel(workers, ScanEngine::LockStep);
        let (csv_r, snap_r) = run_parallel(workers, ScanEngine::Reactor);
        assert_eq!(csv_l, csv_r, "CSV diverges at {workers} workers");
        assert_eq!(snap_l, snap_r, "snapshot diverges at {workers} workers");
    }
}

fn run_one_session(
    dir: &Path,
    resume: bool,
    kill_after: Option<u64>,
    engine: ScanEngine,
) -> (ScanResults, Snapshot) {
    let ranges = [range()];
    let config = lossy_config(engine);
    let signal = AbortSignal::new();
    let kill_signal = signal.clone();
    let spec = SessionSpec {
        workers: 2,
        config,
        ranges: &ranges,
        dir,
        every: 16,
        resume,
        world_seed: 5,
    };
    let outcome = run_session(
        &spec,
        &IcmpEchoProbe,
        &Blocklist::allow_all(),
        Some(&signal),
        move |_, telemetry| {
            let mut w = lossy_world();
            w.set_telemetry(telemetry);
            if let Some(n) = kill_after {
                w.arm_kill(
                    KillPoint {
                        after_probes: Some(n),
                        ..Default::default()
                    },
                    kill_signal.clone(),
                );
            }
            w
        },
    )
    .expect("checkpointed session");
    assert!(outcome.sink_error.is_none(), "{:?}", outcome.sink_error);
    (outcome.results, outcome.snapshot)
}

/// Kill-and-resume parity, including *cross-engine* resumes: a session
/// killed under one engine and resumed under the other must still equal
/// the uninterrupted lock-step baseline byte for byte. The engine is
/// not in the manifest, so the switch is legal by design.
#[test]
fn kill_and_resume_crosses_engines_byte_identically() {
    let base_dir = session_dir("base");
    let (base, base_snap) = run_one_session(&base_dir, false, None, ScanEngine::LockStep);
    assert!(!base.interrupted);
    assert!(base.stats.retransmits > 0);
    fs::remove_dir_all(&base_dir).unwrap();

    let cases = [
        (ScanEngine::Reactor, ScanEngine::Reactor),
        (ScanEngine::Reactor, ScanEngine::LockStep),
        (ScanEngine::LockStep, ScanEngine::Reactor),
    ];
    for (kill_engine, resume_engine) in cases {
        for kill in [40u64, 233] {
            let dir = session_dir("kill");
            let (partial, _) = run_one_session(&dir, false, Some(kill), kill_engine);
            assert!(
                partial.interrupted,
                "kill after {kill} probes under {kill_engine:?} must interrupt"
            );
            let (resumed, snap) = run_one_session(&dir, true, None, resume_engine);
            assert!(!resumed.interrupted);
            assert_eq!(
                to_csv(&resumed.records),
                to_csv(&base.records),
                "records diverged: {kill_engine:?} -> {resume_engine:?}, kill {kill}"
            );
            assert_eq!(
                snap, base_snap,
                "snapshot diverged: {kill_engine:?} -> {resume_engine:?}, kill {kill}"
            );
            fs::remove_dir_all(&dir).unwrap();
        }
    }
}

/// Record a run's wire traffic through [`WireRecorder`], then replay the
/// trace with no simulator at all: the reactor engine over a
/// [`ReplayNet`] must reproduce the original records and stats, consume
/// the whole trace, and observe zero desyncs.
#[test]
fn recorded_trace_replays_byte_identically() {
    let config = lossy_config(ScanEngine::LockStep);
    let mut recording = Scanner::new(WireRecorder::new(lossy_world()), config);
    let original = recording.run(&range(), &IcmpEchoProbe, &Blocklist::allow_all());
    let trace = recording.into_network().finish();
    assert!(trace.lines().count() > 100, "trace should carry the run");

    let replay = ReplayNet::from_trace(&trace).expect("recorded trace parses");
    let mut replayer = Scanner::new(replay, lossy_config(ScanEngine::Reactor));
    let replayed = replayer.run(&range(), &IcmpEchoProbe, &Blocklist::allow_all());

    assert_eq!(
        to_csv(&replayed.records),
        to_csv(&original.records),
        "replay diverged from the recorded run"
    );
    assert_eq!(replayed.stats, original.stats);
    let net = replayer.into_network();
    assert_eq!(net.desyncs(), 0, "replay fell out of sync with the trace");
    assert_eq!(net.mismatched_sends(), 0, "replayed probes diverged");
    assert!(net.fully_consumed(), "replay left recorded events unused");
}
