//! Minimal, deterministic, offline replacement for the `proptest` crate.
//!
//! The build environment has no access to a crates registry, so this
//! in-tree crate provides the subset of proptest's API the workspace
//! actually uses:
//!
//! * the [`proptest!`] macro (with an optional `#![proptest_config(..)]`
//!   inner attribute) wrapping `#[test] fn name(arg in strategy, ..)` items,
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`],
//!   [`prop_assume!`],
//! * [`any`]`::<T>()` for the primitive types used in tests,
//! * integer range strategies (`lo..hi`, `lo..=hi`, `lo..`),
//! * `prop::collection::vec(strategy, len)`.
//!
//! Unlike real proptest there is no shrinking: a failing case panics with
//! the case number and the generator seed, which is enough to replay it
//! (generation is a pure function of the test name and case index).

use std::fmt::Debug;
use std::marker::PhantomData;

/// Number of cases run per property by default (matches proptest).
pub const DEFAULT_CASES: u32 = 256;

/// Run-time configuration for a `proptest!` block.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: DEFAULT_CASES,
        }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Deterministic generator state (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from a test name (FNV-1a over the name) so each
    /// property gets an independent, reproducible stream.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng {
            state: h ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Next 128 random bits.
    pub fn next_u128(&mut self) -> u128 {
        ((self.next_u64() as u128) << 64) | self.next_u64() as u128
    }
}

/// A value generator. The shim equivalent of proptest's `Strategy`.
pub trait Strategy {
    /// The type of generated values.
    type Value;
    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

/// Types with a canonical full-range generator (the shim `Arbitrary`).
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u128() as $t
            }
        }
    )+};
}
impl_arbitrary_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl<const N: usize> Arbitrary for [u8; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        let mut out = [0u8; N];
        for b in out.iter_mut() {
            *b = rng.next_u64() as u8;
        }
        out
    }
}

/// Strategy generating any value of `T` (see [`any`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(PhantomData<T>);

/// The full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Unsigned integer types that can be sampled uniformly from an interval.
pub trait UniformInt: Copy + PartialOrd {
    /// The type's maximum value.
    const MAX: Self;
    /// Lossless widening to u128.
    fn to_u128(self) -> u128;
    /// Narrowing from u128 (caller guarantees the value fits).
    fn from_u128(v: u128) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),+) => {$(
        impl UniformInt for $t {
            const MAX: Self = <$t>::MAX;
            fn to_u128(self) -> u128 {
                self as u128
            }
            fn from_u128(v: u128) -> Self {
                v as $t
            }
        }
    )+};
}
impl_uniform_int!(u8, u16, u32, u64, u128, usize);

/// Uniform sample from `[lo, hi]` (inclusive on both ends).
fn sample_inclusive<T: UniformInt>(rng: &mut TestRng, lo: u128, hi: u128) -> T {
    assert!(lo <= hi, "empty sample interval");
    // The span fits in u128 except for the full-u128 interval, where any
    // draw is in range.
    let span = hi.wrapping_sub(lo);
    if span == u128::MAX {
        return T::from_u128(rng.next_u128());
    }
    T::from_u128(lo.wrapping_add(rng.next_u128() % (span + 1)))
}

impl<T: UniformInt> Strategy for std::ops::Range<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        assert!(self.start < self.end, "empty range strategy");
        sample_inclusive(rng, self.start.to_u128(), self.end.to_u128() - 1)
    }
}

impl<T: UniformInt> Strategy for std::ops::RangeInclusive<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        sample_inclusive(rng, self.start().to_u128(), self.end().to_u128())
    }
}

impl<T: UniformInt> Strategy for std::ops::RangeFrom<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        sample_inclusive(rng, self.start.to_u128(), T::MAX.to_u128())
    }
}

/// `prop::..` namespace mirror.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        pub use crate::collection::vec;
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Strategy producing `Vec`s of a fixed or ranged length.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    /// Lengths accepted by [`vec`].
    pub trait IntoSizeRange {
        /// Inclusive (min, max) length bounds.
        fn bounds(self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(self) -> (usize, usize) {
            (self, self)
        }
    }

    impl IntoSizeRange for std::ops::Range<usize> {
        fn bounds(self) -> (usize, usize) {
            (self.start, self.end.saturating_sub(1))
        }
    }

    impl IntoSizeRange for std::ops::RangeInclusive<usize> {
        fn bounds(self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    /// `prop::collection::vec(element, len)` — a vector strategy.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { element, min, max }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.max > self.min {
                self.min + (rng.next_u64() as usize) % (self.max - self.min + 1)
            } else {
                self.min
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Asserts a condition inside a `proptest!` body (returns an `Err` that the
/// harness reports with the failing case number).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {}", stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{:?}` != `{:?}` ({} != {})",
                left, right, stringify!($a), stringify!($b)
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return ::std::result::Result::Err(format!(
                "{} (`{:?}` != `{:?}`)", format!($($fmt)+), left, right
            ));
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if left == right {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{:?}` == `{:?}` ({} == {})",
                left, right, stringify!($a), stringify!($b)
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        if left == right {
            return ::std::result::Result::Err(format!(
                "{} (`{:?}` == `{:?}`)", format!($($fmt)+), left, right
            ));
        }
    }};
}

/// Discards the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

/// The property-test wrapper macro. Mirrors proptest's syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn my_property(x in 0u64..100, flag in any::<bool>()) {
///         prop_assert!(x < 100 || flag);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal item muncher for [`proptest!`]. Not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::for_test(stringify!($name));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), ::std::string::String> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(msg) = outcome {
                    panic!(
                        "property `{}` failed at case {}/{}: {}",
                        stringify!($name), case + 1, config.cases, msg
                    );
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Everything a test file needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Any,
        Arbitrary, ProptestConfig, Strategy, TestRng,
    };
}

// Keep Debug import referenced (used in macro expansions via format!).
#[allow(dead_code)]
fn _debug_used<T: Debug>(_: &T) {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::for_test("x");
        let mut b = TestRng::for_test("x");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_test("y");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn range_strategies_stay_in_bounds() {
        let mut rng = TestRng::for_test("bounds");
        for _ in 0..2000 {
            let v = (10u64..20).generate(&mut rng);
            assert!((10..20).contains(&v));
            let w = (0u8..=255).generate(&mut rng);
            let _ = w;
            let x = (5u32..).generate(&mut rng);
            assert!(x >= 5);
            let y = (2u128..(1 << 126)).generate(&mut rng);
            assert!((2..(1u128 << 126)).contains(&y));
        }
    }

    #[test]
    fn vec_strategy_length() {
        let mut rng = TestRng::for_test("vec");
        let v = collection::vec(any::<bool>(), 8).generate(&mut rng);
        assert_eq!(v.len(), 8);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn the_macro_itself_works(a in 0u64..1000, b in any::<bool>()) {
            prop_assume!(a != 999);
            prop_assert!(a < 1000);
            if b {
                prop_assert_eq!(a, a);
            } else {
                prop_assert_ne!(a, a + 1);
            }
        }
    }
}
