//! Minimal, offline replacement for the `criterion` crate.
//!
//! The build environment has no access to a crates registry, so this
//! in-tree crate provides the subset of criterion's API the workspace's
//! benches use. It is a wall-clock harness, not a statistics engine:
//! each benchmark is warmed up once, timed over a fixed batch of
//! iterations, and reported as mean time per iteration (plus derived
//! throughput when declared).
//!
//! When invoked with `--test` (as `cargo test` does for
//! `harness = false` bench targets) every benchmark body runs exactly
//! once so the suite doubles as a smoke test.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// How batched iteration inputs are sized (API-compatible marker).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Construct one input per iteration.
    PerIteration,
    /// Inputs are cheap; batch small.
    SmallInput,
    /// Inputs are expensive to set up; batch large.
    LargeInput,
}

/// Declared per-iteration work, used to derive throughput numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// The benchmark processes this many abstract elements per iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// A two-part benchmark identifier (`group/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A new id combining a function name and a parameter rendering.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// A new id from a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing callback handle passed to benchmark closures.
pub struct Bencher<'a> {
    mode: Mode,
    /// Wall-clock budget for the measured batch.
    budget: Duration,
    /// Measured mean nanoseconds per iteration, written back to the runner.
    result_ns: &'a mut f64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Run once, don't time (under `cargo test`).
    Test,
    /// Time a short adaptive run.
    Measure,
}

/// Default wall-clock spent measuring one benchmark (kept small: this is
/// a smoke-level harness, not a statistics engine). Groups can raise it
/// with [`BenchmarkGroup::measurement_time`] when the comparison needs
/// more iterations to average out scheduler noise.
const MEASURE_BUDGET: Duration = Duration::from_millis(60);

impl<'a> Bencher<'a> {
    /// Times `routine`, called repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        match self.mode {
            Mode::Test => {
                std::hint::black_box(routine());
            }
            Mode::Measure => {
                // Warm-up + calibration: run until ~1ms or 16 iters.
                let cal_start = Instant::now();
                let mut cal_iters: u64 = 0;
                while cal_start.elapsed() < Duration::from_millis(1) && cal_iters < 16 {
                    std::hint::black_box(routine());
                    cal_iters += 1;
                }
                let per_iter = cal_start.elapsed().as_secs_f64() / cal_iters.max(1) as f64;
                let n =
                    ((self.budget.as_secs_f64() / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);
                let start = Instant::now();
                for _ in 0..n {
                    std::hint::black_box(routine());
                }
                *self.result_ns = start.elapsed().as_nanos() as f64 / n as f64;
            }
        }
    }

    /// Times `routine` over inputs built by `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        match self.mode {
            Mode::Test => {
                let input = setup();
                std::hint::black_box(routine(input));
            }
            Mode::Measure => {
                // Calibrate with one timed run.
                let input = setup();
                let cal = Instant::now();
                std::hint::black_box(routine(input));
                let per_iter = cal.elapsed().as_secs_f64();
                let n = ((self.budget.as_secs_f64() / per_iter.max(1e-9)) as u64).clamp(1, 10_000);
                let mut total = Duration::ZERO;
                for _ in 0..n {
                    let input = setup();
                    let start = Instant::now();
                    std::hint::black_box(routine(input));
                    total += start.elapsed();
                }
                *self.result_ns = total.as_nanos() as f64 / n as f64;
            }
        }
    }

    /// Like [`Bencher::iter_batched`] but the routine takes the input by
    /// reference.
    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        self.iter_batched(&mut setup, |mut input| routine(&mut input), size);
    }
}

/// The benchmark runner. Collects results and prints a flat report.
pub struct Criterion {
    mode: Mode,
    report: String,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            mode: if test_mode { Mode::Test } else { Mode::Measure },
            report: String::new(),
        }
    }
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        self.run_one(name, None, MEASURE_BUDGET, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
            budget: MEASURE_BUDGET,
        }
    }

    /// Like criterion's configuration hook; sample size is ignored by this
    /// harness (kept for API compatibility).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(
        &mut self,
        name: &str,
        throughput: Option<Throughput>,
        budget: Duration,
        mut f: F,
    ) {
        let mut ns = f64::NAN;
        let mut b = Bencher {
            mode: self.mode,
            budget,
            result_ns: &mut ns,
        };
        f(&mut b);
        if self.mode == Mode::Test {
            let _ = writeln!(self.report, "{name}: ok (test mode)");
            return;
        }
        let mut line = format!("{name}: {:.1} ns/iter", ns);
        match throughput {
            Some(Throughput::Elements(n)) => {
                let per_sec = n as f64 / (ns * 1e-9);
                let _ = write!(line, "  ({:.3} Melem/s)", per_sec / 1e6);
            }
            Some(Throughput::Bytes(n)) => {
                let per_sec = n as f64 / (ns * 1e-9);
                let _ = write!(line, "  ({:.3} MiB/s)", per_sec / (1024.0 * 1024.0));
            }
            None => {}
        }
        let _ = writeln!(self.report, "{line}");
    }

    /// Prints the accumulated report (called by [`criterion_main!`]).
    pub fn final_summary(&self) {
        print!("{}", self.report);
    }
}

/// A group of benchmarks sharing a name prefix and throughput declaration.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    budget: Duration,
}

impl<'c> BenchmarkGroup<'c> {
    /// Declares the per-iteration work for subsequent benches in the group.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Sample-size hint; ignored by this harness.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the wall-clock budget for each benchmark's measured batch.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.budget = d;
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        f: F,
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id);
        self.criterion
            .run_one(&name, self.throughput, self.budget, f);
        self
    }

    /// Runs a benchmark parameterized by an input value.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id);
        self.criterion
            .run_one(&name, self.throughput, self.budget, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
    (name = $group:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(c: &mut Criterion) {
        c.bench_function("toy_add", |b| b.iter(|| 1u64 + 1));
        let mut g = c.benchmark_group("grp");
        g.throughput(Throughput::Elements(4));
        g.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u8, 2, 3, 4],
                |v| v.iter().sum::<u8>(),
                BatchSize::LargeInput,
            )
        });
        g.bench_with_input(BenchmarkId::new("with_input", 7), &7u64, |b, &x| {
            b.iter(|| x * 2)
        });
        g.finish();
    }

    #[test]
    fn harness_runs_everything() {
        // Measure mode smoke: everything executes and reports.
        let mut c = Criterion {
            mode: Mode::Measure,
            report: String::new(),
        };
        toy(&mut c);
        assert!(c.report.contains("toy_add"));
        assert!(c.report.contains("grp/batched"));
        assert!(c.report.contains("grp/with_input/7"));
        assert!(c.report.contains("Melem/s"));
    }

    #[test]
    fn test_mode_runs_once() {
        let mut c = Criterion {
            mode: Mode::Test,
            report: String::new(),
        };
        let mut count = 0u32;
        {
            let mut ns = f64::NAN;
            let mut b = Bencher {
                mode: c.mode,
                budget: MEASURE_BUDGET,
                result_ns: &mut ns,
            };
            b.iter(|| count += 1);
        }
        assert_eq!(count, 1);
        c.bench_function("once", |b| b.iter(|| ()));
        assert!(c.report.contains("once: ok"));
    }
}
